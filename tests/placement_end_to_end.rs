//! End-to-end integration: generated workloads through the CP placer,
//! checked by the independent verifier, with the paper's headline
//! comparisons asserted as invariants.

use rrf_core::{anneal, baseline, cp, metrics, verify, PlacementProblem, PlacerConfig};
use rrf_fabric::{device, Region};
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_suite::problem_from_workload;
use std::time::Duration;

fn small_region(width: i32) -> Region {
    let layout = device::ColumnLayout {
        bram_period: 10,
        bram_offset: 4,
        dsp_period: 0,
        dsp_offset: 0,
        io_ring: 0,
        center_clock: false,
    };
    Region::whole(device::columns(width, 8, layout))
}

fn small_problem(modules: usize, seed: u64, width: i32) -> PlacementProblem {
    let workload = generate_workload(&WorkloadSpec::small(modules, seed));
    problem_from_workload(small_region(width), &workload)
}

#[test]
fn placements_are_always_valid_across_seeds() {
    let config = PlacerConfig {
        time_limit: Some(Duration::from_millis(800)),
        ..PlacerConfig::default()
    };
    for seed in 0..6 {
        let problem = small_problem(5, seed, 50);
        let out = cp::place(&problem, &config);
        let plan = out.plan.unwrap_or_else(|| panic!("seed {seed} feasible"));
        let violations = verify::verify(&problem.region, &problem.modules, &plan);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        let m = metrics(&problem.region, &problem.modules, &plan);
        assert!(m.utilization > 0.0 && m.utilization <= 1.0);
        assert_eq!(m.occupied_tiles, problem.demand());
    }
}

#[test]
fn alternatives_never_hurt_proven_optima() {
    // Metamorphic: the optimum over a superset of shapes is <= the optimum
    // over the first shape alone.
    let config = PlacerConfig::exact();
    for seed in [0u64, 1, 2] {
        let problem = small_problem(4, seed, 60);
        let solo = problem.without_alternatives();
        let with = cp::place(&problem, &config);
        let without = cp::place(&solo, &config);
        assert!(with.proven && without.proven, "seed {seed}");
        assert!(
            with.extent.unwrap() <= without.extent.unwrap(),
            "seed {seed}: {:?} vs {:?}",
            with.extent,
            without.extent
        );
    }
}

#[test]
fn optimal_never_worse_than_heuristics() {
    let config = PlacerConfig::exact();
    for seed in [3u64, 4] {
        let problem = small_problem(4, seed, 60);
        let out = cp::place(&problem, &config);
        assert!(out.proven);
        let optimal = out.extent.unwrap();
        let greedy = baseline::bottom_left(&problem).expect("greedy feasible");
        assert!(optimal <= greedy.x_extent(&problem.modules, 0) as i64);
        let sa = anneal::anneal(
            &problem,
            &anneal::AnnealConfig {
                iterations: 2_000,
                seed,
                ..anneal::AnnealConfig::default()
            },
        )
        .expect("anneal feasible");
        assert!(optimal <= sa.x_extent(&problem.modules, 0) as i64);
    }
}

#[test]
fn wider_region_never_increases_optimum() {
    // Metamorphic: widening the region only adds placements.
    let config = PlacerConfig::exact();
    let workload = generate_workload(&WorkloadSpec::small(4, 9));
    let narrow = problem_from_workload(small_region(40), &workload);
    let wide = problem_from_workload(small_region(60), &workload);
    let narrow_out = cp::place(&narrow, &config);
    let wide_out = cp::place(&wide, &config);
    assert!(narrow_out.proven && wide_out.proven);
    if let (Some(n), Some(w)) = (narrow_out.extent, wide_out.extent) {
        assert!(w <= n);
    }
}

#[test]
fn utilization_consistent_with_extent() {
    // Same demand, shorter extent → higher utilization on a uniform strip
    // (the link between eq. 6 and the paper's headline metric).
    let config = PlacerConfig::exact();
    let problem = small_problem(4, 5, 60);
    let solo = problem.without_alternatives();
    let with = cp::place(&problem, &config);
    let without = cp::place(&solo, &config);
    let (pw, pwo) = (with.plan.unwrap(), without.plan.unwrap());
    let mw = metrics(&problem.region, &problem.modules, &pw);
    let mwo = metrics(&solo.region, &solo.modules, &pwo);
    if with.extent.unwrap() < without.extent.unwrap() {
        assert!(mw.utilization > mwo.utilization);
    } else {
        assert!((mw.utilization - mwo.utilization).abs() < 1e-9);
    }
}

#[test]
fn portfolio_and_sequential_agree_on_optimum() {
    let problem = small_problem(4, 6, 60);
    let seq = cp::place(&problem, &PlacerConfig::exact());
    let par = cp::place(
        &problem,
        &PlacerConfig {
            strategy: rrf_core::SearchStrategy::Portfolio(3),
            ..PlacerConfig::exact()
        },
    );
    assert!(seq.proven && par.proven);
    assert_eq!(seq.extent, par.extent);
}

#[test]
fn static_mask_respected_end_to_end() {
    let workload = generate_workload(&WorkloadSpec::small(3, 7));
    let mut region = small_region(60);
    region.add_static_mask(rrf_fabric::Rect::new(30, 0, 30, 8));
    let problem = problem_from_workload(region, &workload);
    let out = cp::place(
        &problem,
        &PlacerConfig {
            time_limit: Some(Duration::from_secs(2)),
            ..PlacerConfig::default()
        },
    );
    let plan = out.plan.expect("fits in unmasked half");
    assert!(verify::verify(&problem.region, &problem.modules, &plan).is_empty());
    for (tile, _, _) in plan.occupied_tiles(&problem.modules) {
        assert!(tile.x < 30, "tile {tile} inside the static mask");
    }
}
