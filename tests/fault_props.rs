//! Property-based tests over the fault model: faulted tiles are never
//! placeable, fault injection/clearing is an exact inverse on the anchor
//! space, and whatever `repair` leaves behind always passes the
//! independent verifier.

use proptest::prelude::*;
use rrf_core::{verify, FrameCostModel, Module, OnlinePlacer};
use rrf_fabric::{device, Fault, Point, Region, ResourceKind};
use rrf_geost::{allowed_anchors, ShapeDef, ShiftedBox};
use std::time::Duration;

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0i32..16, 0i32..8).prop_map(|(x, y)| Fault::Tile { x, y }),
        (0i32..16).prop_map(|x| Fault::Column { x }),
        (0i32..14, 0i32..6, 1i32..4, 1i32..4).prop_map(|(x, y, w, h)| Fault::Rect { x, y, w, h }),
    ]
}

fn faults_strategy() -> impl Strategy<Value = Vec<Fault>> {
    proptest::collection::vec(fault_strategy(), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No allowed anchor's footprint ever touches a faulted tile, and the
    /// anchor list stays exactly the brute-force acceptable set.
    #[test]
    fn anchors_never_overlap_faulted_tiles(seed in 0u64..200,
                                           faults in faults_strategy(),
                                           w in 1i32..4, h in 1i32..4) {
        let mut region = Region::whole(device::irregular(16, 8, seed));
        for f in &faults {
            region.inject_fault(*f);
        }
        let shape = ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)]);
        let anchors = allowed_anchors(&region, &shape);
        for &anchor in &anchors {
            for (tile, kind) in shape.tiles_at(anchor.x, anchor.y) {
                prop_assert!(!region.is_faulted(tile.x, tile.y),
                             "anchor {anchor} footprint covers faulted {tile}");
                prop_assert!(region.accepts(tile.x, tile.y, kind));
            }
        }
        // Exactness: brute force over the fabric agrees with the filter.
        for x in 0..16 {
            for y in 0..8 {
                let ok = shape
                    .tiles_at(x, y)
                    .all(|(t, k)| region.accepts(t.x, t.y, k));
                prop_assert_eq!(ok, anchors.contains(&Point::new(x, y)),
                                "anchor ({}, {})", x, y);
            }
        }
    }

    /// Clearing every injected fault restores the pristine anchor space —
    /// faults never leave residue.
    #[test]
    fn clearing_faults_restores_anchor_space(seed in 0u64..200,
                                             faults in faults_strategy(),
                                             w in 1i32..4, h in 1i32..4) {
        let pristine = Region::whole(device::irregular(16, 8, seed));
        let shape = ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)]);
        let before = allowed_anchors(&pristine, &shape);
        let mut region = pristine;
        for f in &faults {
            region.inject_fault(*f);
        }
        for f in &faults {
            region.clear_fault(*f);
        }
        prop_assert!(region.faults().is_empty());
        prop_assert_eq!(allowed_anchors(&region, &shape), before);
    }
}

fn rotatable(name: &str, w: i32, h: i32) -> Module {
    let base = ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)]);
    let alt = ShapeDef::new(vec![ShiftedBox::new(0, 0, h, w, ResourceKind::Clb)]);
    let shapes = if base == alt {
        vec![base]
    } else {
        vec![base, alt]
    };
    Module::new(name, shapes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever `repair` decides — relocation, escalated repack, or
    /// eviction — the surviving placement always passes the independent
    /// verifier (which also proves nothing sits on a faulted tile, since
    /// faulted tiles read as `Static`).
    #[test]
    fn repair_output_always_verifies(dims in proptest::collection::vec((1i32..5, 1i32..4), 1..6),
                                     fault in fault_strategy(),
                                     seed in 0u64..50) {
        let region = Region::whole(device::irregular(16, 8, seed));
        let mut placer = OnlinePlacer::new(region);
        let mut live = 0usize;
        for (i, &(w, h)) in dims.iter().enumerate() {
            if placer.try_insert(&rotatable(&format!("m{i}"), w, h)).is_some() {
                live += 1;
            }
        }
        let impact = placer.inject_fault(fault);
        let report = placer.repair(Duration::from_millis(100), &FrameCostModel::default());

        // Accounting: every displaced module was either relocated or
        // evicted, and the untouched rest is reported unaffected.
        prop_assert_eq!(report.relocated_count() + report.evicted_count(),
                        impact.displaced.len());
        prop_assert_eq!(report.unaffected, (live - impact.displaced.len()) as u64);

        // The survivors form a verifier-clean floorplan on the faulted
        // region.
        let slots = placer.slots();
        let modules: Vec<Module> = slots.iter().map(|(_, m, _)| (*m).clone()).collect();
        let plan = rrf_core::Floorplan::new(
            slots
                .iter()
                .enumerate()
                .map(|(i, (_, _, p))| rrf_core::PlacedModule {
                    module: i,
                    shape: p.shape,
                    x: p.x,
                    y: p.y,
                })
                .collect(),
        );
        let violations = verify::verify(placer.region(), &modules, &plan);
        prop_assert!(violations.is_empty(), "{violations:?}");
        prop_assert_eq!(slots.len(), live - report.evicted_count());
    }
}
