//! The CP solver against brute-force enumeration on randomly generated
//! small models: identical solution counts and identical optima.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rrf_solver::constraints::{LinRel, NotEqualOffset};
use rrf_solver::{solve, Model, SearchConfig, VarId};

/// A random model: n vars with small ranges, random binary disequalities,
/// and one random linear <= constraint. Returns the model pieces needed to
/// re-evaluate assignments by hand.
struct RandomCsp {
    ranges: Vec<(i32, i32)>,
    diseqs: Vec<(usize, usize, i32)>,
    lin_coeffs: Vec<i64>,
    lin_c: i64,
}

impl RandomCsp {
    fn generate(rng: &mut ChaCha8Rng) -> RandomCsp {
        let n = rng.gen_range(2..5);
        let ranges: Vec<(i32, i32)> = (0..n)
            .map(|_| {
                let lo = rng.gen_range(-3..3);
                (lo, lo + rng.gen_range(1..5))
            })
            .collect();
        let diseqs: Vec<(usize, usize, i32)> = (0..rng.gen_range(0..4))
            .map(|_| {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                if b == a {
                    b = (b + 1) % n;
                }
                (a, b, rng.gen_range(-2..3))
            })
            .collect();
        let lin_coeffs: Vec<i64> = (0..n).map(|_| rng.gen_range(-2..3)).collect();
        let lin_c = rng.gen_range(-6..10);
        RandomCsp {
            ranges,
            diseqs,
            lin_coeffs,
            lin_c,
        }
    }

    fn build(&self) -> (Model, Vec<VarId>) {
        let mut m = Model::new();
        let vars: Vec<VarId> = self
            .ranges
            .iter()
            .map(|&(lo, hi)| m.new_var(lo, hi))
            .collect();
        for &(a, b, c) in &self.diseqs {
            m.post(NotEqualOffset {
                x: vars[a],
                y: vars[b],
                c,
            });
        }
        m.linear(&self.lin_coeffs, &vars, LinRel::Le, self.lin_c);
        (m, vars)
    }

    fn satisfied(&self, assignment: &[i32]) -> bool {
        for &(a, b, c) in &self.diseqs {
            if assignment[a] == assignment[b] + c {
                return false;
            }
        }
        let sum: i64 = self
            .lin_coeffs
            .iter()
            .zip(assignment)
            .map(|(&a, &x)| a * x as i64)
            .sum();
        sum <= self.lin_c
    }

    fn enumerate(&self) -> Vec<Vec<i32>> {
        let mut out = Vec::new();
        let mut cur = vec![0i32; self.ranges.len()];
        self.rec(0, &mut cur, &mut out);
        out
    }

    fn rec(&self, i: usize, cur: &mut Vec<i32>, out: &mut Vec<Vec<i32>>) {
        if i == self.ranges.len() {
            if self.satisfied(cur) {
                out.push(cur.clone());
            }
            return;
        }
        for v in self.ranges[i].0..=self.ranges[i].1 {
            cur[i] = v;
            self.rec(i + 1, cur, out);
        }
    }
}

#[test]
fn solution_counts_match_bruteforce() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for round in 0..60 {
        let csp = RandomCsp::generate(&mut rng);
        let expected = csp.enumerate();
        let (model, _) = csp.build();
        let out = solve(model, SearchConfig::default());
        assert!(out.complete, "round {round}");
        assert_eq!(
            out.stats.solutions,
            expected.len() as u64,
            "round {round}: {csp:?}",
        );
    }
}

#[test]
fn minima_match_bruteforce() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for round in 0..40 {
        let csp = RandomCsp::generate(&mut rng);
        let expected = csp.enumerate();
        let (model, vars) = csp.build();
        // Minimize the first variable.
        let out = solve(model, SearchConfig::minimize(vars[0]));
        match expected.iter().map(|a| a[0]).min() {
            Some(best) => {
                assert!(out.complete, "round {round}");
                assert_eq!(out.objective, Some(best as i64), "round {round}");
            }
            None => {
                assert!(out.best.is_none(), "round {round}");
                assert!(out.complete, "round {round}");
            }
        }
    }
}

impl std::fmt::Debug for RandomCsp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ranges={:?} diseqs={:?} lin={:?}<={}",
            self.ranges, self.diseqs, self.lin_coeffs, self.lin_c
        )
    }
}

#[test]
fn every_reported_solution_actually_satisfies() {
    // Enumerate with a callbackless API: re-check the best solution of the
    // first-solution search over many seeds.
    let mut rng = ChaCha8Rng::seed_from_u64(1234);
    for _ in 0..40 {
        let csp = RandomCsp::generate(&mut rng);
        let (model, vars) = csp.build();
        let out = solve(model, SearchConfig::first_solution());
        if let Some(sol) = out.best {
            let assignment: Vec<i32> = vars.iter().map(|&v| sol.value(v)).collect();
            assert!(csp.satisfied(&assignment), "{csp:?} -> {assignment:?}");
        } else {
            assert!(csp.enumerate().is_empty(), "missed solutions: {csp:?}");
        }
    }
}
