//! Integration tests for the extensions beyond the paper: LNS polishing,
//! service level, online placement, reconfiguration costs, and
//! height-minimization — all driven by generated workloads.

use rrf_core::{
    baseline, cp, lns, metrics, online, reconfig, service, verify, Module, PlacementProblem,
    PlacerConfig,
};
use rrf_fabric::{device, Region};
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_suite::problem_from_workload;
use std::time::Duration;

fn region(width: i32, height: i32) -> Region {
    let layout = device::ColumnLayout {
        bram_period: 10,
        bram_offset: 4,
        dsp_period: 0,
        dsp_offset: 0,
        io_ring: 0,
        center_clock: false,
    };
    Region::whole(device::columns(width, height, layout))
}

#[test]
fn lns_improves_generated_workloads() {
    for seed in [0u64, 1] {
        let workload = generate_workload(&WorkloadSpec::small(8, seed));
        let problem = problem_from_workload(region(60, 8), &workload);
        let start = baseline::bottom_left(&problem).expect("greedy feasible");
        let start_extent = start.x_extent(&problem.modules, 0) as i64;
        let out = lns::improve(
            &problem,
            start,
            &lns::LnsConfig {
                time_limit: Duration::from_millis(800),
                neighborhood: 4,
                seed,
                ..lns::LnsConfig::default()
            },
        );
        assert!(out.extent <= start_extent, "seed {seed}");
        assert!(verify::verify(&problem.region, &problem.modules, &out.plan).is_empty());
        // The floorplan is for ALL modules, in order.
        assert_eq!(out.plan.placements.len(), 8);
    }
}

#[test]
fn service_level_with_alternatives_at_least_without() {
    let config = PlacerConfig {
        time_limit: Some(Duration::from_millis(500)),
        ..PlacerConfig::default()
    };
    for seed in [2u64, 3] {
        let workload = generate_workload(&WorkloadSpec::small(12, seed));
        let problem = problem_from_workload(region(40, 8), &workload);
        let with = service::max_feasible_prefix(&problem, &config);
        let without = service::max_feasible_prefix(&problem.without_alternatives(), &config);
        // The with-alternatives prefix can only be at least as long when
        // both sides are exact (shape supersets per module).
        if with.exact && without.exact {
            assert!(with.placed >= without.placed, "seed {seed}");
        }
        assert!(
            verify::verify(&problem.region, &problem.modules[..with.placed], &with.plan).is_empty()
        );
    }
}

#[test]
fn online_stream_stays_consistent_with_verifier() {
    use rand::{Rng, SeedableRng};
    let workload = generate_workload(&WorkloadSpec::small(6, 4));
    let modules: Vec<Module> = workload
        .modules
        .iter()
        .map(|m| Module::new(m.name.clone(), m.shapes.clone()))
        .collect();
    let mut placer = online::OnlinePlacer::new(region(50, 8));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let mut live: Vec<(u64, usize)> = Vec::new(); // (slot, module index)
    for _ in 0..120 {
        if live.is_empty() || rng.gen_bool(0.6) {
            let mi = rng.gen_range(0..modules.len());
            if let Some(slot) = placer.try_insert(&modules[mi]) {
                live.push((slot, mi));
            }
        } else {
            let i = rng.gen_range(0..live.len());
            let (slot, _) = live.swap_remove(i);
            assert!(placer.remove(slot));
        }
        // Cross-check: the live set as a floorplan passes the verifier.
        let plan = rrf_core::Floorplan::new(
            live.iter()
                .enumerate()
                .map(|(i, &(slot, _))| {
                    let p = placer.placement_of(slot).unwrap();
                    rrf_core::PlacedModule {
                        module: i,
                        shape: p.shape,
                        x: p.x,
                        y: p.y,
                    }
                })
                .collect(),
        );
        let live_modules: Vec<Module> = live.iter().map(|&(_, mi)| modules[mi].clone()).collect();
        let violations = verify::verify(&placer_region(), &live_modules, &plan);
        assert!(violations.is_empty(), "{violations:?}");
    }
    assert!(placer.stats().requests > 0);

    fn placer_region() -> Region {
        region(50, 8)
    }
}

#[test]
fn reconfig_costs_track_utilization_tradeoff() {
    let workload = generate_workload(&WorkloadSpec::small(6, 5));
    let problem = problem_from_workload(region(60, 8), &workload);
    let out = cp::place(
        &problem,
        &PlacerConfig {
            time_limit: Some(Duration::from_secs(1)),
            ..PlacerConfig::default()
        },
    );
    let plan = out.plan.expect("feasible");
    let model = reconfig::FrameCostModel::default();
    let (total, per) = reconfig::floorplan_cost(&problem.region, &problem.modules, &plan, &model);
    assert_eq!(per.len(), plan.placements.len());
    assert_eq!(total.words, per.iter().map(|c| c.words).sum::<u64>());
    // Every module costs at least one column at the cheapest frame rate.
    for c in &per {
        assert!(c.columns >= 1);
        assert!(c.words >= model.clb_words_per_column);
        assert_eq!(c.nanos, c.words * model.ns_per_word);
    }
}

#[test]
fn defragmentation_repack_never_worse() {
    use rand::{Rng, SeedableRng};
    let workload = generate_workload(&WorkloadSpec::small(8, 9));
    let catalog: Vec<Module> = workload
        .modules
        .iter()
        .map(|m| Module::new(m.name.clone(), m.shapes.clone()))
        .collect();
    let mut placer = online::OnlinePlacer::new(region(80, 8));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
    let mut live: Vec<(u64, usize)> = Vec::new();
    for _ in 0..80 {
        if live.is_empty() || rng.gen_bool(0.6) {
            let mi = rng.gen_range(0..catalog.len());
            if let Some(slot) = placer.try_insert(&catalog[mi]) {
                live.push((slot, mi));
            }
        } else {
            let i = rng.gen_range(0..live.len());
            let (slot, _) = live.swap_remove(i);
            placer.remove(slot);
        }
    }
    let modules: Vec<Module> = live.iter().map(|&(_, mi)| catalog[mi].clone()).collect();
    let fragmented = rrf_core::Floorplan::new(
        live.iter()
            .enumerate()
            .map(|(i, &(slot, _))| {
                let p = placer.placement_of(slot).unwrap();
                rrf_core::PlacedModule {
                    module: i,
                    shape: p.shape,
                    x: p.x,
                    y: p.y,
                }
            })
            .collect(),
    );
    let problem = PlacementProblem::new(region(80, 8), modules);
    let frag_extent = fragmented.x_extent(&problem.modules, 0) as i64;
    let out = cp::place(
        &problem,
        &PlacerConfig {
            time_limit: Some(Duration::from_secs(2)),
            ..PlacerConfig::default()
        },
    );
    let repacked = out.plan.expect("live set is feasible");
    assert!(verify::verify(&problem.region, &problem.modules, &repacked).is_empty());
    assert!(out.extent.unwrap() <= frag_extent);
}

#[test]
fn height_and_width_objectives_agree_on_transposed_instances() {
    // Minimizing width on P equals minimizing height on transpose(P).
    let workload = generate_workload(&WorkloadSpec::small(4, 6));
    let problem = problem_from_workload(region(40, 8), &workload);
    let width_out = cp::place(&problem, &PlacerConfig::exact());

    let transposed = PlacementProblem::new(
        problem.region.transposed(),
        problem
            .modules
            .iter()
            .map(|m| {
                Module::new(
                    m.name.clone(),
                    m.shapes()
                        .iter()
                        .map(rrf_geost::ShapeDef::transposed)
                        .collect(),
                )
            })
            .collect(),
    );
    let height_out = cp::place_minimize_height(&transposed, &PlacerConfig::exact());
    assert_eq!(width_out.extent, height_out.extent);
    assert_eq!(width_out.proven, height_out.proven);
    if let (Some(a), Some(b)) = (&width_out.plan, &height_out.plan) {
        let ma = metrics(&problem.region, &problem.modules, a);
        // The height plan lives in the transposed world; mirror it back.
        let mirrored = rrf_core::Floorplan::new(
            b.placements
                .iter()
                .map(|p| rrf_core::PlacedModule {
                    module: p.module,
                    shape: p.shape,
                    x: p.y,
                    y: p.x,
                })
                .collect(),
        );
        let mb = metrics(&problem.region, &problem.modules, &mirrored);
        assert_eq!(ma.occupied_tiles, mb.occupied_tiles);
    }
}
