//! The design flow end to end, through real files: spec JSON → driver →
//! report JSON, with generated workloads and every device spec kind.

use rrf_fabric::Rect;
use rrf_flow::{io, run, DeviceSpec, FlowSpec, ModuleEntry, PlacerSettings, RegionSpec};
use rrf_modgen::{generate_workload, WorkloadSpec};

fn workload_entries(modules: usize, seed: u64) -> Vec<ModuleEntry> {
    generate_workload(&WorkloadSpec::small(modules, seed))
        .modules
        .into_iter()
        .map(|m| ModuleEntry {
            name: m.name,
            shapes: m.shapes,
            netlist: None,
        })
        .collect()
}

/// CLB-only entries, for homogeneous devices (BRAM modules cannot be
/// placed there at all).
fn clb_only_entries(modules: usize, seed: u64) -> Vec<ModuleEntry> {
    generate_workload(&WorkloadSpec {
        bram_min: 0,
        bram_max: 0,
        ..WorkloadSpec::small(modules, seed)
    })
    .modules
    .into_iter()
    .map(|m| ModuleEntry {
        name: m.name,
        shapes: m.shapes,
        netlist: None,
    })
    .collect()
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rrf-it-{}-{name}", std::process::id()))
}

#[test]
fn columns_device_through_files() {
    let spec = FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Columns {
                width: 50,
                height: 8,
                bram_period: 10,
                bram_offset: 4,
                dsp_period: 0,
                dsp_offset: 0,
                io_ring: 0,
                center_clock: false,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules: workload_entries(4, 3),
        placer: PlacerSettings {
            time_limit_ms: Some(2_000),
            ..PlacerSettings::default()
        },
    };
    let job = tmp("job.json");
    let out = tmp("report.json");
    io::save_spec(&job, &spec).unwrap();
    let loaded = io::load_spec(&job).unwrap();
    assert_eq!(loaded, spec);
    let report = run(&loaded).unwrap();
    assert!(report.feasible);
    assert_eq!(report.placements.len(), 4);
    io::save_report(&out, &report).unwrap();
    let back = io::load_report(&out).unwrap();
    assert_eq!(back.extent, report.extent);
    assert_eq!(back.placements, report.placements);
    let _ = std::fs::remove_file(job);
    let _ = std::fs::remove_file(out);
}

#[test]
fn static_mask_spec_reduces_capacity() {
    let make = |masks: Vec<Rect>| FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 30,
                height: 6,
            },
            bounds: None,
            static_masks: masks,
        },
        modules: clb_only_entries(3, 1),
        placer: PlacerSettings {
            time_limit_ms: Some(2_000),
            ..PlacerSettings::default()
        },
    };
    // Full region is feasible, a near-total mask is not.
    let open = run(&make(vec![])).unwrap();
    assert!(open.feasible);
    let closed = run(&make(vec![Rect::new(0, 0, 29, 6)])).unwrap();
    assert!(!closed.feasible);
    assert!(closed.proven);
}

#[test]
fn irregular_device_flow() {
    let spec = FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Irregular {
                width: 60,
                height: 10,
                seed: 8,
            },
            bounds: None,
            static_masks: vec![],
        },
        // CLB-only small modules so the irregular fabric likely fits them.
        modules: generate_workload(&WorkloadSpec {
            bram_min: 0,
            bram_max: 0,
            ..WorkloadSpec::small(3, 2)
        })
        .modules
        .into_iter()
        .map(|m| ModuleEntry {
            name: m.name,
            shapes: m.shapes,
            netlist: None,
        })
        .collect(),
        placer: PlacerSettings {
            time_limit_ms: Some(3_000),
            ..PlacerSettings::default()
        },
    };
    let report = run(&spec).unwrap();
    // Whether feasible depends on the irregular pattern; the invariant is
    // that the flow answers decisively and consistently.
    if report.feasible {
        assert!(report.extent.is_some());
        assert_eq!(report.placements.len(), 3);
    } else {
        assert!(report.placements.is_empty());
    }
}

#[test]
fn report_metrics_match_recomputation() {
    let spec = FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 40,
                height: 8,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules: clb_only_entries(4, 5),
        placer: PlacerSettings {
            time_limit_ms: Some(2_000),
            ..PlacerSettings::default()
        },
    };
    let report = run(&spec).unwrap();
    let region = spec.region.build().unwrap();
    let modules: Vec<rrf_core::Module> = spec
        .modules
        .iter()
        .map(|m| rrf_core::Module::new(m.name.clone(), m.shapes.clone()))
        .collect();
    let plan = report.floorplan.as_ref().expect("feasible");
    let recomputed = rrf_core::metrics(&region, &modules, plan);
    let reported = report.metrics.expect("metrics present");
    assert!((recomputed.utilization - reported.utilization).abs() < 1e-12);
    assert_eq!(recomputed.extent_cols, reported.extent_cols);
}
