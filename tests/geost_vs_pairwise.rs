//! The geost non-overlap propagator against a naive O(n²·area) pairwise
//! overlap check, over randomized fixed placements and randomized domains.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rrf_fabric::{Point, Rect, ResourceKind};
use rrf_geost::{GeostObject, NonOverlap, ShapeDef, ShiftedBox};
use rrf_solver::{Domain, Engine, Space};
use std::collections::HashSet;
use std::sync::Arc;

fn random_shape(rng: &mut ChaCha8Rng) -> ShapeDef {
    // 1 or 2 boxes, sometimes an L.
    let w = rng.gen_range(1..4);
    let h = rng.gen_range(1..4);
    let mut boxes = vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)];
    if rng.gen_bool(0.4) {
        boxes.push(ShiftedBox::new(
            w,
            0,
            rng.gen_range(1..3),
            1,
            ResourceKind::Clb,
        ));
    }
    ShapeDef::new(boxes)
}

fn tiles_of(shape: &ShapeDef, x: i32, y: i32) -> HashSet<(i32, i32)> {
    shape.tiles_at(x, y).map(|(p, _)| (p.x, p.y)).collect()
}

#[test]
fn leaf_acceptance_matches_pairwise_check() {
    let bounds = Rect::new(0, 0, 12, 8);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let mut accepted = 0;
    let mut rejected = 0;
    for _ in 0..200 {
        let n = rng.gen_range(2..5);
        let mut space = Space::new();
        let mut objects = Vec::new();
        let mut placements: Vec<(ShapeDef, Point)> = Vec::new();
        for _ in 0..n {
            let shape = random_shape(&mut rng);
            let x = rng.gen_range(0..10);
            let y = rng.gen_range(0..6);
            let xv = space.new_var(Domain::singleton(x));
            let yv = space.new_var(Domain::singleton(y));
            let sv = space.new_var(Domain::singleton(0));
            objects.push(GeostObject::new(xv, yv, sv, Arc::new(vec![shape.clone()])));
            placements.push((shape, Point::new(x, y)));
        }
        // Ground truth: pairwise tile intersection.
        let mut overlap = false;
        for i in 0..placements.len() {
            for j in (i + 1)..placements.len() {
                let a = tiles_of(&placements[i].0, placements[i].1.x, placements[i].1.y);
                let b = tiles_of(&placements[j].0, placements[j].1.x, placements[j].1.y);
                if !a.is_disjoint(&b) {
                    overlap = true;
                }
            }
        }
        let mut engine = Engine::new(space.num_vars());
        engine.post(NonOverlap::new(objects, bounds));
        engine.schedule_all();
        let result = engine.propagate(&mut space);
        assert_eq!(result.is_err(), overlap, "geost disagrees with pairwise");
        if overlap {
            rejected += 1;
        } else {
            accepted += 1;
        }
    }
    // The generator must exercise both sides.
    assert!(accepted > 20, "too few accepted cases: {accepted}");
    assert!(rejected > 20, "too few rejected cases: {rejected}");
}

#[test]
fn propagation_never_removes_supported_placements() {
    // Soundness under loose domains: any placement that the pairwise check
    // accepts must survive propagation of the other objects' fixed parts.
    let bounds = Rect::new(0, 0, 14, 6);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..100 {
        // One fixed blocker, one free probe.
        let blocker_shape = random_shape(&mut rng);
        let bx = rng.gen_range(0..8);
        let by = rng.gen_range(0..4);
        let probe_shape = random_shape(&mut rng);

        let mut space = Space::new();
        let bxv = space.new_var(Domain::singleton(bx));
        let byv = space.new_var(Domain::singleton(by));
        let bsv = space.new_var(Domain::singleton(0));
        let pxv = space.new_var(Domain::interval(0, 10));
        let pyv = space.new_var(Domain::interval(0, 4));
        let psv = space.new_var(Domain::singleton(0));
        let objects = vec![
            GeostObject::new(bxv, byv, bsv, Arc::new(vec![blocker_shape.clone()])),
            GeostObject::new(pxv, pyv, psv, Arc::new(vec![probe_shape.clone()])),
        ];
        let mut engine = Engine::new(space.num_vars());
        engine.post(NonOverlap::new(objects, bounds));
        engine.schedule_all();
        if engine.propagate(&mut space).is_err() {
            // Propagation may only fail when NO probe position works.
            let blocker = tiles_of(&blocker_shape, bx, by);
            for x in 0..=10 {
                for y in 0..=4 {
                    assert!(
                        !tiles_of(&probe_shape, x, y).is_disjoint(&blocker),
                        "over-pruning: probe at ({x},{y}) was fine"
                    );
                }
            }
            continue;
        }
        // Surviving bounds must include every pairwise-feasible x and y.
        let blocker = tiles_of(&blocker_shape, bx, by);
        for x in 0..=10 {
            for y in 0..=4 {
                if tiles_of(&probe_shape, x, y).is_disjoint(&blocker) {
                    assert!(
                        space.min(pxv) <= x && x <= space.max(pxv),
                        "x={x} pruned although feasible with y={y}"
                    );
                    assert!(
                        space.min(pyv) <= y && y <= space.max(pyv),
                        "y={y} pruned although feasible with x={x}"
                    );
                }
            }
        }
    }
}
