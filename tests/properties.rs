//! Property-based tests (proptest) over the cross-crate invariants:
//! domain algebra, shape transforms, anchor filtering, generator
//! guarantees, and placer validity.

use proptest::prelude::*;
use rrf_core::{cp, verify, Module, PlacementProblem, PlacerConfig};
use rrf_fabric::{device, Point, Rect, Region, ResourceKind};
use rrf_geost::{allowed_anchors, ShapeDef, ShiftedBox};
use rrf_modgen::{derive_alternatives, layout::LayoutParams, ModuleSpec};
use rrf_solver::Domain;
use std::collections::BTreeSet;

// ---------- domain algebra vs. BTreeSet ground truth ----------

fn values_strategy() -> impl Strategy<Value = Vec<i32>> {
    proptest::collection::vec(-30i32..30, 1..20)
}

proptest! {
    #[test]
    fn domain_from_values_is_setlike(values in values_strategy()) {
        let set: BTreeSet<i32> = values.iter().copied().collect();
        let dom = Domain::from_values(&values).unwrap();
        prop_assert_eq!(dom.size(), set.len() as u64);
        prop_assert_eq!(dom.min(), *set.first().unwrap());
        prop_assert_eq!(dom.max(), *set.last().unwrap());
        prop_assert_eq!(dom.iter().collect::<Vec<_>>(),
                        set.iter().copied().collect::<Vec<_>>());
        for v in -35..35 {
            prop_assert_eq!(dom.contains(v), set.contains(&v));
        }
    }

    #[test]
    fn domain_intersect_matches_sets(a in values_strategy(), b in values_strategy()) {
        let sa: BTreeSet<i32> = a.iter().copied().collect();
        let sb: BTreeSet<i32> = b.iter().copied().collect();
        let expected: Vec<i32> = sa.intersection(&sb).copied().collect();
        let mut da = Domain::from_values(&a).unwrap();
        let db = Domain::from_values(&b).unwrap();
        match da.intersect(&db) {
            Ok(_) => prop_assert_eq!(da.iter().collect::<Vec<_>>(), expected),
            Err(_) => prop_assert!(expected.is_empty()),
        }
    }

    #[test]
    fn domain_subtract_matches_sets(a in values_strategy(), b in values_strategy()) {
        let sa: BTreeSet<i32> = a.iter().copied().collect();
        let sb: BTreeSet<i32> = b.iter().copied().collect();
        let expected: Vec<i32> = sa.difference(&sb).copied().collect();
        let mut da = Domain::from_values(&a).unwrap();
        let db = Domain::from_values(&b).unwrap();
        match da.subtract(&db) {
            Ok(_) => prop_assert_eq!(da.iter().collect::<Vec<_>>(), expected),
            Err(_) => prop_assert!(expected.is_empty()),
        }
    }

    #[test]
    fn domain_bounds_pruning_matches_sets(values in values_strategy(),
                                          lo in -35i32..35, hi in -35i32..35) {
        let set: BTreeSet<i32> = values.iter().copied().collect();
        let expected: Vec<i32> =
            set.iter().copied().filter(|&v| v >= lo && v <= hi).collect();
        let mut dom = Domain::from_values(&values).unwrap();
        let result = dom.set_min(lo).and_then(|_| dom.set_max(hi));
        match result {
            Ok(_) => prop_assert_eq!(dom.iter().collect::<Vec<_>>(), expected),
            Err(_) => prop_assert!(expected.is_empty()),
        }
    }
}

// ---------- shape transforms ----------

fn tile_set_strategy() -> impl Strategy<Value = Vec<(Point, ResourceKind)>> {
    proptest::collection::btree_set((0i32..6, 0i32..6), 1..12).prop_map(|set| {
        set.into_iter()
            .enumerate()
            .map(|(i, (x, y))| {
                let kind = if i % 3 == 0 {
                    ResourceKind::Bram
                } else {
                    ResourceKind::Clb
                };
                (Point::new(x, y), kind)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn from_tiles_covers_exactly(tiles in tile_set_strategy()) {
        let shape = ShapeDef::from_tiles(&tiles);
        let mut covered: Vec<(Point, ResourceKind)> = shape.tiles().collect();
        covered.sort_by_key(|(p, _)| (p.y, p.x));
        let mut expected = tiles.clone();
        expected.sort_by_key(|(p, _)| (p.y, p.x));
        prop_assert_eq!(covered, expected);
    }

    #[test]
    fn rotation_is_involution_and_preserves_area(tiles in tile_set_strategy()) {
        let shape = ShapeDef::from_tiles(&tiles).normalized();
        let rot = shape.rotated_180();
        prop_assert_eq!(rot.area(), shape.area());
        prop_assert_eq!(rot.resource_multiset(), shape.resource_multiset());
        prop_assert_eq!(rot.width(), shape.width());
        prop_assert_eq!(rot.height(), shape.height());
        prop_assert_eq!(rot.rotated_180(), shape);
    }
}

// ---------- anchor filtering ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn every_allowed_anchor_verifies(seed in 0u64..500, w in 1i32..4, h in 1i32..4) {
        let fabric = device::irregular(16, 8, seed);
        let region = Region::whole(fabric);
        let shape = ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)]);
        for anchor in allowed_anchors(&region, &shape) {
            for (tile, kind) in shape.tiles_at(anchor.x, anchor.y) {
                prop_assert!(region.accepts(tile.x, tile.y, kind),
                             "anchor {anchor} tile {tile}");
            }
        }
        // Completeness on a sample: a brute-force accepted anchor is listed.
        let anchors = allowed_anchors(&region, &shape);
        for x in 0..16 {
            for y in 0..8 {
                let ok = shape
                    .tiles_at(x, y)
                    .all(|(t, k)| region.accepts(t.x, t.y, k));
                prop_assert_eq!(ok, anchors.contains(&Point::new(x, y)),
                                "anchor ({}, {})", x, y);
            }
        }
    }
}

// ---------- generator guarantees ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn alternatives_preserve_resources(clbs in 10i32..60, brams in 0i32..4,
                                       height in 3i32..8) {
        let spec = ModuleSpec { clbs, brams, height };
        let shapes = derive_alternatives(&spec, &LayoutParams::default(), 4, height + 1);
        prop_assert!(!shapes.is_empty() && shapes.len() <= 4);
        let base = shapes[0].resource_multiset();
        prop_assert_eq!(base[ResourceKind::Clb.index()], clbs as i64);
        prop_assert_eq!(base[ResourceKind::Bram.index()], (brams * 2) as i64);
        for s in &shapes {
            prop_assert_eq!(s.resource_multiset(), base);
        }
        // Alternatives are pairwise distinct.
        for (i, a) in shapes.iter().enumerate() {
            for b in &shapes[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
    }
}

// ---------- placer validity over random micro-instances ----------

fn micro_modules() -> impl Strategy<Value = Vec<(i32, i32)>> {
    proptest::collection::vec((1i32..4, 1i32..4), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn placer_output_always_verifies(dims in micro_modules(), seed in 0u64..50) {
        let fabric = device::irregular(14, 6, seed);
        let region = Region::whole(fabric);
        let modules: Vec<Module> = dims
            .iter()
            .enumerate()
            .map(|(i, &(w, h))| {
                let base = ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)]);
                let alt = ShapeDef::new(vec![ShiftedBox::new(0, 0, h, w, ResourceKind::Clb)]);
                let shapes = if base == alt { vec![base] } else { vec![base, alt] };
                Module::new(format!("m{i}"), shapes)
            })
            .collect();
        let problem = PlacementProblem::new(region, modules);
        let out = cp::place(&problem, &PlacerConfig::exact());
        prop_assert!(out.proven);
        if let Some(plan) = out.plan {
            let violations = verify::verify(&problem.region, &problem.modules, &plan);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }
    }
}

// ---------- region algebra ----------

proptest! {
    #[test]
    fn masked_region_is_subset(mask_x in 0i32..10, mask_w in 0i32..10) {
        let fabric = device::virtex_like(12, 6);
        let open = Region::whole(fabric.clone());
        let mut masked = Region::whole(fabric);
        masked.add_static_mask(Rect::new(mask_x, 0, mask_w, 6));
        prop_assert!(masked.placeable_count() <= open.placeable_count());
        for x in 0..12 {
            for y in 0..6 {
                if masked.kind_at(x, y) != ResourceKind::Static {
                    prop_assert_eq!(masked.kind_at(x, y), open.kind_at(x, y));
                }
            }
        }
    }
}
