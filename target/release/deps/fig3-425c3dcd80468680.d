/root/repo/target/release/deps/fig3-425c3dcd80468680.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-425c3dcd80468680: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
