/root/repo/target/release/deps/rrf_flow-225225b14d5afdec.d: crates/flow/src/bin/rrf-flow.rs

/root/repo/target/release/deps/rrf_flow-225225b14d5afdec: crates/flow/src/bin/rrf-flow.rs

crates/flow/src/bin/rrf-flow.rs:
