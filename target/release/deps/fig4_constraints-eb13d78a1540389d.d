/root/repo/target/release/deps/fig4_constraints-eb13d78a1540389d.d: crates/bench/src/bin/fig4_constraints.rs

/root/repo/target/release/deps/fig4_constraints-eb13d78a1540389d: crates/bench/src/bin/fig4_constraints.rs

crates/bench/src/bin/fig4_constraints.rs:
