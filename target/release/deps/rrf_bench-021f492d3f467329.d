/root/repo/target/release/deps/rrf_bench-021f492d3f467329.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/release/deps/librrf_bench-021f492d3f467329.rlib: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/release/deps/librrf_bench-021f492d3f467329.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
