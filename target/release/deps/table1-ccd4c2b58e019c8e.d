/root/repo/target/release/deps/table1-ccd4c2b58e019c8e.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-ccd4c2b58e019c8e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
