/root/repo/target/release/deps/ablation_service-45ef6f457d98594c.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/release/deps/ablation_service-45ef6f457d98594c: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
