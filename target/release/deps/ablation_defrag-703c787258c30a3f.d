/root/repo/target/release/deps/ablation_defrag-703c787258c30a3f.d: crates/bench/src/bin/ablation_defrag.rs

/root/repo/target/release/deps/ablation_defrag-703c787258c30a3f: crates/bench/src/bin/ablation_defrag.rs

crates/bench/src/bin/ablation_defrag.rs:
