/root/repo/target/release/deps/ablation_search-51a3a834a4117b37.d: crates/bench/src/bin/ablation_search.rs

/root/repo/target/release/deps/ablation_search-51a3a834a4117b37: crates/bench/src/bin/ablation_search.rs

crates/bench/src/bin/ablation_search.rs:
