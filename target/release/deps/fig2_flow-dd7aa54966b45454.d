/root/repo/target/release/deps/fig2_flow-dd7aa54966b45454.d: crates/bench/src/bin/fig2_flow.rs

/root/repo/target/release/deps/fig2_flow-dd7aa54966b45454: crates/bench/src/bin/fig2_flow.rs

crates/bench/src/bin/fig2_flow.rs:
