/root/repo/target/release/deps/serde-3830cd8931177efc.d: vendor/serde/src/lib.rs vendor/serde/src/impls.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/libserde-3830cd8931177efc.rlib: vendor/serde/src/lib.rs vendor/serde/src/impls.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/libserde-3830cd8931177efc.rmeta: vendor/serde/src/lib.rs vendor/serde/src/impls.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/impls.rs:
vendor/serde/src/value.rs:
