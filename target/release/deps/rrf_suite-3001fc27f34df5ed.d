/root/repo/target/release/deps/rrf_suite-3001fc27f34df5ed.d: crates/suite/src/lib.rs

/root/repo/target/release/deps/librrf_suite-3001fc27f34df5ed.rlib: crates/suite/src/lib.rs

/root/repo/target/release/deps/librrf_suite-3001fc27f34df5ed.rmeta: crates/suite/src/lib.rs

crates/suite/src/lib.rs:
