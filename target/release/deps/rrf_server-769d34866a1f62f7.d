/root/repo/target/release/deps/rrf_server-769d34866a1f62f7.d: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs

/root/repo/target/release/deps/librrf_server-769d34866a1f62f7.rlib: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs

/root/repo/target/release/deps/librrf_server-769d34866a1f62f7.rmeta: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs

crates/server/src/lib.rs:
crates/server/src/cache.rs:
crates/server/src/protocol.rs:
crates/server/src/server.rs:
crates/server/src/stats.rs:
