/root/repo/target/release/deps/ablation_masking-a57de0160e9947b0.d: crates/bench/src/bin/ablation_masking.rs

/root/repo/target/release/deps/ablation_masking-a57de0160e9947b0: crates/bench/src/bin/ablation_masking.rs

crates/bench/src/bin/ablation_masking.rs:
