/root/repo/target/release/deps/ablation_masking-ec0b5beb301907e3.d: crates/bench/src/bin/ablation_masking.rs

/root/repo/target/release/deps/ablation_masking-ec0b5beb301907e3: crates/bench/src/bin/ablation_masking.rs

crates/bench/src/bin/ablation_masking.rs:
