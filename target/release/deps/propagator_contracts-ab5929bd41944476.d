/root/repo/target/release/deps/propagator_contracts-ab5929bd41944476.d: crates/solver/tests/propagator_contracts.rs

/root/repo/target/release/deps/propagator_contracts-ab5929bd41944476: crates/solver/tests/propagator_contracts.rs

crates/solver/tests/propagator_contracts.rs:
