/root/repo/target/release/deps/server_end_to_end-7078e79afc35af44.d: crates/server/tests/server_end_to_end.rs

/root/repo/target/release/deps/server_end_to_end-7078e79afc35af44: crates/server/tests/server_end_to_end.rs

crates/server/tests/server_end_to_end.rs:
