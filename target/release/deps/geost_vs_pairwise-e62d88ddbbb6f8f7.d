/root/repo/target/release/deps/geost_vs_pairwise-e62d88ddbbb6f8f7.d: crates/suite/../../tests/geost_vs_pairwise.rs

/root/repo/target/release/deps/geost_vs_pairwise-e62d88ddbbb6f8f7: crates/suite/../../tests/geost_vs_pairwise.rs

crates/suite/../../tests/geost_vs_pairwise.rs:
