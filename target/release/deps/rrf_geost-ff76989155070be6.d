/root/repo/target/release/deps/rrf_geost-ff76989155070be6.d: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs

/root/repo/target/release/deps/librrf_geost-ff76989155070be6.rlib: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs

/root/repo/target/release/deps/librrf_geost-ff76989155070be6.rmeta: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs

crates/geost/src/lib.rs:
crates/geost/src/compat.rs:
crates/geost/src/grid.rs:
crates/geost/src/nonoverlap.rs:
crates/geost/src/object.rs:
crates/geost/src/shape.rs:
