/root/repo/target/release/deps/ablation_alternatives-7da360514ee2a8b9.d: crates/bench/src/bin/ablation_alternatives.rs

/root/repo/target/release/deps/ablation_alternatives-7da360514ee2a8b9: crates/bench/src/bin/ablation_alternatives.rs

crates/bench/src/bin/ablation_alternatives.rs:
