/root/repo/target/release/deps/ablation_baseline-9a797cf8cd34a324.d: crates/bench/src/bin/ablation_baseline.rs

/root/repo/target/release/deps/ablation_baseline-9a797cf8cd34a324: crates/bench/src/bin/ablation_baseline.rs

crates/bench/src/bin/ablation_baseline.rs:
