/root/repo/target/release/deps/rrf_server-95367c87e1f8c546.d: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs

/root/repo/target/release/deps/rrf_server-95367c87e1f8c546: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs

crates/server/src/lib.rs:
crates/server/src/cache.rs:
crates/server/src/protocol.rs:
crates/server/src/server.rs:
crates/server/src/stats.rs:
