/root/repo/target/release/deps/generator_props-a2281ea183e3c2eb.d: crates/modgen/tests/generator_props.rs

/root/repo/target/release/deps/generator_props-a2281ea183e3c2eb: crates/modgen/tests/generator_props.rs

crates/modgen/tests/generator_props.rs:
