/root/repo/target/release/deps/flow_roundtrip-5d910a2c14db3794.d: crates/suite/../../tests/flow_roundtrip.rs

/root/repo/target/release/deps/flow_roundtrip-5d910a2c14db3794: crates/suite/../../tests/flow_roundtrip.rs

crates/suite/../../tests/flow_roundtrip.rs:
