/root/repo/target/release/deps/ablation_service-e1e4e648a79a452b.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/release/deps/ablation_service-e1e4e648a79a452b: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
