/root/repo/target/release/deps/ablation_alternatives-623d4c7edc265bd2.d: crates/bench/src/bin/ablation_alternatives.rs

/root/repo/target/release/deps/ablation_alternatives-623d4c7edc265bd2: crates/bench/src/bin/ablation_alternatives.rs

crates/bench/src/bin/ablation_alternatives.rs:
