/root/repo/target/release/deps/rrf_bitstream-81abac41d0a3043e.d: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs

/root/repo/target/release/deps/rrf_bitstream-81abac41d0a3043e: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs

crates/bitstream/src/lib.rs:
crates/bitstream/src/assemble.rs:
crates/bitstream/src/crc.rs:
crates/bitstream/src/frame.rs:
crates/bitstream/src/memory.rs:
crates/bitstream/src/relocate.rs:
