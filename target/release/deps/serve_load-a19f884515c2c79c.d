/root/repo/target/release/deps/serve_load-a19f884515c2c79c.d: crates/bench/src/bin/serve_load.rs

/root/repo/target/release/deps/serve_load-a19f884515c2c79c: crates/bench/src/bin/serve_load.rs

crates/bench/src/bin/serve_load.rs:
