/root/repo/target/release/deps/ablation_heterogeneity-625245b9494b926e.d: crates/bench/src/bin/ablation_heterogeneity.rs

/root/repo/target/release/deps/ablation_heterogeneity-625245b9494b926e: crates/bench/src/bin/ablation_heterogeneity.rs

crates/bench/src/bin/ablation_heterogeneity.rs:
