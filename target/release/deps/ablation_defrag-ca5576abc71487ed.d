/root/repo/target/release/deps/ablation_defrag-ca5576abc71487ed.d: crates/bench/src/bin/ablation_defrag.rs

/root/repo/target/release/deps/ablation_defrag-ca5576abc71487ed: crates/bench/src/bin/ablation_defrag.rs

crates/bench/src/bin/ablation_defrag.rs:
