/root/repo/target/release/deps/ablation_lns-e7515f70ffa800b6.d: crates/bench/src/bin/ablation_lns.rs

/root/repo/target/release/deps/ablation_lns-e7515f70ffa800b6: crates/bench/src/bin/ablation_lns.rs

crates/bench/src/bin/ablation_lns.rs:
