/root/repo/target/release/deps/rrf_modgen-b70e04e3b6718761.d: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs

/root/repo/target/release/deps/librrf_modgen-b70e04e3b6718761.rlib: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs

/root/repo/target/release/deps/librrf_modgen-b70e04e3b6718761.rmeta: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs

crates/modgen/src/lib.rs:
crates/modgen/src/alternatives.rs:
crates/modgen/src/layout.rs:
crates/modgen/src/spec.rs:
crates/modgen/src/workload.rs:
