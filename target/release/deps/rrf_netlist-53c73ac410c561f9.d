/root/repo/target/release/deps/rrf_netlist-53c73ac410c561f9.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs

/root/repo/target/release/deps/rrf_netlist-53c73ac410c561f9: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/net.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/pack.rs:
crates/netlist/src/parser.rs:
