/root/repo/target/release/deps/ablation_lns-b5d70dbd0a1763fd.d: crates/bench/src/bin/ablation_lns.rs

/root/repo/target/release/deps/ablation_lns-b5d70dbd0a1763fd: crates/bench/src/bin/ablation_lns.rs

crates/bench/src/bin/ablation_lns.rs:
