/root/repo/target/release/deps/proptest-982f8cad3f4ffdf2.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-982f8cad3f4ffdf2: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
