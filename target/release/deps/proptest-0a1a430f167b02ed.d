/root/repo/target/release/deps/proptest-0a1a430f167b02ed.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0a1a430f167b02ed.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0a1a430f167b02ed.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
