/root/repo/target/release/deps/rrf_modgen-604db5696675f44b.d: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs

/root/repo/target/release/deps/rrf_modgen-604db5696675f44b: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs

crates/modgen/src/lib.rs:
crates/modgen/src/alternatives.rs:
crates/modgen/src/layout.rs:
crates/modgen/src/spec.rs:
crates/modgen/src/workload.rs:
