/root/repo/target/release/deps/fabric_props-ba357a4d3590f2de.d: crates/fabric/tests/fabric_props.rs

/root/repo/target/release/deps/fabric_props-ba357a4d3590f2de: crates/fabric/tests/fabric_props.rs

crates/fabric/tests/fabric_props.rs:
