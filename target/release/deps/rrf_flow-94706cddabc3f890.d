/root/repo/target/release/deps/rrf_flow-94706cddabc3f890.d: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs

/root/repo/target/release/deps/rrf_flow-94706cddabc3f890: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs

crates/flow/src/lib.rs:
crates/flow/src/driver.rs:
crates/flow/src/io.rs:
crates/flow/src/report.rs:
crates/flow/src/spec.rs:
