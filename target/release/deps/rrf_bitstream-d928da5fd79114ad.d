/root/repo/target/release/deps/rrf_bitstream-d928da5fd79114ad.d: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs

/root/repo/target/release/deps/librrf_bitstream-d928da5fd79114ad.rlib: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs

/root/repo/target/release/deps/librrf_bitstream-d928da5fd79114ad.rmeta: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs

crates/bitstream/src/lib.rs:
crates/bitstream/src/assemble.rs:
crates/bitstream/src/crc.rs:
crates/bitstream/src/frame.rs:
crates/bitstream/src/memory.rs:
crates/bitstream/src/relocate.rs:
