/root/repo/target/release/deps/fig3-86a2fc9662e3f36c.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-86a2fc9662e3f36c: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
