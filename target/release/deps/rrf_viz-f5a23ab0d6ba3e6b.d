/root/repo/target/release/deps/rrf_viz-f5a23ab0d6ba3e6b.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs

/root/repo/target/release/deps/rrf_viz-f5a23ab0d6ba3e6b: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/svg.rs:
