/root/repo/target/release/deps/ablation_online-d020611746f3b732.d: crates/bench/src/bin/ablation_online.rs

/root/repo/target/release/deps/ablation_online-d020611746f3b732: crates/bench/src/bin/ablation_online.rs

crates/bench/src/bin/ablation_online.rs:
