/root/repo/target/release/deps/rrf_netlist-5d0678a159c020e0.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs

/root/repo/target/release/deps/librrf_netlist-5d0678a159c020e0.rlib: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs

/root/repo/target/release/deps/librrf_netlist-5d0678a159c020e0.rmeta: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/net.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/pack.rs:
crates/netlist/src/parser.rs:
