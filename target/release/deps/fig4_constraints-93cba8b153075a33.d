/root/repo/target/release/deps/fig4_constraints-93cba8b153075a33.d: crates/bench/src/bin/fig4_constraints.rs

/root/repo/target/release/deps/fig4_constraints-93cba8b153075a33: crates/bench/src/bin/fig4_constraints.rs

crates/bench/src/bin/fig4_constraints.rs:
