/root/repo/target/release/deps/rrf_flow-41e49c24c0510930.d: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs

/root/repo/target/release/deps/librrf_flow-41e49c24c0510930.rlib: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs

/root/repo/target/release/deps/librrf_flow-41e49c24c0510930.rmeta: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs

crates/flow/src/lib.rs:
crates/flow/src/driver.rs:
crates/flow/src/io.rs:
crates/flow/src/report.rs:
crates/flow/src/spec.rs:
