/root/repo/target/release/deps/ablation_service-bfc15342dbbfa10c.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/release/deps/ablation_service-bfc15342dbbfa10c: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
