/root/repo/target/release/deps/fig2_flow-c29efab8046e4db2.d: crates/bench/src/bin/fig2_flow.rs

/root/repo/target/release/deps/fig2_flow-c29efab8046e4db2: crates/bench/src/bin/fig2_flow.rs

crates/bench/src/bin/fig2_flow.rs:
