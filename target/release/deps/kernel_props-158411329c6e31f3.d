/root/repo/target/release/deps/kernel_props-158411329c6e31f3.d: crates/geost/tests/kernel_props.rs

/root/repo/target/release/deps/kernel_props-158411329c6e31f3: crates/geost/tests/kernel_props.rs

crates/geost/tests/kernel_props.rs:
