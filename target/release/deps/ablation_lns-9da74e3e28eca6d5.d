/root/repo/target/release/deps/ablation_lns-9da74e3e28eca6d5.d: crates/bench/src/bin/ablation_lns.rs

/root/repo/target/release/deps/ablation_lns-9da74e3e28eca6d5: crates/bench/src/bin/ablation_lns.rs

crates/bench/src/bin/ablation_lns.rs:
