/root/repo/target/release/deps/rrf_serve-af9b2781ddf04d4e.d: crates/server/src/bin/rrf-serve.rs

/root/repo/target/release/deps/rrf_serve-af9b2781ddf04d4e: crates/server/src/bin/rrf-serve.rs

crates/server/src/bin/rrf-serve.rs:
