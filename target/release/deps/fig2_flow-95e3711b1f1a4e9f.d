/root/repo/target/release/deps/fig2_flow-95e3711b1f1a4e9f.d: crates/bench/src/bin/fig2_flow.rs

/root/repo/target/release/deps/fig2_flow-95e3711b1f1a4e9f: crates/bench/src/bin/fig2_flow.rs

crates/bench/src/bin/fig2_flow.rs:
