/root/repo/target/release/deps/fig1-51c9553d3cf2563f.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-51c9553d3cf2563f: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
