/root/repo/target/release/deps/fig5-29dfa93da3bde412.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-29dfa93da3bde412: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
