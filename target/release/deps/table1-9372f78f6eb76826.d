/root/repo/target/release/deps/table1-9372f78f6eb76826.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-9372f78f6eb76826: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
