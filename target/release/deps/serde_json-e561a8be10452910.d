/root/repo/target/release/deps/serde_json-e561a8be10452910.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-e561a8be10452910: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
