/root/repo/target/release/deps/rrf_fabric-37c26f052c2f79e0.d: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs

/root/repo/target/release/deps/librrf_fabric-37c26f052c2f79e0.rlib: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs

/root/repo/target/release/deps/librrf_fabric-37c26f052c2f79e0.rmeta: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/device.rs:
crates/fabric/src/error.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/grid.rs:
crates/fabric/src/region.rs:
crates/fabric/src/resource.rs:
crates/fabric/src/stats.rs:
