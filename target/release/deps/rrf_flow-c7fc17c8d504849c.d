/root/repo/target/release/deps/rrf_flow-c7fc17c8d504849c.d: crates/flow/src/bin/rrf-flow.rs

/root/repo/target/release/deps/rrf_flow-c7fc17c8d504849c: crates/flow/src/bin/rrf-flow.rs

crates/flow/src/bin/rrf-flow.rs:
