/root/repo/target/release/deps/ablation_search-414910fe986d09ce.d: crates/bench/src/bin/ablation_search.rs

/root/repo/target/release/deps/ablation_search-414910fe986d09ce: crates/bench/src/bin/ablation_search.rs

crates/bench/src/bin/ablation_search.rs:
