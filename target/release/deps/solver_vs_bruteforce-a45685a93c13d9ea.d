/root/repo/target/release/deps/solver_vs_bruteforce-a45685a93c13d9ea.d: crates/suite/../../tests/solver_vs_bruteforce.rs

/root/repo/target/release/deps/solver_vs_bruteforce-a45685a93c13d9ea: crates/suite/../../tests/solver_vs_bruteforce.rs

crates/suite/../../tests/solver_vs_bruteforce.rs:
