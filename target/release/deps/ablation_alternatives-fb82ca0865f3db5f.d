/root/repo/target/release/deps/ablation_alternatives-fb82ca0865f3db5f.d: crates/bench/src/bin/ablation_alternatives.rs

/root/repo/target/release/deps/ablation_alternatives-fb82ca0865f3db5f: crates/bench/src/bin/ablation_alternatives.rs

crates/bench/src/bin/ablation_alternatives.rs:
