/root/repo/target/release/deps/rrf_serve-1b42cfda7d042bbb.d: crates/server/src/bin/rrf-serve.rs

/root/repo/target/release/deps/rrf_serve-1b42cfda7d042bbb: crates/server/src/bin/rrf-serve.rs

crates/server/src/bin/rrf-serve.rs:
