/root/repo/target/release/deps/ablation_baseline-8ea5978ee23a9358.d: crates/bench/src/bin/ablation_baseline.rs

/root/repo/target/release/deps/ablation_baseline-8ea5978ee23a9358: crates/bench/src/bin/ablation_baseline.rs

crates/bench/src/bin/ablation_baseline.rs:
