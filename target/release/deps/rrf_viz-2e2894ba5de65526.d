/root/repo/target/release/deps/rrf_viz-2e2894ba5de65526.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs

/root/repo/target/release/deps/librrf_viz-2e2894ba5de65526.rlib: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs

/root/repo/target/release/deps/librrf_viz-2e2894ba5de65526.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/svg.rs:
