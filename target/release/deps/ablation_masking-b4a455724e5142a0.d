/root/repo/target/release/deps/ablation_masking-b4a455724e5142a0.d: crates/bench/src/bin/ablation_masking.rs

/root/repo/target/release/deps/ablation_masking-b4a455724e5142a0: crates/bench/src/bin/ablation_masking.rs

crates/bench/src/bin/ablation_masking.rs:
