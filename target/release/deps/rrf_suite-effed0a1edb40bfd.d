/root/repo/target/release/deps/rrf_suite-effed0a1edb40bfd.d: crates/suite/src/lib.rs

/root/repo/target/release/deps/rrf_suite-effed0a1edb40bfd: crates/suite/src/lib.rs

crates/suite/src/lib.rs:
