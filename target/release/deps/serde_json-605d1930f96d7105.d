/root/repo/target/release/deps/serde_json-605d1930f96d7105.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-605d1930f96d7105.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-605d1930f96d7105.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
