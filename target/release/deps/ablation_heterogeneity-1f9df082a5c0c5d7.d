/root/repo/target/release/deps/ablation_heterogeneity-1f9df082a5c0c5d7.d: crates/bench/src/bin/ablation_heterogeneity.rs

/root/repo/target/release/deps/ablation_heterogeneity-1f9df082a5c0c5d7: crates/bench/src/bin/ablation_heterogeneity.rs

crates/bench/src/bin/ablation_heterogeneity.rs:
