/root/repo/target/release/deps/serde-faecd0f0e53d9be0.d: vendor/serde/src/lib.rs vendor/serde/src/impls.rs vendor/serde/src/value.rs

/root/repo/target/release/deps/serde-faecd0f0e53d9be0: vendor/serde/src/lib.rs vendor/serde/src/impls.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/impls.rs:
vendor/serde/src/value.rs:
