/root/repo/target/release/deps/ablation_search-beb877ab2a1bef19.d: crates/bench/src/bin/ablation_search.rs

/root/repo/target/release/deps/ablation_search-beb877ab2a1bef19: crates/bench/src/bin/ablation_search.rs

crates/bench/src/bin/ablation_search.rs:
