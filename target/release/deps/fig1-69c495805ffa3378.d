/root/repo/target/release/deps/fig1-69c495805ffa3378.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-69c495805ffa3378: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
