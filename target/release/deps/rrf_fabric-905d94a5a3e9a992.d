/root/repo/target/release/deps/rrf_fabric-905d94a5a3e9a992.d: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs

/root/repo/target/release/deps/rrf_fabric-905d94a5a3e9a992: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/device.rs:
crates/fabric/src/error.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/grid.rs:
crates/fabric/src/region.rs:
crates/fabric/src/resource.rs:
crates/fabric/src/stats.rs:
