/root/repo/target/release/deps/ablation_online-ed6217d9d939030a.d: crates/bench/src/bin/ablation_online.rs

/root/repo/target/release/deps/ablation_online-ed6217d9d939030a: crates/bench/src/bin/ablation_online.rs

crates/bench/src/bin/ablation_online.rs:
