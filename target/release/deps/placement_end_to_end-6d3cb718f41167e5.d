/root/repo/target/release/deps/placement_end_to_end-6d3cb718f41167e5.d: crates/suite/../../tests/placement_end_to_end.rs

/root/repo/target/release/deps/placement_end_to_end-6d3cb718f41167e5: crates/suite/../../tests/placement_end_to_end.rs

crates/suite/../../tests/placement_end_to_end.rs:
