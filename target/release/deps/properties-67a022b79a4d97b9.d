/root/repo/target/release/deps/properties-67a022b79a4d97b9.d: crates/suite/../../tests/properties.rs

/root/repo/target/release/deps/properties-67a022b79a4d97b9: crates/suite/../../tests/properties.rs

crates/suite/../../tests/properties.rs:
