/root/repo/target/release/deps/fig5-d7435a253c444cbe.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-d7435a253c444cbe: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
