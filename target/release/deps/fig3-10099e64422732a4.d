/root/repo/target/release/deps/fig3-10099e64422732a4.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-10099e64422732a4: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
