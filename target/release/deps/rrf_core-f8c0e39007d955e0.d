/root/repo/target/release/deps/rrf_core-f8c0e39007d955e0.d: crates/core/src/lib.rs crates/core/src/anneal.rs crates/core/src/baseline.rs crates/core/src/cp.rs crates/core/src/lns.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/placement.rs crates/core/src/problem.rs crates/core/src/reconfig.rs crates/core/src/service.rs crates/core/src/verify.rs

/root/repo/target/release/deps/rrf_core-f8c0e39007d955e0: crates/core/src/lib.rs crates/core/src/anneal.rs crates/core/src/baseline.rs crates/core/src/cp.rs crates/core/src/lns.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/placement.rs crates/core/src/problem.rs crates/core/src/reconfig.rs crates/core/src/service.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/anneal.rs:
crates/core/src/baseline.rs:
crates/core/src/cp.rs:
crates/core/src/lns.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/online.rs:
crates/core/src/placement.rs:
crates/core/src/problem.rs:
crates/core/src/reconfig.rs:
crates/core/src/service.rs:
crates/core/src/verify.rs:
