/root/repo/target/release/deps/assembly_props-b3360d4811d1745e.d: crates/bitstream/tests/assembly_props.rs

/root/repo/target/release/deps/assembly_props-b3360d4811d1745e: crates/bitstream/tests/assembly_props.rs

crates/bitstream/tests/assembly_props.rs:
