/root/repo/target/release/deps/rrf_geost-a8804a4d659015da.d: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs

/root/repo/target/release/deps/rrf_geost-a8804a4d659015da: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs

crates/geost/src/lib.rs:
crates/geost/src/compat.rs:
crates/geost/src/grid.rs:
crates/geost/src/nonoverlap.rs:
crates/geost/src/object.rs:
crates/geost/src/shape.rs:
