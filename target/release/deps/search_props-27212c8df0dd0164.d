/root/repo/target/release/deps/search_props-27212c8df0dd0164.d: crates/solver/tests/search_props.rs

/root/repo/target/release/deps/search_props-27212c8df0dd0164: crates/solver/tests/search_props.rs

crates/solver/tests/search_props.rs:
