/root/repo/target/release/deps/ablation_defrag-5d826e419915f83c.d: crates/bench/src/bin/ablation_defrag.rs

/root/repo/target/release/deps/ablation_defrag-5d826e419915f83c: crates/bench/src/bin/ablation_defrag.rs

crates/bench/src/bin/ablation_defrag.rs:
