/root/repo/target/release/deps/fig4_constraints-ef5c03b88ebf9c7d.d: crates/bench/src/bin/fig4_constraints.rs

/root/repo/target/release/deps/fig4_constraints-ef5c03b88ebf9c7d: crates/bench/src/bin/fig4_constraints.rs

crates/bench/src/bin/fig4_constraints.rs:
