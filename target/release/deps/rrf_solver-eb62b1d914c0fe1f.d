/root/repo/target/release/deps/rrf_solver-eb62b1d914c0fe1f.d: crates/solver/src/lib.rs crates/solver/src/constraints/mod.rs crates/solver/src/constraints/alldiff.rs crates/solver/src/constraints/arith.rs crates/solver/src/constraints/count.rs crates/solver/src/constraints/cumulative.rs crates/solver/src/constraints/element.rs crates/solver/src/constraints/lex.rs crates/solver/src/constraints/linear.rs crates/solver/src/constraints/logic.rs crates/solver/src/constraints/minmax.rs crates/solver/src/constraints/table.rs crates/solver/src/domain.rs crates/solver/src/model.rs crates/solver/src/portfolio.rs crates/solver/src/propagator.rs crates/solver/src/search.rs crates/solver/src/space.rs

/root/repo/target/release/deps/librrf_solver-eb62b1d914c0fe1f.rlib: crates/solver/src/lib.rs crates/solver/src/constraints/mod.rs crates/solver/src/constraints/alldiff.rs crates/solver/src/constraints/arith.rs crates/solver/src/constraints/count.rs crates/solver/src/constraints/cumulative.rs crates/solver/src/constraints/element.rs crates/solver/src/constraints/lex.rs crates/solver/src/constraints/linear.rs crates/solver/src/constraints/logic.rs crates/solver/src/constraints/minmax.rs crates/solver/src/constraints/table.rs crates/solver/src/domain.rs crates/solver/src/model.rs crates/solver/src/portfolio.rs crates/solver/src/propagator.rs crates/solver/src/search.rs crates/solver/src/space.rs

/root/repo/target/release/deps/librrf_solver-eb62b1d914c0fe1f.rmeta: crates/solver/src/lib.rs crates/solver/src/constraints/mod.rs crates/solver/src/constraints/alldiff.rs crates/solver/src/constraints/arith.rs crates/solver/src/constraints/count.rs crates/solver/src/constraints/cumulative.rs crates/solver/src/constraints/element.rs crates/solver/src/constraints/lex.rs crates/solver/src/constraints/linear.rs crates/solver/src/constraints/logic.rs crates/solver/src/constraints/minmax.rs crates/solver/src/constraints/table.rs crates/solver/src/domain.rs crates/solver/src/model.rs crates/solver/src/portfolio.rs crates/solver/src/propagator.rs crates/solver/src/search.rs crates/solver/src/space.rs

crates/solver/src/lib.rs:
crates/solver/src/constraints/mod.rs:
crates/solver/src/constraints/alldiff.rs:
crates/solver/src/constraints/arith.rs:
crates/solver/src/constraints/count.rs:
crates/solver/src/constraints/cumulative.rs:
crates/solver/src/constraints/element.rs:
crates/solver/src/constraints/lex.rs:
crates/solver/src/constraints/linear.rs:
crates/solver/src/constraints/logic.rs:
crates/solver/src/constraints/minmax.rs:
crates/solver/src/constraints/table.rs:
crates/solver/src/domain.rs:
crates/solver/src/model.rs:
crates/solver/src/portfolio.rs:
crates/solver/src/propagator.rs:
crates/solver/src/search.rs:
crates/solver/src/space.rs:
