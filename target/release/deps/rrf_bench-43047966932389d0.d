/root/repo/target/release/deps/rrf_bench-43047966932389d0.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/release/deps/rrf_bench-43047966932389d0: crates/bench/src/lib.rs crates/bench/src/experiment.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
