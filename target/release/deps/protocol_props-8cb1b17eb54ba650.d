/root/repo/target/release/deps/protocol_props-8cb1b17eb54ba650.d: crates/server/tests/protocol_props.rs

/root/repo/target/release/deps/protocol_props-8cb1b17eb54ba650: crates/server/tests/protocol_props.rs

crates/server/tests/protocol_props.rs:
