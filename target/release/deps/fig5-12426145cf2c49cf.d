/root/repo/target/release/deps/fig5-12426145cf2c49cf.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-12426145cf2c49cf: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
