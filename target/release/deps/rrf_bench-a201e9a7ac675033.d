/root/repo/target/release/deps/rrf_bench-a201e9a7ac675033.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/release/deps/librrf_bench-a201e9a7ac675033.rlib: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/release/deps/librrf_bench-a201e9a7ac675033.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
