/root/repo/target/release/deps/ablation_heterogeneity-98e932c99c936f68.d: crates/bench/src/bin/ablation_heterogeneity.rs

/root/repo/target/release/deps/ablation_heterogeneity-98e932c99c936f68: crates/bench/src/bin/ablation_heterogeneity.rs

crates/bench/src/bin/ablation_heterogeneity.rs:
