/root/repo/target/release/deps/rrf_solver-8b0038bfae5e24a8.d: crates/solver/src/lib.rs crates/solver/src/constraints/mod.rs crates/solver/src/constraints/alldiff.rs crates/solver/src/constraints/arith.rs crates/solver/src/constraints/count.rs crates/solver/src/constraints/cumulative.rs crates/solver/src/constraints/element.rs crates/solver/src/constraints/lex.rs crates/solver/src/constraints/linear.rs crates/solver/src/constraints/logic.rs crates/solver/src/constraints/minmax.rs crates/solver/src/constraints/table.rs crates/solver/src/domain.rs crates/solver/src/model.rs crates/solver/src/portfolio.rs crates/solver/src/propagator.rs crates/solver/src/search.rs crates/solver/src/space.rs

/root/repo/target/release/deps/rrf_solver-8b0038bfae5e24a8: crates/solver/src/lib.rs crates/solver/src/constraints/mod.rs crates/solver/src/constraints/alldiff.rs crates/solver/src/constraints/arith.rs crates/solver/src/constraints/count.rs crates/solver/src/constraints/cumulative.rs crates/solver/src/constraints/element.rs crates/solver/src/constraints/lex.rs crates/solver/src/constraints/linear.rs crates/solver/src/constraints/logic.rs crates/solver/src/constraints/minmax.rs crates/solver/src/constraints/table.rs crates/solver/src/domain.rs crates/solver/src/model.rs crates/solver/src/portfolio.rs crates/solver/src/propagator.rs crates/solver/src/search.rs crates/solver/src/space.rs

crates/solver/src/lib.rs:
crates/solver/src/constraints/mod.rs:
crates/solver/src/constraints/alldiff.rs:
crates/solver/src/constraints/arith.rs:
crates/solver/src/constraints/count.rs:
crates/solver/src/constraints/cumulative.rs:
crates/solver/src/constraints/element.rs:
crates/solver/src/constraints/lex.rs:
crates/solver/src/constraints/linear.rs:
crates/solver/src/constraints/logic.rs:
crates/solver/src/constraints/minmax.rs:
crates/solver/src/constraints/table.rs:
crates/solver/src/domain.rs:
crates/solver/src/model.rs:
crates/solver/src/portfolio.rs:
crates/solver/src/propagator.rs:
crates/solver/src/search.rs:
crates/solver/src/space.rs:
