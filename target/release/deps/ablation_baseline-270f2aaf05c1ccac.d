/root/repo/target/release/deps/ablation_baseline-270f2aaf05c1ccac.d: crates/bench/src/bin/ablation_baseline.rs

/root/repo/target/release/deps/ablation_baseline-270f2aaf05c1ccac: crates/bench/src/bin/ablation_baseline.rs

crates/bench/src/bin/ablation_baseline.rs:
