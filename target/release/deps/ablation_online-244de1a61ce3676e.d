/root/repo/target/release/deps/ablation_online-244de1a61ce3676e.d: crates/bench/src/bin/ablation_online.rs

/root/repo/target/release/deps/ablation_online-244de1a61ce3676e: crates/bench/src/bin/ablation_online.rs

crates/bench/src/bin/ablation_online.rs:
