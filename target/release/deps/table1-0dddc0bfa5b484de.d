/root/repo/target/release/deps/table1-0dddc0bfa5b484de.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-0dddc0bfa5b484de: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
