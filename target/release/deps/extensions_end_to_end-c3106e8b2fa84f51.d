/root/repo/target/release/deps/extensions_end_to_end-c3106e8b2fa84f51.d: crates/suite/../../tests/extensions_end_to_end.rs

/root/repo/target/release/deps/extensions_end_to_end-c3106e8b2fa84f51: crates/suite/../../tests/extensions_end_to_end.rs

crates/suite/../../tests/extensions_end_to_end.rs:
