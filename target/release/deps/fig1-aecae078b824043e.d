/root/repo/target/release/deps/fig1-aecae078b824043e.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-aecae078b824043e: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
