/root/repo/target/release/examples/image_pipeline-f7830dad6aec9b12.d: crates/suite/../../examples/image_pipeline.rs

/root/repo/target/release/examples/image_pipeline-f7830dad6aec9b12: crates/suite/../../examples/image_pipeline.rs

crates/suite/../../examples/image_pipeline.rs:
