/root/repo/target/release/examples/quickstart-9e687a9fd54c81a1.d: crates/suite/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9e687a9fd54c81a1: crates/suite/../../examples/quickstart.rs

crates/suite/../../examples/quickstart.rs:
