/root/repo/target/release/examples/sdr_modem-45e74c88b609dcf2.d: crates/suite/../../examples/sdr_modem.rs

/root/repo/target/release/examples/sdr_modem-45e74c88b609dcf2: crates/suite/../../examples/sdr_modem.rs

crates/suite/../../examples/sdr_modem.rs:
