/root/repo/target/release/examples/design_flow-0df7d5a50f56c628.d: crates/suite/../../examples/design_flow.rs

/root/repo/target/release/examples/design_flow-0df7d5a50f56c628: crates/suite/../../examples/design_flow.rs

crates/suite/../../examples/design_flow.rs:
