/root/repo/target/release/examples/full_tool_chain-8d07faf08d3e4db9.d: crates/suite/../../examples/full_tool_chain.rs

/root/repo/target/release/examples/full_tool_chain-8d07faf08d3e4db9: crates/suite/../../examples/full_tool_chain.rs

crates/suite/../../examples/full_tool_chain.rs:
