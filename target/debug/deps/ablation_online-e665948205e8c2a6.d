/root/repo/target/debug/deps/ablation_online-e665948205e8c2a6.d: crates/bench/src/bin/ablation_online.rs

/root/repo/target/debug/deps/ablation_online-e665948205e8c2a6: crates/bench/src/bin/ablation_online.rs

crates/bench/src/bin/ablation_online.rs:
