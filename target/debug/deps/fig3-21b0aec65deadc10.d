/root/repo/target/debug/deps/fig3-21b0aec65deadc10.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-21b0aec65deadc10: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
