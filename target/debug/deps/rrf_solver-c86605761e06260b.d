/root/repo/target/debug/deps/rrf_solver-c86605761e06260b.d: crates/solver/src/lib.rs crates/solver/src/constraints/mod.rs crates/solver/src/constraints/alldiff.rs crates/solver/src/constraints/arith.rs crates/solver/src/constraints/count.rs crates/solver/src/constraints/cumulative.rs crates/solver/src/constraints/element.rs crates/solver/src/constraints/lex.rs crates/solver/src/constraints/linear.rs crates/solver/src/constraints/logic.rs crates/solver/src/constraints/minmax.rs crates/solver/src/constraints/table.rs crates/solver/src/domain.rs crates/solver/src/model.rs crates/solver/src/portfolio.rs crates/solver/src/propagator.rs crates/solver/src/search.rs crates/solver/src/space.rs Cargo.toml

/root/repo/target/debug/deps/librrf_solver-c86605761e06260b.rmeta: crates/solver/src/lib.rs crates/solver/src/constraints/mod.rs crates/solver/src/constraints/alldiff.rs crates/solver/src/constraints/arith.rs crates/solver/src/constraints/count.rs crates/solver/src/constraints/cumulative.rs crates/solver/src/constraints/element.rs crates/solver/src/constraints/lex.rs crates/solver/src/constraints/linear.rs crates/solver/src/constraints/logic.rs crates/solver/src/constraints/minmax.rs crates/solver/src/constraints/table.rs crates/solver/src/domain.rs crates/solver/src/model.rs crates/solver/src/portfolio.rs crates/solver/src/propagator.rs crates/solver/src/search.rs crates/solver/src/space.rs Cargo.toml

crates/solver/src/lib.rs:
crates/solver/src/constraints/mod.rs:
crates/solver/src/constraints/alldiff.rs:
crates/solver/src/constraints/arith.rs:
crates/solver/src/constraints/count.rs:
crates/solver/src/constraints/cumulative.rs:
crates/solver/src/constraints/element.rs:
crates/solver/src/constraints/lex.rs:
crates/solver/src/constraints/linear.rs:
crates/solver/src/constraints/logic.rs:
crates/solver/src/constraints/minmax.rs:
crates/solver/src/constraints/table.rs:
crates/solver/src/domain.rs:
crates/solver/src/model.rs:
crates/solver/src/portfolio.rs:
crates/solver/src/propagator.rs:
crates/solver/src/search.rs:
crates/solver/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
