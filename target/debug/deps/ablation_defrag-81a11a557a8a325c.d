/root/repo/target/debug/deps/ablation_defrag-81a11a557a8a325c.d: crates/bench/src/bin/ablation_defrag.rs Cargo.toml

/root/repo/target/debug/deps/libablation_defrag-81a11a557a8a325c.rmeta: crates/bench/src/bin/ablation_defrag.rs Cargo.toml

crates/bench/src/bin/ablation_defrag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
