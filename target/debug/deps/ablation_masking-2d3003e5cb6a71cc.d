/root/repo/target/debug/deps/ablation_masking-2d3003e5cb6a71cc.d: crates/bench/src/bin/ablation_masking.rs

/root/repo/target/debug/deps/ablation_masking-2d3003e5cb6a71cc: crates/bench/src/bin/ablation_masking.rs

crates/bench/src/bin/ablation_masking.rs:
