/root/repo/target/debug/deps/table1-ee41a5357d0d376c.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-ee41a5357d0d376c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
