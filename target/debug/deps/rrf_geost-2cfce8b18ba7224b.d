/root/repo/target/debug/deps/rrf_geost-2cfce8b18ba7224b.d: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs

/root/repo/target/debug/deps/librrf_geost-2cfce8b18ba7224b.rlib: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs

/root/repo/target/debug/deps/librrf_geost-2cfce8b18ba7224b.rmeta: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs

crates/geost/src/lib.rs:
crates/geost/src/compat.rs:
crates/geost/src/grid.rs:
crates/geost/src/nonoverlap.rs:
crates/geost/src/object.rs:
crates/geost/src/shape.rs:
