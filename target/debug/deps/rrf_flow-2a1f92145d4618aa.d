/root/repo/target/debug/deps/rrf_flow-2a1f92145d4618aa.d: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs

/root/repo/target/debug/deps/rrf_flow-2a1f92145d4618aa: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs

crates/flow/src/lib.rs:
crates/flow/src/driver.rs:
crates/flow/src/io.rs:
crates/flow/src/report.rs:
crates/flow/src/spec.rs:
