/root/repo/target/debug/deps/rrf_flow-f74da05c30f91715.d: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs

/root/repo/target/debug/deps/librrf_flow-f74da05c30f91715.rlib: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs

/root/repo/target/debug/deps/librrf_flow-f74da05c30f91715.rmeta: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs

crates/flow/src/lib.rs:
crates/flow/src/driver.rs:
crates/flow/src/io.rs:
crates/flow/src/report.rs:
crates/flow/src/spec.rs:
