/root/repo/target/debug/deps/generator_props-2ba836a5a10104f2.d: crates/modgen/tests/generator_props.rs Cargo.toml

/root/repo/target/debug/deps/libgenerator_props-2ba836a5a10104f2.rmeta: crates/modgen/tests/generator_props.rs Cargo.toml

crates/modgen/tests/generator_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
