/root/repo/target/debug/deps/rrf_viz-421280cbd037d178.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/librrf_viz-421280cbd037d178.rlib: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/librrf_viz-421280cbd037d178.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/svg.rs:
