/root/repo/target/debug/deps/fabric_props-099d347377beea4f.d: crates/fabric/tests/fabric_props.rs

/root/repo/target/debug/deps/fabric_props-099d347377beea4f: crates/fabric/tests/fabric_props.rs

crates/fabric/tests/fabric_props.rs:
