/root/repo/target/debug/deps/fabric_props-c2041155e73a6d66.d: crates/fabric/tests/fabric_props.rs Cargo.toml

/root/repo/target/debug/deps/libfabric_props-c2041155e73a6d66.rmeta: crates/fabric/tests/fabric_props.rs Cargo.toml

crates/fabric/tests/fabric_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
