/root/repo/target/debug/deps/fig2_flow-03e20672b9a2485e.d: crates/bench/src/bin/fig2_flow.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_flow-03e20672b9a2485e.rmeta: crates/bench/src/bin/fig2_flow.rs Cargo.toml

crates/bench/src/bin/fig2_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
