/root/repo/target/debug/deps/ablation_baseline-e393f3503f44a21d.d: crates/bench/src/bin/ablation_baseline.rs

/root/repo/target/debug/deps/ablation_baseline-e393f3503f44a21d: crates/bench/src/bin/ablation_baseline.rs

crates/bench/src/bin/ablation_baseline.rs:
