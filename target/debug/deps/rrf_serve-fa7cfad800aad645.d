/root/repo/target/debug/deps/rrf_serve-fa7cfad800aad645.d: crates/server/src/bin/rrf-serve.rs

/root/repo/target/debug/deps/rrf_serve-fa7cfad800aad645: crates/server/src/bin/rrf-serve.rs

crates/server/src/bin/rrf-serve.rs:
