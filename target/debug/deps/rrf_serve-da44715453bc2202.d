/root/repo/target/debug/deps/rrf_serve-da44715453bc2202.d: crates/server/src/bin/rrf-serve.rs Cargo.toml

/root/repo/target/debug/deps/librrf_serve-da44715453bc2202.rmeta: crates/server/src/bin/rrf-serve.rs Cargo.toml

crates/server/src/bin/rrf-serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
