/root/repo/target/debug/deps/serde_json-c9a887200ed49a9a.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-c9a887200ed49a9a: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
