/root/repo/target/debug/deps/rrf_bitstream-7b5a8c6e323fb3b6.d: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs

/root/repo/target/debug/deps/rrf_bitstream-7b5a8c6e323fb3b6: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs

crates/bitstream/src/lib.rs:
crates/bitstream/src/assemble.rs:
crates/bitstream/src/crc.rs:
crates/bitstream/src/frame.rs:
crates/bitstream/src/memory.rs:
crates/bitstream/src/relocate.rs:
