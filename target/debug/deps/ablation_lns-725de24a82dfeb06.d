/root/repo/target/debug/deps/ablation_lns-725de24a82dfeb06.d: crates/bench/src/bin/ablation_lns.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lns-725de24a82dfeb06.rmeta: crates/bench/src/bin/ablation_lns.rs Cargo.toml

crates/bench/src/bin/ablation_lns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
