/root/repo/target/debug/deps/rrf_netlist-5954441026c60730.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/librrf_netlist-5954441026c60730.rmeta: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/net.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/pack.rs:
crates/netlist/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
