/root/repo/target/debug/deps/table1-a5bacf9ebfd9abad.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-a5bacf9ebfd9abad: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
