/root/repo/target/debug/deps/ablation_lns-1baff9ad79663ee3.d: crates/bench/src/bin/ablation_lns.rs

/root/repo/target/debug/deps/ablation_lns-1baff9ad79663ee3: crates/bench/src/bin/ablation_lns.rs

crates/bench/src/bin/ablation_lns.rs:
