/root/repo/target/debug/deps/serve_load-c2f7c3eeaef578bc.d: crates/bench/src/bin/serve_load.rs

/root/repo/target/debug/deps/serve_load-c2f7c3eeaef578bc: crates/bench/src/bin/serve_load.rs

crates/bench/src/bin/serve_load.rs:
