/root/repo/target/debug/deps/protocol_props-3259d7744ee42ed5.d: crates/server/tests/protocol_props.rs

/root/repo/target/debug/deps/protocol_props-3259d7744ee42ed5: crates/server/tests/protocol_props.rs

crates/server/tests/protocol_props.rs:
