/root/repo/target/debug/deps/rrf_flow-b11297fef6525000.d: crates/flow/src/bin/rrf-flow.rs Cargo.toml

/root/repo/target/debug/deps/librrf_flow-b11297fef6525000.rmeta: crates/flow/src/bin/rrf-flow.rs Cargo.toml

crates/flow/src/bin/rrf-flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
