/root/repo/target/debug/deps/geost_vs_pairwise-88f832fee12ed7e3.d: crates/suite/../../tests/geost_vs_pairwise.rs Cargo.toml

/root/repo/target/debug/deps/libgeost_vs_pairwise-88f832fee12ed7e3.rmeta: crates/suite/../../tests/geost_vs_pairwise.rs Cargo.toml

crates/suite/../../tests/geost_vs_pairwise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
