/root/repo/target/debug/deps/rrf_netlist-296bb7079d710cf7.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs

/root/repo/target/debug/deps/rrf_netlist-296bb7079d710cf7: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/net.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/pack.rs:
crates/netlist/src/parser.rs:
