/root/repo/target/debug/deps/rrf_suite-9f740c287079ce3c.d: crates/suite/src/lib.rs

/root/repo/target/debug/deps/librrf_suite-9f740c287079ce3c.rlib: crates/suite/src/lib.rs

/root/repo/target/debug/deps/librrf_suite-9f740c287079ce3c.rmeta: crates/suite/src/lib.rs

crates/suite/src/lib.rs:
