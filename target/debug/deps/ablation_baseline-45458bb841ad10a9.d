/root/repo/target/debug/deps/ablation_baseline-45458bb841ad10a9.d: crates/bench/src/bin/ablation_baseline.rs Cargo.toml

/root/repo/target/debug/deps/libablation_baseline-45458bb841ad10a9.rmeta: crates/bench/src/bin/ablation_baseline.rs Cargo.toml

crates/bench/src/bin/ablation_baseline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
