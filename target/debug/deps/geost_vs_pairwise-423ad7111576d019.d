/root/repo/target/debug/deps/geost_vs_pairwise-423ad7111576d019.d: crates/suite/../../tests/geost_vs_pairwise.rs

/root/repo/target/debug/deps/geost_vs_pairwise-423ad7111576d019: crates/suite/../../tests/geost_vs_pairwise.rs

crates/suite/../../tests/geost_vs_pairwise.rs:
