/root/repo/target/debug/deps/extensions_end_to_end-5fe3c69b22026b19.d: crates/suite/../../tests/extensions_end_to_end.rs

/root/repo/target/debug/deps/extensions_end_to_end-5fe3c69b22026b19: crates/suite/../../tests/extensions_end_to_end.rs

crates/suite/../../tests/extensions_end_to_end.rs:
