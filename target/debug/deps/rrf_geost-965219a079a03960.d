/root/repo/target/debug/deps/rrf_geost-965219a079a03960.d: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs Cargo.toml

/root/repo/target/debug/deps/librrf_geost-965219a079a03960.rmeta: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs Cargo.toml

crates/geost/src/lib.rs:
crates/geost/src/compat.rs:
crates/geost/src/grid.rs:
crates/geost/src/nonoverlap.rs:
crates/geost/src/object.rs:
crates/geost/src/shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
