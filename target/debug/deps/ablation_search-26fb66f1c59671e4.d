/root/repo/target/debug/deps/ablation_search-26fb66f1c59671e4.d: crates/bench/src/bin/ablation_search.rs

/root/repo/target/debug/deps/ablation_search-26fb66f1c59671e4: crates/bench/src/bin/ablation_search.rs

crates/bench/src/bin/ablation_search.rs:
