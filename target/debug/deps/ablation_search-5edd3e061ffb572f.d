/root/repo/target/debug/deps/ablation_search-5edd3e061ffb572f.d: crates/bench/src/bin/ablation_search.rs Cargo.toml

/root/repo/target/debug/deps/libablation_search-5edd3e061ffb572f.rmeta: crates/bench/src/bin/ablation_search.rs Cargo.toml

crates/bench/src/bin/ablation_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
