/root/repo/target/debug/deps/ablation_baseline-599a5c535ec5705b.d: crates/bench/src/bin/ablation_baseline.rs

/root/repo/target/debug/deps/ablation_baseline-599a5c535ec5705b: crates/bench/src/bin/ablation_baseline.rs

crates/bench/src/bin/ablation_baseline.rs:
