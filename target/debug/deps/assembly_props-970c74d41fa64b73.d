/root/repo/target/debug/deps/assembly_props-970c74d41fa64b73.d: crates/bitstream/tests/assembly_props.rs Cargo.toml

/root/repo/target/debug/deps/libassembly_props-970c74d41fa64b73.rmeta: crates/bitstream/tests/assembly_props.rs Cargo.toml

crates/bitstream/tests/assembly_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
