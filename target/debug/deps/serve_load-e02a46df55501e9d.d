/root/repo/target/debug/deps/serve_load-e02a46df55501e9d.d: crates/bench/src/bin/serve_load.rs Cargo.toml

/root/repo/target/debug/deps/libserve_load-e02a46df55501e9d.rmeta: crates/bench/src/bin/serve_load.rs Cargo.toml

crates/bench/src/bin/serve_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
