/root/repo/target/debug/deps/placement_end_to_end-96487f7d0d45b131.d: crates/suite/../../tests/placement_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libplacement_end_to_end-96487f7d0d45b131.rmeta: crates/suite/../../tests/placement_end_to_end.rs Cargo.toml

crates/suite/../../tests/placement_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
