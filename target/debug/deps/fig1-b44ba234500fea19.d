/root/repo/target/debug/deps/fig1-b44ba234500fea19.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-b44ba234500fea19: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
