/root/repo/target/debug/deps/ablation_defrag-23529c13fb557270.d: crates/bench/src/bin/ablation_defrag.rs

/root/repo/target/debug/deps/ablation_defrag-23529c13fb557270: crates/bench/src/bin/ablation_defrag.rs

crates/bench/src/bin/ablation_defrag.rs:
