/root/repo/target/debug/deps/rrf_suite-af63e0377d01cf1c.d: crates/suite/src/lib.rs

/root/repo/target/debug/deps/rrf_suite-af63e0377d01cf1c: crates/suite/src/lib.rs

crates/suite/src/lib.rs:
