/root/repo/target/debug/deps/ablation_search-25f485b71ef40ce6.d: crates/bench/src/bin/ablation_search.rs Cargo.toml

/root/repo/target/debug/deps/libablation_search-25f485b71ef40ce6.rmeta: crates/bench/src/bin/ablation_search.rs Cargo.toml

crates/bench/src/bin/ablation_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
