/root/repo/target/debug/deps/ablation_heterogeneity-49855b689cacf7ba.d: crates/bench/src/bin/ablation_heterogeneity.rs

/root/repo/target/debug/deps/ablation_heterogeneity-49855b689cacf7ba: crates/bench/src/bin/ablation_heterogeneity.rs

crates/bench/src/bin/ablation_heterogeneity.rs:
