/root/repo/target/debug/deps/placer-c201f51ccb307d8b.d: crates/bench/benches/placer.rs Cargo.toml

/root/repo/target/debug/deps/libplacer-c201f51ccb307d8b.rmeta: crates/bench/benches/placer.rs Cargo.toml

crates/bench/benches/placer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
