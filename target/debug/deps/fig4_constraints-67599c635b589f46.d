/root/repo/target/debug/deps/fig4_constraints-67599c635b589f46.d: crates/bench/src/bin/fig4_constraints.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_constraints-67599c635b589f46.rmeta: crates/bench/src/bin/fig4_constraints.rs Cargo.toml

crates/bench/src/bin/fig4_constraints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
