/root/repo/target/debug/deps/serde_json-9e05eed7e9d7b930.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-9e05eed7e9d7b930.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-9e05eed7e9d7b930.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
