/root/repo/target/debug/deps/rrf_core-be28867dba1e0c35.d: crates/core/src/lib.rs crates/core/src/anneal.rs crates/core/src/baseline.rs crates/core/src/cp.rs crates/core/src/lns.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/placement.rs crates/core/src/problem.rs crates/core/src/reconfig.rs crates/core/src/service.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/librrf_core-be28867dba1e0c35.rlib: crates/core/src/lib.rs crates/core/src/anneal.rs crates/core/src/baseline.rs crates/core/src/cp.rs crates/core/src/lns.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/placement.rs crates/core/src/problem.rs crates/core/src/reconfig.rs crates/core/src/service.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/librrf_core-be28867dba1e0c35.rmeta: crates/core/src/lib.rs crates/core/src/anneal.rs crates/core/src/baseline.rs crates/core/src/cp.rs crates/core/src/lns.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/placement.rs crates/core/src/problem.rs crates/core/src/reconfig.rs crates/core/src/service.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/anneal.rs:
crates/core/src/baseline.rs:
crates/core/src/cp.rs:
crates/core/src/lns.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/online.rs:
crates/core/src/placement.rs:
crates/core/src/problem.rs:
crates/core/src/reconfig.rs:
crates/core/src/service.rs:
crates/core/src/verify.rs:
