/root/repo/target/debug/deps/propagator_contracts-574deb36aaefd2d8.d: crates/solver/tests/propagator_contracts.rs

/root/repo/target/debug/deps/propagator_contracts-574deb36aaefd2d8: crates/solver/tests/propagator_contracts.rs

crates/solver/tests/propagator_contracts.rs:
