/root/repo/target/debug/deps/ablation_service-91eec8a482433e7e.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/debug/deps/ablation_service-91eec8a482433e7e: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
