/root/repo/target/debug/deps/rrf_core-c07e22e1a3e1667b.d: crates/core/src/lib.rs crates/core/src/anneal.rs crates/core/src/baseline.rs crates/core/src/cp.rs crates/core/src/lns.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/placement.rs crates/core/src/problem.rs crates/core/src/reconfig.rs crates/core/src/service.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/librrf_core-c07e22e1a3e1667b.rmeta: crates/core/src/lib.rs crates/core/src/anneal.rs crates/core/src/baseline.rs crates/core/src/cp.rs crates/core/src/lns.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/online.rs crates/core/src/placement.rs crates/core/src/problem.rs crates/core/src/reconfig.rs crates/core/src/service.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/anneal.rs:
crates/core/src/baseline.rs:
crates/core/src/cp.rs:
crates/core/src/lns.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/online.rs:
crates/core/src/placement.rs:
crates/core/src/problem.rs:
crates/core/src/reconfig.rs:
crates/core/src/service.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
