/root/repo/target/debug/deps/rrf_viz-06305f968880e5d7.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/librrf_viz-06305f968880e5d7.rmeta: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs Cargo.toml

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
