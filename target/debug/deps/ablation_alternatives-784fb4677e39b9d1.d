/root/repo/target/debug/deps/ablation_alternatives-784fb4677e39b9d1.d: crates/bench/src/bin/ablation_alternatives.rs

/root/repo/target/debug/deps/ablation_alternatives-784fb4677e39b9d1: crates/bench/src/bin/ablation_alternatives.rs

crates/bench/src/bin/ablation_alternatives.rs:
