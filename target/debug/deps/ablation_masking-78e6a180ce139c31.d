/root/repo/target/debug/deps/ablation_masking-78e6a180ce139c31.d: crates/bench/src/bin/ablation_masking.rs Cargo.toml

/root/repo/target/debug/deps/libablation_masking-78e6a180ce139c31.rmeta: crates/bench/src/bin/ablation_masking.rs Cargo.toml

crates/bench/src/bin/ablation_masking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
