/root/repo/target/debug/deps/ablation_masking-617e6244711bc617.d: crates/bench/src/bin/ablation_masking.rs Cargo.toml

/root/repo/target/debug/deps/libablation_masking-617e6244711bc617.rmeta: crates/bench/src/bin/ablation_masking.rs Cargo.toml

crates/bench/src/bin/ablation_masking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
