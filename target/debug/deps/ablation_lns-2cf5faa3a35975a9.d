/root/repo/target/debug/deps/ablation_lns-2cf5faa3a35975a9.d: crates/bench/src/bin/ablation_lns.rs

/root/repo/target/debug/deps/ablation_lns-2cf5faa3a35975a9: crates/bench/src/bin/ablation_lns.rs

crates/bench/src/bin/ablation_lns.rs:
