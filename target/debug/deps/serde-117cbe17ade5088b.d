/root/repo/target/debug/deps/serde-117cbe17ade5088b.d: vendor/serde/src/lib.rs vendor/serde/src/impls.rs vendor/serde/src/value.rs

/root/repo/target/debug/deps/serde-117cbe17ade5088b: vendor/serde/src/lib.rs vendor/serde/src/impls.rs vendor/serde/src/value.rs

vendor/serde/src/lib.rs:
vendor/serde/src/impls.rs:
vendor/serde/src/value.rs:
