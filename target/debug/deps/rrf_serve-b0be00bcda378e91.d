/root/repo/target/debug/deps/rrf_serve-b0be00bcda378e91.d: crates/server/src/bin/rrf-serve.rs Cargo.toml

/root/repo/target/debug/deps/librrf_serve-b0be00bcda378e91.rmeta: crates/server/src/bin/rrf-serve.rs Cargo.toml

crates/server/src/bin/rrf-serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
