/root/repo/target/debug/deps/rrf_serve-da32f7d58936ad54.d: crates/server/src/bin/rrf-serve.rs

/root/repo/target/debug/deps/rrf_serve-da32f7d58936ad54: crates/server/src/bin/rrf-serve.rs

crates/server/src/bin/rrf-serve.rs:
