/root/repo/target/debug/deps/propagator_contracts-866feb3c3131463b.d: crates/solver/tests/propagator_contracts.rs Cargo.toml

/root/repo/target/debug/deps/libpropagator_contracts-866feb3c3131463b.rmeta: crates/solver/tests/propagator_contracts.rs Cargo.toml

crates/solver/tests/propagator_contracts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
