/root/repo/target/debug/deps/properties-4d963b164ead6977.d: crates/suite/../../tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4d963b164ead6977.rmeta: crates/suite/../../tests/properties.rs Cargo.toml

crates/suite/../../tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
