/root/repo/target/debug/deps/generator_props-d91ac86c937743b7.d: crates/modgen/tests/generator_props.rs

/root/repo/target/debug/deps/generator_props-d91ac86c937743b7: crates/modgen/tests/generator_props.rs

crates/modgen/tests/generator_props.rs:
