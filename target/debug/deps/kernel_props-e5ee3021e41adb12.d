/root/repo/target/debug/deps/kernel_props-e5ee3021e41adb12.d: crates/geost/tests/kernel_props.rs

/root/repo/target/debug/deps/kernel_props-e5ee3021e41adb12: crates/geost/tests/kernel_props.rs

crates/geost/tests/kernel_props.rs:
