/root/repo/target/debug/deps/proptest-38cac28f8c5aaaa9.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-38cac28f8c5aaaa9: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
