/root/repo/target/debug/deps/server_end_to_end-f4597abbb9038903.d: crates/server/tests/server_end_to_end.rs

/root/repo/target/debug/deps/server_end_to_end-f4597abbb9038903: crates/server/tests/server_end_to_end.rs

crates/server/tests/server_end_to_end.rs:
