/root/repo/target/debug/deps/fig2_flow-d4a974f49244fc33.d: crates/bench/src/bin/fig2_flow.rs

/root/repo/target/debug/deps/fig2_flow-d4a974f49244fc33: crates/bench/src/bin/fig2_flow.rs

crates/bench/src/bin/fig2_flow.rs:
