/root/repo/target/debug/deps/rrf_geost-77fe2a17e9ff167a.d: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs

/root/repo/target/debug/deps/rrf_geost-77fe2a17e9ff167a: crates/geost/src/lib.rs crates/geost/src/compat.rs crates/geost/src/grid.rs crates/geost/src/nonoverlap.rs crates/geost/src/object.rs crates/geost/src/shape.rs

crates/geost/src/lib.rs:
crates/geost/src/compat.rs:
crates/geost/src/grid.rs:
crates/geost/src/nonoverlap.rs:
crates/geost/src/object.rs:
crates/geost/src/shape.rs:
