/root/repo/target/debug/deps/rrf_flow-129f544be6904866.d: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/librrf_flow-129f544be6904866.rmeta: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs Cargo.toml

crates/flow/src/lib.rs:
crates/flow/src/driver.rs:
crates/flow/src/io.rs:
crates/flow/src/report.rs:
crates/flow/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
