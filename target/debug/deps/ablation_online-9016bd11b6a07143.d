/root/repo/target/debug/deps/ablation_online-9016bd11b6a07143.d: crates/bench/src/bin/ablation_online.rs

/root/repo/target/debug/deps/ablation_online-9016bd11b6a07143: crates/bench/src/bin/ablation_online.rs

crates/bench/src/bin/ablation_online.rs:
