/root/repo/target/debug/deps/rrf_bench-a0ce2234578d0b07.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/debug/deps/rrf_bench-a0ce2234578d0b07: crates/bench/src/lib.rs crates/bench/src/experiment.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
