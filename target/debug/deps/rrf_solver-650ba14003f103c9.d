/root/repo/target/debug/deps/rrf_solver-650ba14003f103c9.d: crates/solver/src/lib.rs crates/solver/src/constraints/mod.rs crates/solver/src/constraints/alldiff.rs crates/solver/src/constraints/arith.rs crates/solver/src/constraints/count.rs crates/solver/src/constraints/cumulative.rs crates/solver/src/constraints/element.rs crates/solver/src/constraints/lex.rs crates/solver/src/constraints/linear.rs crates/solver/src/constraints/logic.rs crates/solver/src/constraints/minmax.rs crates/solver/src/constraints/table.rs crates/solver/src/domain.rs crates/solver/src/model.rs crates/solver/src/portfolio.rs crates/solver/src/propagator.rs crates/solver/src/search.rs crates/solver/src/space.rs

/root/repo/target/debug/deps/librrf_solver-650ba14003f103c9.rlib: crates/solver/src/lib.rs crates/solver/src/constraints/mod.rs crates/solver/src/constraints/alldiff.rs crates/solver/src/constraints/arith.rs crates/solver/src/constraints/count.rs crates/solver/src/constraints/cumulative.rs crates/solver/src/constraints/element.rs crates/solver/src/constraints/lex.rs crates/solver/src/constraints/linear.rs crates/solver/src/constraints/logic.rs crates/solver/src/constraints/minmax.rs crates/solver/src/constraints/table.rs crates/solver/src/domain.rs crates/solver/src/model.rs crates/solver/src/portfolio.rs crates/solver/src/propagator.rs crates/solver/src/search.rs crates/solver/src/space.rs

/root/repo/target/debug/deps/librrf_solver-650ba14003f103c9.rmeta: crates/solver/src/lib.rs crates/solver/src/constraints/mod.rs crates/solver/src/constraints/alldiff.rs crates/solver/src/constraints/arith.rs crates/solver/src/constraints/count.rs crates/solver/src/constraints/cumulative.rs crates/solver/src/constraints/element.rs crates/solver/src/constraints/lex.rs crates/solver/src/constraints/linear.rs crates/solver/src/constraints/logic.rs crates/solver/src/constraints/minmax.rs crates/solver/src/constraints/table.rs crates/solver/src/domain.rs crates/solver/src/model.rs crates/solver/src/portfolio.rs crates/solver/src/propagator.rs crates/solver/src/search.rs crates/solver/src/space.rs

crates/solver/src/lib.rs:
crates/solver/src/constraints/mod.rs:
crates/solver/src/constraints/alldiff.rs:
crates/solver/src/constraints/arith.rs:
crates/solver/src/constraints/count.rs:
crates/solver/src/constraints/cumulative.rs:
crates/solver/src/constraints/element.rs:
crates/solver/src/constraints/lex.rs:
crates/solver/src/constraints/linear.rs:
crates/solver/src/constraints/logic.rs:
crates/solver/src/constraints/minmax.rs:
crates/solver/src/constraints/table.rs:
crates/solver/src/domain.rs:
crates/solver/src/model.rs:
crates/solver/src/portfolio.rs:
crates/solver/src/propagator.rs:
crates/solver/src/search.rs:
crates/solver/src/space.rs:
