/root/repo/target/debug/deps/rrf_flow-2024c4a5ffcdab57.d: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/librrf_flow-2024c4a5ffcdab57.rmeta: crates/flow/src/lib.rs crates/flow/src/driver.rs crates/flow/src/io.rs crates/flow/src/report.rs crates/flow/src/spec.rs Cargo.toml

crates/flow/src/lib.rs:
crates/flow/src/driver.rs:
crates/flow/src/io.rs:
crates/flow/src/report.rs:
crates/flow/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
