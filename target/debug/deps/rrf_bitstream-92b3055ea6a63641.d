/root/repo/target/debug/deps/rrf_bitstream-92b3055ea6a63641.d: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs Cargo.toml

/root/repo/target/debug/deps/librrf_bitstream-92b3055ea6a63641.rmeta: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs Cargo.toml

crates/bitstream/src/lib.rs:
crates/bitstream/src/assemble.rs:
crates/bitstream/src/crc.rs:
crates/bitstream/src/frame.rs:
crates/bitstream/src/memory.rs:
crates/bitstream/src/relocate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
