/root/repo/target/debug/deps/rrf_server-692ab7b4f77a4303.d: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/librrf_server-692ab7b4f77a4303.rmeta: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs Cargo.toml

crates/server/src/lib.rs:
crates/server/src/cache.rs:
crates/server/src/protocol.rs:
crates/server/src/server.rs:
crates/server/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
