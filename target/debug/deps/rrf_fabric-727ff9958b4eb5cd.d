/root/repo/target/debug/deps/rrf_fabric-727ff9958b4eb5cd.d: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs

/root/repo/target/debug/deps/rrf_fabric-727ff9958b4eb5cd: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/device.rs:
crates/fabric/src/error.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/grid.rs:
crates/fabric/src/region.rs:
crates/fabric/src/resource.rs:
crates/fabric/src/stats.rs:
