/root/repo/target/debug/deps/ablation_heterogeneity-2af73183eb379316.d: crates/bench/src/bin/ablation_heterogeneity.rs Cargo.toml

/root/repo/target/debug/deps/libablation_heterogeneity-2af73183eb379316.rmeta: crates/bench/src/bin/ablation_heterogeneity.rs Cargo.toml

crates/bench/src/bin/ablation_heterogeneity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
