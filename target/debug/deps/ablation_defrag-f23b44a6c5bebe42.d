/root/repo/target/debug/deps/ablation_defrag-f23b44a6c5bebe42.d: crates/bench/src/bin/ablation_defrag.rs

/root/repo/target/debug/deps/ablation_defrag-f23b44a6c5bebe42: crates/bench/src/bin/ablation_defrag.rs

crates/bench/src/bin/ablation_defrag.rs:
