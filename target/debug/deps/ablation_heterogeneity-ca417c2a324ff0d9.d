/root/repo/target/debug/deps/ablation_heterogeneity-ca417c2a324ff0d9.d: crates/bench/src/bin/ablation_heterogeneity.rs

/root/repo/target/debug/deps/ablation_heterogeneity-ca417c2a324ff0d9: crates/bench/src/bin/ablation_heterogeneity.rs

crates/bench/src/bin/ablation_heterogeneity.rs:
