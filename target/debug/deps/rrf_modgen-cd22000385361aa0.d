/root/repo/target/debug/deps/rrf_modgen-cd22000385361aa0.d: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs

/root/repo/target/debug/deps/rrf_modgen-cd22000385361aa0: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs

crates/modgen/src/lib.rs:
crates/modgen/src/alternatives.rs:
crates/modgen/src/layout.rs:
crates/modgen/src/spec.rs:
crates/modgen/src/workload.rs:
