/root/repo/target/debug/deps/rrf_modgen-cf4236843751e13b.d: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs

/root/repo/target/debug/deps/librrf_modgen-cf4236843751e13b.rlib: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs

/root/repo/target/debug/deps/librrf_modgen-cf4236843751e13b.rmeta: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs

crates/modgen/src/lib.rs:
crates/modgen/src/alternatives.rs:
crates/modgen/src/layout.rs:
crates/modgen/src/spec.rs:
crates/modgen/src/workload.rs:
