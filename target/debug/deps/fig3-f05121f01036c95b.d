/root/repo/target/debug/deps/fig3-f05121f01036c95b.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-f05121f01036c95b: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
