/root/repo/target/debug/deps/fig2_flow-3101f4c505c67c89.d: crates/bench/src/bin/fig2_flow.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_flow-3101f4c505c67c89.rmeta: crates/bench/src/bin/fig2_flow.rs Cargo.toml

crates/bench/src/bin/fig2_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
