/root/repo/target/debug/deps/rrf_fabric-935ced37f51e19b4.d: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs

/root/repo/target/debug/deps/librrf_fabric-935ced37f51e19b4.rlib: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs

/root/repo/target/debug/deps/librrf_fabric-935ced37f51e19b4.rmeta: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs

crates/fabric/src/lib.rs:
crates/fabric/src/device.rs:
crates/fabric/src/error.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/grid.rs:
crates/fabric/src/region.rs:
crates/fabric/src/resource.rs:
crates/fabric/src/stats.rs:
