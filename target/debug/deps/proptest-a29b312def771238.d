/root/repo/target/debug/deps/proptest-a29b312def771238.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a29b312def771238.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a29b312def771238.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
