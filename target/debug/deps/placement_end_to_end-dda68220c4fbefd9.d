/root/repo/target/debug/deps/placement_end_to_end-dda68220c4fbefd9.d: crates/suite/../../tests/placement_end_to_end.rs

/root/repo/target/debug/deps/placement_end_to_end-dda68220c4fbefd9: crates/suite/../../tests/placement_end_to_end.rs

crates/suite/../../tests/placement_end_to_end.rs:
