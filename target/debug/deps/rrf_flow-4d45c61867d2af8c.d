/root/repo/target/debug/deps/rrf_flow-4d45c61867d2af8c.d: crates/flow/src/bin/rrf-flow.rs

/root/repo/target/debug/deps/rrf_flow-4d45c61867d2af8c: crates/flow/src/bin/rrf-flow.rs

crates/flow/src/bin/rrf-flow.rs:
