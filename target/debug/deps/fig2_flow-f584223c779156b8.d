/root/repo/target/debug/deps/fig2_flow-f584223c779156b8.d: crates/bench/src/bin/fig2_flow.rs

/root/repo/target/debug/deps/fig2_flow-f584223c779156b8: crates/bench/src/bin/fig2_flow.rs

crates/bench/src/bin/fig2_flow.rs:
