/root/repo/target/debug/deps/ablation_search-fad4c706de621e88.d: crates/bench/src/bin/ablation_search.rs

/root/repo/target/debug/deps/ablation_search-fad4c706de621e88: crates/bench/src/bin/ablation_search.rs

crates/bench/src/bin/ablation_search.rs:
