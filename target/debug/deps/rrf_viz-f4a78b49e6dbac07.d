/root/repo/target/debug/deps/rrf_viz-f4a78b49e6dbac07.d: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/rrf_viz-f4a78b49e6dbac07: crates/viz/src/lib.rs crates/viz/src/ascii.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/ascii.rs:
crates/viz/src/svg.rs:
