/root/repo/target/debug/deps/fig1-d00bc088b9f865bc.d: crates/bench/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-d00bc088b9f865bc.rmeta: crates/bench/src/bin/fig1.rs Cargo.toml

crates/bench/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
