/root/repo/target/debug/deps/ablation_online-3fee7e5313d40a5b.d: crates/bench/src/bin/ablation_online.rs Cargo.toml

/root/repo/target/debug/deps/libablation_online-3fee7e5313d40a5b.rmeta: crates/bench/src/bin/ablation_online.rs Cargo.toml

crates/bench/src/bin/ablation_online.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
