/root/repo/target/debug/deps/rrf_netlist-0fc89e5bfc5bbbc8.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs

/root/repo/target/debug/deps/librrf_netlist-0fc89e5bfc5bbbc8.rlib: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs

/root/repo/target/debug/deps/librrf_netlist-0fc89e5bfc5bbbc8.rmeta: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/net.rs crates/netlist/src/netlist.rs crates/netlist/src/pack.rs crates/netlist/src/parser.rs

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/net.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/pack.rs:
crates/netlist/src/parser.rs:
