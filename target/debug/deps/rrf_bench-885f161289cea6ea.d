/root/repo/target/debug/deps/rrf_bench-885f161289cea6ea.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs Cargo.toml

/root/repo/target/debug/deps/librrf_bench-885f161289cea6ea.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
