/root/repo/target/debug/deps/fig4_constraints-0a0629083bc0be68.d: crates/bench/src/bin/fig4_constraints.rs

/root/repo/target/debug/deps/fig4_constraints-0a0629083bc0be68: crates/bench/src/bin/fig4_constraints.rs

crates/bench/src/bin/fig4_constraints.rs:
