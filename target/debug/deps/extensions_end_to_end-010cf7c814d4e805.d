/root/repo/target/debug/deps/extensions_end_to_end-010cf7c814d4e805.d: crates/suite/../../tests/extensions_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libextensions_end_to_end-010cf7c814d4e805.rmeta: crates/suite/../../tests/extensions_end_to_end.rs Cargo.toml

crates/suite/../../tests/extensions_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
