/root/repo/target/debug/deps/properties-911f15d34fe2ee4e.d: crates/suite/../../tests/properties.rs

/root/repo/target/debug/deps/properties-911f15d34fe2ee4e: crates/suite/../../tests/properties.rs

crates/suite/../../tests/properties.rs:
