/root/repo/target/debug/deps/server_end_to_end-d1521ed485613e97.d: crates/server/tests/server_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libserver_end_to_end-d1521ed485613e97.rmeta: crates/server/tests/server_end_to_end.rs Cargo.toml

crates/server/tests/server_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
