/root/repo/target/debug/deps/rrf_bench-47f9fb133185084f.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/debug/deps/librrf_bench-47f9fb133185084f.rlib: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/debug/deps/librrf_bench-47f9fb133185084f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
