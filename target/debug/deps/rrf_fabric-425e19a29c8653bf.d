/root/repo/target/debug/deps/rrf_fabric-425e19a29c8653bf.d: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/librrf_fabric-425e19a29c8653bf.rmeta: crates/fabric/src/lib.rs crates/fabric/src/device.rs crates/fabric/src/error.rs crates/fabric/src/geometry.rs crates/fabric/src/grid.rs crates/fabric/src/region.rs crates/fabric/src/resource.rs crates/fabric/src/stats.rs Cargo.toml

crates/fabric/src/lib.rs:
crates/fabric/src/device.rs:
crates/fabric/src/error.rs:
crates/fabric/src/geometry.rs:
crates/fabric/src/grid.rs:
crates/fabric/src/region.rs:
crates/fabric/src/resource.rs:
crates/fabric/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
