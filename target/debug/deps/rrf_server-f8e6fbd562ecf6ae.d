/root/repo/target/debug/deps/rrf_server-f8e6fbd562ecf6ae.d: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs

/root/repo/target/debug/deps/rrf_server-f8e6fbd562ecf6ae: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs

crates/server/src/lib.rs:
crates/server/src/cache.rs:
crates/server/src/protocol.rs:
crates/server/src/server.rs:
crates/server/src/stats.rs:
