/root/repo/target/debug/deps/rrf_bench-dc90a0edd7a5e2bf.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/debug/deps/rrf_bench-dc90a0edd7a5e2bf: crates/bench/src/lib.rs crates/bench/src/experiment.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
