/root/repo/target/debug/deps/geost-4c0cadc7f7a0f14b.d: crates/bench/benches/geost.rs Cargo.toml

/root/repo/target/debug/deps/libgeost-4c0cadc7f7a0f14b.rmeta: crates/bench/benches/geost.rs Cargo.toml

crates/bench/benches/geost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
