/root/repo/target/debug/deps/ablation_service-32dd902954e145af.d: crates/bench/src/bin/ablation_service.rs

/root/repo/target/debug/deps/ablation_service-32dd902954e145af: crates/bench/src/bin/ablation_service.rs

crates/bench/src/bin/ablation_service.rs:
