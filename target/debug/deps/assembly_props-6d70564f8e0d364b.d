/root/repo/target/debug/deps/assembly_props-6d70564f8e0d364b.d: crates/bitstream/tests/assembly_props.rs

/root/repo/target/debug/deps/assembly_props-6d70564f8e0d364b: crates/bitstream/tests/assembly_props.rs

crates/bitstream/tests/assembly_props.rs:
