/root/repo/target/debug/deps/search_props-009be9319fe604df.d: crates/solver/tests/search_props.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_props-009be9319fe604df.rmeta: crates/solver/tests/search_props.rs Cargo.toml

crates/solver/tests/search_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
