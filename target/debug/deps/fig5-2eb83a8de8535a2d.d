/root/repo/target/debug/deps/fig5-2eb83a8de8535a2d.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-2eb83a8de8535a2d: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
