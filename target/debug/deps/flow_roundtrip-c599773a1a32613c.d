/root/repo/target/debug/deps/flow_roundtrip-c599773a1a32613c.d: crates/suite/../../tests/flow_roundtrip.rs

/root/repo/target/debug/deps/flow_roundtrip-c599773a1a32613c: crates/suite/../../tests/flow_roundtrip.rs

crates/suite/../../tests/flow_roundtrip.rs:
