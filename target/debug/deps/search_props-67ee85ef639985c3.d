/root/repo/target/debug/deps/search_props-67ee85ef639985c3.d: crates/solver/tests/search_props.rs

/root/repo/target/debug/deps/search_props-67ee85ef639985c3: crates/solver/tests/search_props.rs

crates/solver/tests/search_props.rs:
