/root/repo/target/debug/deps/protocol_props-d0e048f9db583937.d: crates/server/tests/protocol_props.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_props-d0e048f9db583937.rmeta: crates/server/tests/protocol_props.rs Cargo.toml

crates/server/tests/protocol_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
