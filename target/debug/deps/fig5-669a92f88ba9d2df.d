/root/repo/target/debug/deps/fig5-669a92f88ba9d2df.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-669a92f88ba9d2df: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
