/root/repo/target/debug/deps/ablation_masking-40a57e4387887332.d: crates/bench/src/bin/ablation_masking.rs

/root/repo/target/debug/deps/ablation_masking-40a57e4387887332: crates/bench/src/bin/ablation_masking.rs

crates/bench/src/bin/ablation_masking.rs:
