/root/repo/target/debug/deps/ablation_defrag-b24ec9dac0254aa1.d: crates/bench/src/bin/ablation_defrag.rs Cargo.toml

/root/repo/target/debug/deps/libablation_defrag-b24ec9dac0254aa1.rmeta: crates/bench/src/bin/ablation_defrag.rs Cargo.toml

crates/bench/src/bin/ablation_defrag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
