/root/repo/target/debug/deps/scaling-b8ef33381aa9d007.d: crates/bench/benches/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-b8ef33381aa9d007.rmeta: crates/bench/benches/scaling.rs Cargo.toml

crates/bench/benches/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
