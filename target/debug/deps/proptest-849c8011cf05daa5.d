/root/repo/target/debug/deps/proptest-849c8011cf05daa5.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-849c8011cf05daa5.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
