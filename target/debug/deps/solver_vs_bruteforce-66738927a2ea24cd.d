/root/repo/target/debug/deps/solver_vs_bruteforce-66738927a2ea24cd.d: crates/suite/../../tests/solver_vs_bruteforce.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_vs_bruteforce-66738927a2ea24cd.rmeta: crates/suite/../../tests/solver_vs_bruteforce.rs Cargo.toml

crates/suite/../../tests/solver_vs_bruteforce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
