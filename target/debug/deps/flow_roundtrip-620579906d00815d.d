/root/repo/target/debug/deps/flow_roundtrip-620579906d00815d.d: crates/suite/../../tests/flow_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libflow_roundtrip-620579906d00815d.rmeta: crates/suite/../../tests/flow_roundtrip.rs Cargo.toml

crates/suite/../../tests/flow_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
