/root/repo/target/debug/deps/rrf_modgen-8218335a9a3444f6.d: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/librrf_modgen-8218335a9a3444f6.rmeta: crates/modgen/src/lib.rs crates/modgen/src/alternatives.rs crates/modgen/src/layout.rs crates/modgen/src/spec.rs crates/modgen/src/workload.rs Cargo.toml

crates/modgen/src/lib.rs:
crates/modgen/src/alternatives.rs:
crates/modgen/src/layout.rs:
crates/modgen/src/spec.rs:
crates/modgen/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
