/root/repo/target/debug/deps/rrf_suite-96e4915721a2fb50.d: crates/suite/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librrf_suite-96e4915721a2fb50.rmeta: crates/suite/src/lib.rs Cargo.toml

crates/suite/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
