/root/repo/target/debug/deps/rrf_server-29fbe66f263834ca.d: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs

/root/repo/target/debug/deps/librrf_server-29fbe66f263834ca.rlib: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs

/root/repo/target/debug/deps/librrf_server-29fbe66f263834ca.rmeta: crates/server/src/lib.rs crates/server/src/cache.rs crates/server/src/protocol.rs crates/server/src/server.rs crates/server/src/stats.rs

crates/server/src/lib.rs:
crates/server/src/cache.rs:
crates/server/src/protocol.rs:
crates/server/src/server.rs:
crates/server/src/stats.rs:
