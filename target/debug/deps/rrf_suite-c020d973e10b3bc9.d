/root/repo/target/debug/deps/rrf_suite-c020d973e10b3bc9.d: crates/suite/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librrf_suite-c020d973e10b3bc9.rmeta: crates/suite/src/lib.rs Cargo.toml

crates/suite/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
