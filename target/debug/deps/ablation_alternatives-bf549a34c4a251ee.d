/root/repo/target/debug/deps/ablation_alternatives-bf549a34c4a251ee.d: crates/bench/src/bin/ablation_alternatives.rs

/root/repo/target/debug/deps/ablation_alternatives-bf549a34c4a251ee: crates/bench/src/bin/ablation_alternatives.rs

crates/bench/src/bin/ablation_alternatives.rs:
