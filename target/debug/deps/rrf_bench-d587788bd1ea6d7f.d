/root/repo/target/debug/deps/rrf_bench-d587788bd1ea6d7f.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/debug/deps/librrf_bench-d587788bd1ea6d7f.rlib: crates/bench/src/lib.rs crates/bench/src/experiment.rs

/root/repo/target/debug/deps/librrf_bench-d587788bd1ea6d7f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
