/root/repo/target/debug/deps/solver_vs_bruteforce-0583945ab1ef4599.d: crates/suite/../../tests/solver_vs_bruteforce.rs

/root/repo/target/debug/deps/solver_vs_bruteforce-0583945ab1ef4599: crates/suite/../../tests/solver_vs_bruteforce.rs

crates/suite/../../tests/solver_vs_bruteforce.rs:
