/root/repo/target/debug/deps/kernel_props-05524eade9bd64c9.d: crates/geost/tests/kernel_props.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_props-05524eade9bd64c9.rmeta: crates/geost/tests/kernel_props.rs Cargo.toml

crates/geost/tests/kernel_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
