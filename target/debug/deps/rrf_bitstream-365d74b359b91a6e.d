/root/repo/target/debug/deps/rrf_bitstream-365d74b359b91a6e.d: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs

/root/repo/target/debug/deps/librrf_bitstream-365d74b359b91a6e.rlib: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs

/root/repo/target/debug/deps/librrf_bitstream-365d74b359b91a6e.rmeta: crates/bitstream/src/lib.rs crates/bitstream/src/assemble.rs crates/bitstream/src/crc.rs crates/bitstream/src/frame.rs crates/bitstream/src/memory.rs crates/bitstream/src/relocate.rs

crates/bitstream/src/lib.rs:
crates/bitstream/src/assemble.rs:
crates/bitstream/src/crc.rs:
crates/bitstream/src/frame.rs:
crates/bitstream/src/memory.rs:
crates/bitstream/src/relocate.rs:
