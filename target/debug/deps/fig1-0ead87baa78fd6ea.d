/root/repo/target/debug/deps/fig1-0ead87baa78fd6ea.d: crates/bench/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-0ead87baa78fd6ea: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
