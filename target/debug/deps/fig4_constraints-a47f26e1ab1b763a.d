/root/repo/target/debug/deps/fig4_constraints-a47f26e1ab1b763a.d: crates/bench/src/bin/fig4_constraints.rs

/root/repo/target/debug/deps/fig4_constraints-a47f26e1ab1b763a: crates/bench/src/bin/fig4_constraints.rs

crates/bench/src/bin/fig4_constraints.rs:
