/root/repo/target/debug/examples/quickstart-7871923029928499.d: crates/suite/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7871923029928499: crates/suite/../../examples/quickstart.rs

crates/suite/../../examples/quickstart.rs:
