/root/repo/target/debug/examples/sdr_modem-813bdef09ce343f2.d: crates/suite/../../examples/sdr_modem.rs

/root/repo/target/debug/examples/sdr_modem-813bdef09ce343f2: crates/suite/../../examples/sdr_modem.rs

crates/suite/../../examples/sdr_modem.rs:
