/root/repo/target/debug/examples/full_tool_chain-ede84db48cbb08c6.d: crates/suite/../../examples/full_tool_chain.rs

/root/repo/target/debug/examples/full_tool_chain-ede84db48cbb08c6: crates/suite/../../examples/full_tool_chain.rs

crates/suite/../../examples/full_tool_chain.rs:
