/root/repo/target/debug/examples/design_flow-2ad7637ef1a42834.d: crates/suite/../../examples/design_flow.rs

/root/repo/target/debug/examples/design_flow-2ad7637ef1a42834: crates/suite/../../examples/design_flow.rs

crates/suite/../../examples/design_flow.rs:
