/root/repo/target/debug/examples/quickstart-1d87d3c998518964.d: crates/suite/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1d87d3c998518964.rmeta: crates/suite/../../examples/quickstart.rs Cargo.toml

crates/suite/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
