/root/repo/target/debug/examples/design_flow-221ebef27057f08a.d: crates/suite/../../examples/design_flow.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_flow-221ebef27057f08a.rmeta: crates/suite/../../examples/design_flow.rs Cargo.toml

crates/suite/../../examples/design_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
