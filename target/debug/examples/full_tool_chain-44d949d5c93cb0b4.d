/root/repo/target/debug/examples/full_tool_chain-44d949d5c93cb0b4.d: crates/suite/../../examples/full_tool_chain.rs Cargo.toml

/root/repo/target/debug/examples/libfull_tool_chain-44d949d5c93cb0b4.rmeta: crates/suite/../../examples/full_tool_chain.rs Cargo.toml

crates/suite/../../examples/full_tool_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
