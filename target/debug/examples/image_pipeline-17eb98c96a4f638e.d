/root/repo/target/debug/examples/image_pipeline-17eb98c96a4f638e.d: crates/suite/../../examples/image_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libimage_pipeline-17eb98c96a4f638e.rmeta: crates/suite/../../examples/image_pipeline.rs Cargo.toml

crates/suite/../../examples/image_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
