/root/repo/target/debug/examples/sdr_modem-82d72f346c41fd43.d: crates/suite/../../examples/sdr_modem.rs Cargo.toml

/root/repo/target/debug/examples/libsdr_modem-82d72f346c41fd43.rmeta: crates/suite/../../examples/sdr_modem.rs Cargo.toml

crates/suite/../../examples/sdr_modem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
