/root/repo/target/debug/examples/image_pipeline-9d420a037b30455f.d: crates/suite/../../examples/image_pipeline.rs

/root/repo/target/debug/examples/image_pipeline-9d420a037b30455f: crates/suite/../../examples/image_pipeline.rs

crates/suite/../../examples/image_pipeline.rs:
