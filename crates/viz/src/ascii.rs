//! ASCII rendering: regions as resource codes, floorplans as lettered
//! module footprints over the region background.

use rrf_core::{Floorplan, Module};
use rrf_fabric::{Region, ResourceKind};

/// Characters assigned to modules, cycling when there are many.
const MODULE_CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

/// The character for module `i`.
pub fn module_char(i: usize) -> char {
    MODULE_CHARS[i % MODULE_CHARS.len()] as char
}

fn background_char(kind: ResourceKind) -> char {
    match kind {
        // Free tiles render faint/lowercase so placed modules (uppercase
        // letters first) stand out and never collide with resource codes.
        ResourceKind::Clb => '.',
        ResourceKind::Bram => 'b',
        ResourceKind::Dsp => 'd',
        ResourceKind::Io => 'i',
        ResourceKind::Clock => 'k',
        ResourceKind::Static => '#',
    }
}

/// Render a region's effective tiles (top row first).
pub fn render_region(region: &Region) -> String {
    let b = region.bounds();
    let mut out = String::with_capacity(((b.w + 1) * b.h) as usize);
    for y in (b.y..b.y_end()).rev() {
        for x in b.x..b.x_end() {
            out.push(background_char(region.kind_at(x, y)));
        }
        if y > b.y {
            out.push('\n');
        }
    }
    out
}

/// Render a floorplan over its region: occupied tiles show the owning
/// module's letter (uniformly across its CLB and BRAM tiles); free tiles
/// show the lowercase resource codes of the background.
pub fn render_floorplan(region: &Region, modules: &[Module], plan: &Floorplan) -> String {
    let b = region.bounds();
    let mut grid: Vec<Vec<char>> = (0..b.h)
        .map(|row| {
            (0..b.w)
                .map(|col| background_char(region.kind_at(b.x + col, b.y + row)))
                .collect()
        })
        .collect();
    for (tile, _kind, module) in plan.occupied_tiles(modules) {
        if tile.x >= b.x && tile.x < b.x_end() && tile.y >= b.y && tile.y < b.y_end() {
            grid[(tile.y - b.y) as usize][(tile.x - b.x) as usize] = module_char(module);
        }
    }
    let mut out = String::with_capacity(((b.w + 1) * b.h) as usize);
    for row in (0..b.h as usize).rev() {
        out.extend(grid[row].iter());
        if row > 0 {
            out.push('\n');
        }
    }
    out
}

/// Stack two renderings with titles, for with/without-alternative figures.
pub fn side_by_side(title_a: &str, a: &str, title_b: &str, b: &str) -> String {
    let mut out = String::new();
    out.push_str(title_a);
    out.push('\n');
    out.push_str(a);
    out.push_str("\n\n");
    out.push_str(title_b);
    out.push('\n');
    out.push_str(b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_core::PlacedModule;
    use rrf_fabric::device;
    use rrf_geost::{ShapeDef, ShiftedBox};

    fn module(name: &str, w: i32, h: i32) -> Module {
        Module::new(
            name,
            vec![ShapeDef::new(vec![ShiftedBox::new(
                0,
                0,
                w,
                h,
                ResourceKind::Clb,
            )])],
        )
    }

    #[test]
    fn region_renders_codes() {
        let region = Region::whole(rrf_fabric::Fabric::from_art("cBc\nckc").unwrap());
        let art = render_region(&region);
        assert_eq!(art, ".b.\n.k.");
    }

    #[test]
    fn floorplan_overlays_letters() {
        let region = Region::whole(device::homogeneous(4, 2));
        let modules = vec![module("a", 2, 2), module("b", 1, 1)];
        let plan = Floorplan::new(vec![
            PlacedModule {
                module: 0,
                shape: 0,
                x: 0,
                y: 0,
            },
            PlacedModule {
                module: 1,
                shape: 0,
                x: 3,
                y: 1,
            },
        ]);
        let art = render_floorplan(&region, &modules, &plan);
        assert_eq!(art, "AA.B\nAA..");
    }

    #[test]
    fn module_chars_cycle() {
        assert_eq!(module_char(0), 'A');
        assert_eq!(module_char(25), 'Z');
        assert_eq!(module_char(26), 'a');
        assert_eq!(module_char(62), 'A'); // wraps
    }

    #[test]
    fn side_by_side_layout() {
        let s = side_by_side("top", "XX", "bottom", "YY");
        assert!(s.starts_with("top\nXX\n\nbottom\nYY"));
    }

    #[test]
    fn mixed_resource_module_renders_uniformly() {
        let region = Region::whole(rrf_fabric::Fabric::from_art("cBc").unwrap());
        let m = Module::new(
            "mix",
            vec![ShapeDef::new(vec![
                ShiftedBox::new(0, 0, 1, 1, ResourceKind::Clb),
                ShiftedBox::new(1, 0, 1, 1, ResourceKind::Bram),
            ])],
        );
        let plan = Floorplan::new(vec![PlacedModule {
            module: 0,
            shape: 0,
            x: 0,
            y: 0,
        }]);
        let art = render_floorplan(&region, &[m], &plan);
        assert_eq!(art, "AA.");
    }
}
