//! # rrf-viz — floorplan rendering
//!
//! ASCII and SVG renderings of fabrics, regions, and floorplans, used by
//! the figure-reproduction binaries (Figures 1, 3, 4 and 5 of the paper)
//! and handy for debugging placements interactively.

#![forbid(unsafe_code)]

pub mod ascii;
pub mod svg;

pub use ascii::{render_floorplan, render_region, side_by_side};
pub use svg::floorplan_svg;
