//! Minimal SVG export of floorplans (no external dependencies — the output
//! is plain shapes and text).

use rrf_core::{Floorplan, Module};
use rrf_fabric::{Region, ResourceKind};
use std::fmt::Write;

/// Tile edge length in SVG user units.
const CELL: i32 = 12;

fn resource_fill(kind: ResourceKind) -> &'static str {
    match kind {
        ResourceKind::Clb => "#f4f4f4",
        ResourceKind::Bram => "#c8dcf0",
        ResourceKind::Dsp => "#d8f0c8",
        ResourceKind::Io => "#f0e0c0",
        ResourceKind::Clock => "#e8c8e8",
        ResourceKind::Static => "#707070",
    }
}

/// Distinct fills for module footprints (cycled).
const MODULE_FILLS: [&str; 10] = [
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00", "#a65628", "#f781bf", "#999999",
    "#66c2a5", "#ffd92f",
];

/// Render a floorplan (or, with an empty plan, just the region) as an SVG
/// document string. `y` grows upward in the model, downward in SVG, so rows
/// are flipped.
pub fn floorplan_svg(region: &Region, modules: &[Module], plan: &Floorplan) -> String {
    let b = region.bounds();
    let width = b.w * CELL;
    let height = b.h * CELL;
    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"##
    );
    // Background tiles.
    for y in b.y..b.y_end() {
        for x in b.x..b.x_end() {
            let fill = resource_fill(region.kind_at(x, y));
            let px = (x - b.x) * CELL;
            let py = (b.y_end() - 1 - y) * CELL;
            let _ = write!(
                svg,
                r##"<rect x="{px}" y="{py}" width="{CELL}" height="{CELL}" fill="{fill}" stroke="#ffffff" stroke-width="0.5"/>"##
            );
        }
    }
    // Module tiles with 70% opacity so the resource map shows through.
    for (tile, _kind, module) in plan.occupied_tiles(modules) {
        let fill = MODULE_FILLS[module % MODULE_FILLS.len()];
        let px = (tile.x - b.x) * CELL;
        let py = (b.y_end() - 1 - tile.y) * CELL;
        let _ = write!(
            svg,
            r##"<rect x="{px}" y="{py}" width="{CELL}" height="{CELL}" fill="{fill}" fill-opacity="0.7" stroke="#222222" stroke-width="0.5"/>"##
        );
    }
    // Module name labels at each footprint's bounding-box corner.
    for p in &plan.placements {
        let shape_bb = modules[p.module].shapes()[p.shape]
            .bounding_box()
            .translated(p.x, p.y);
        let px = (shape_bb.x - b.x) * CELL + 2;
        let py = (b.y_end() - shape_bb.y - 1) * CELL - 2;
        let name = &modules[p.module].name;
        let _ = write!(
            svg,
            r##"<text x="{px}" y="{py}" font-size="8" font-family="monospace" fill="#000000">{name}</text>"##
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_core::PlacedModule;
    use rrf_fabric::device;
    use rrf_geost::{ShapeDef, ShiftedBox};

    #[test]
    fn svg_structure() {
        let region = Region::whole(device::virtex_like(8, 4));
        let m = Module::new(
            "alu",
            vec![ShapeDef::new(vec![ShiftedBox::new(
                0,
                0,
                2,
                2,
                ResourceKind::Clb,
            )])],
        );
        let plan = Floorplan::new(vec![PlacedModule {
            module: 0,
            shape: 0,
            x: 1,
            y: 0,
        }]);
        let svg = floorplan_svg(&region, &[m], &plan);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("alu"));
        // 8x4 background tiles + 4 module tiles + 1 label.
        assert!(svg.matches("<rect").count() >= 36);
    }

    #[test]
    fn empty_plan_renders_region_only() {
        let region = Region::whole(device::homogeneous(3, 3));
        let svg = floorplan_svg(&region, &[], &Floorplan::new(vec![]));
        assert_eq!(svg.matches("<rect").count(), 9);
        assert!(!svg.contains("<text"));
    }
}
