//! # rrf-netlist — module netlists and packing
//!
//! The paper's flow consumes modules "specified as unplaced and unrouted
//! netlists" plus optional user bounding-box definitions (§I, Fig. 2).
//! This crate is that front end: a primitive-cell netlist representation,
//! a small text format, and a *packing* stage that maps cells onto tile
//! resource demands (LUT/FF pairs into CLBs, memories into BRAM blocks,
//! multipliers into DSP slices) — the numbers the layout generator turns
//! into shapes.
//!
//! ```
//! use rrf_netlist::{parse, pack, PackRules};
//!
//! let src = "
//! cell lut0 lut
//! cell lut1 lut
//! cell ff0  ff
//! cell ram0 bram
//! net  n1   lut0 ff0
//! net  n2   lut1 ram0
//! ";
//! let netlist = parse(src).unwrap();
//! let demand = pack(&netlist, &PackRules::default());
//! assert_eq!(demand.brams, 1);
//! assert!(demand.clbs >= 1);
//! ```

#![forbid(unsafe_code)]

pub mod cell;
pub mod net;
pub mod netlist;
pub mod pack;
pub mod parser;

pub use cell::{Cell, CellId, CellKind};
pub use net::{Net, NetId};
pub use netlist::{Netlist, NetlistError, NetlistStats};
pub use pack::{pack, PackRules, ResourceDemand};
pub use parser::{parse, write as write_netlist, ParseError};
