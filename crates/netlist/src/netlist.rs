//! The netlist container with validation and statistics.

use crate::cell::{Cell, CellId, CellKind};
use crate::net::{Net, NetId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while building a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    DuplicateCell(String),
    DuplicateNet(String),
    UnknownCell {
        net: String,
        cell: String,
    },
    /// A net with fewer than two pins connects nothing.
    DegenerateNet(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateCell(n) => write!(f, "duplicate cell {n:?}"),
            NetlistError::DuplicateNet(n) => write!(f, "duplicate net {n:?}"),
            NetlistError::UnknownCell { net, cell } => {
                write!(f, "net {net:?} references unknown cell {cell:?}")
            }
            NetlistError::DegenerateNet(n) => {
                write!(f, "net {n:?} has fewer than two pins")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// An unplaced, unrouted module netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Netlist {
    cells: Vec<Cell>,
    nets: Vec<Net>,
    #[serde(skip)]
    cell_index: HashMap<String, CellId>,
}

impl Netlist {
    pub fn new() -> Netlist {
        Netlist::default()
    }

    /// Add a cell; names must be unique.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
    ) -> Result<CellId, NetlistError> {
        let name = name.into();
        if self.cell_index.contains_key(&name) {
            return Err(NetlistError::DuplicateCell(name));
        }
        let id = CellId(self.cells.len() as u32);
        self.cell_index.insert(name.clone(), id);
        self.cells.push(Cell { name, kind });
        Ok(id)
    }

    /// Add a net over named cells; needs at least two pins, all known.
    pub fn add_net<'a>(
        &mut self,
        name: impl Into<String>,
        pin_names: impl IntoIterator<Item = &'a str>,
    ) -> Result<NetId, NetlistError> {
        let name = name.into();
        if self.nets.iter().any(|n| n.name == name) {
            return Err(NetlistError::DuplicateNet(name));
        }
        let mut pins = Vec::new();
        for pin in pin_names {
            match self.cell_index.get(pin) {
                Some(&id) => pins.push(id),
                None => {
                    return Err(NetlistError::UnknownCell {
                        net: name,
                        cell: pin.to_string(),
                    })
                }
            }
        }
        if pins.len() < 2 {
            return Err(NetlistError::DegenerateNet(name));
        }
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name, pins });
        Ok(id)
    }

    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Look up a cell by name.
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cell_index.get(name).copied()
    }

    /// Number of cells of `kind`.
    pub fn count(&self, kind: CellKind) -> usize {
        self.cells.iter().filter(|c| c.kind == kind).count()
    }

    /// Rebuild the name index (used after deserialization, where the index
    /// is skipped).
    pub fn reindex(&mut self) {
        self.cell_index = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), CellId(i as u32)))
            .collect();
    }

    /// Summary numbers.
    pub fn stats(&self) -> NetlistStats {
        let fanouts: Vec<usize> = self.nets.iter().map(Net::fanout).collect();
        NetlistStats {
            cells: self.cells.len(),
            nets: self.nets.len(),
            luts: self.count(CellKind::Lut),
            ffs: self.count(CellKind::Ff),
            brams: self.count(CellKind::Bram),
            dsps: self.count(CellKind::Dsp),
            ports: self.count(CellKind::Port),
            max_fanout: fanouts.iter().copied().max().unwrap_or(0),
            avg_fanout: if fanouts.is_empty() {
                0.0
            } else {
                fanouts.iter().sum::<usize>() as f64 / fanouts.len() as f64
            },
        }
    }
}

/// Summary of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    pub cells: usize,
    pub nets: usize,
    pub luts: usize,
    pub ffs: usize,
    pub brams: usize,
    pub dsps: usize,
    pub ports: usize,
    pub max_fanout: usize,
    pub avg_fanout: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut nl = Netlist::new();
        nl.add_cell("l0", CellKind::Lut).unwrap();
        nl.add_cell("l1", CellKind::Lut).unwrap();
        nl.add_cell("f0", CellKind::Ff).unwrap();
        nl.add_cell("p0", CellKind::Port).unwrap();
        nl.add_net("n0", ["l0", "f0"]).unwrap();
        nl.add_net("n1", ["l0", "l1", "p0"]).unwrap();
        nl
    }

    #[test]
    fn build_and_query() {
        let nl = sample();
        assert_eq!(nl.cells().len(), 4);
        assert_eq!(nl.nets().len(), 2);
        assert_eq!(nl.count(CellKind::Lut), 2);
        let id = nl.find_cell("f0").unwrap();
        assert_eq!(nl.cell(id).kind, CellKind::Ff);
        assert_eq!(nl.find_cell("nope"), None);
    }

    #[test]
    fn duplicate_cell_rejected() {
        let mut nl = sample();
        assert!(matches!(
            nl.add_cell("l0", CellKind::Ff),
            Err(NetlistError::DuplicateCell(_))
        ));
    }

    #[test]
    fn duplicate_net_rejected() {
        let mut nl = sample();
        assert!(matches!(
            nl.add_net("n0", ["l0", "l1"]),
            Err(NetlistError::DuplicateNet(_))
        ));
    }

    #[test]
    fn unknown_pin_rejected() {
        let mut nl = sample();
        assert!(matches!(
            nl.add_net("n9", ["l0", "ghost"]),
            Err(NetlistError::UnknownCell { .. })
        ));
    }

    #[test]
    fn degenerate_net_rejected() {
        let mut nl = sample();
        assert!(matches!(
            nl.add_net("n9", ["l0"]),
            Err(NetlistError::DegenerateNet(_))
        ));
    }

    #[test]
    fn stats_summary() {
        let s = sample().stats();
        assert_eq!(s.cells, 4);
        assert_eq!(s.luts, 2);
        assert_eq!(s.ffs, 1);
        assert_eq!(s.ports, 1);
        assert_eq!(s.max_fanout, 2);
        assert!((s.avg_fanout - 1.5).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_with_reindex() {
        let nl = sample();
        let json = serde_json::to_string(&nl).unwrap();
        let mut back: Netlist = serde_json::from_str(&json).unwrap();
        back.reindex();
        assert_eq!(back.cells(), nl.cells());
        assert_eq!(back.nets(), nl.nets());
        assert_eq!(back.find_cell("l1"), nl.find_cell("l1"));
    }
}
