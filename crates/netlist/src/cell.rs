//! Primitive cells.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The primitive kinds a synthesized module is made of, at the
//  granularity the packer cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// A look-up table (any width; the pack rules set CLB capacity).
    Lut,
    /// A flip-flop / register bit.
    Ff,
    /// An embedded memory block.
    Bram,
    /// A dedicated multiplier / DSP slice.
    Dsp,
    /// A top-level port (consumes no fabric tiles; terminates nets).
    Port,
}

impl CellKind {
    pub const ALL: [CellKind; 5] = [
        CellKind::Lut,
        CellKind::Ff,
        CellKind::Bram,
        CellKind::Dsp,
        CellKind::Port,
    ];

    /// Keyword used by the text format.
    pub const fn keyword(self) -> &'static str {
        match self {
            CellKind::Lut => "lut",
            CellKind::Ff => "ff",
            CellKind::Bram => "bram",
            CellKind::Dsp => "dsp",
            CellKind::Port => "port",
        }
    }

    /// Inverse of [`CellKind::keyword`].
    pub fn from_keyword(s: &str) -> Option<CellKind> {
        CellKind::ALL.into_iter().find(|k| k.keyword() == s)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Dense cell handle within one [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named primitive instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    pub name: String,
    pub kind: CellKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_keyword(kind.keyword()), Some(kind));
        }
        assert_eq!(CellKind::from_keyword("gate"), None);
    }

    #[test]
    fn display_is_keyword() {
        assert_eq!(CellKind::Bram.to_string(), "bram");
    }
}
