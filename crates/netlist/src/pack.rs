//! Packing: from primitive cells to tile resource demands.
//!
//! A CLB tile hosts a fixed number of LUTs and FFs (rules configurable per
//! device family); LUT/FF pairs share slices where possible, so the CLB
//! demand is driven by the larger of the two populations, the way real
//! packers behave to first order. BRAM/DSP cells map one-to-one onto
//! their dedicated blocks; ports consume nothing.

use crate::cell::CellKind;
use crate::netlist::Netlist;
use serde::{Deserialize, Serialize};

/// Device-family packing capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackRules {
    /// LUTs per CLB tile.
    pub luts_per_clb: usize,
    /// FFs per CLB tile.
    pub ffs_per_clb: usize,
}

impl Default for PackRules {
    /// Four LUT/FF pairs per CLB — the classic Virtex-family slice count.
    fn default() -> PackRules {
        PackRules {
            luts_per_clb: 4,
            ffs_per_clb: 4,
        }
    }
}

/// Tile demand of a packed module — the numbers the layout generator
/// (`rrf-modgen`) turns into shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceDemand {
    pub clbs: i32,
    pub brams: i32,
    pub dsps: i32,
}

/// Pack a netlist under the given rules.
///
/// Panics on zero capacities — a misconfigured rule set, not a data
/// condition.
pub fn pack(netlist: &Netlist, rules: &PackRules) -> ResourceDemand {
    assert!(
        rules.luts_per_clb > 0 && rules.ffs_per_clb > 0,
        "degenerate pack rules {rules:?}"
    );
    let luts = netlist.count(CellKind::Lut);
    let ffs = netlist.count(CellKind::Ff);
    let clbs_for_luts = luts.div_ceil(rules.luts_per_clb);
    let clbs_for_ffs = ffs.div_ceil(rules.ffs_per_clb);
    ResourceDemand {
        clbs: clbs_for_luts.max(clbs_for_ffs) as i32,
        brams: netlist.count(CellKind::Bram) as i32,
        dsps: netlist.count(CellKind::Dsp) as i32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn netlist(luts: usize, ffs: usize, brams: usize, dsps: usize) -> Netlist {
        let mut nl = Netlist::new();
        for i in 0..luts {
            nl.add_cell(format!("l{i}"), CellKind::Lut).unwrap();
        }
        for i in 0..ffs {
            nl.add_cell(format!("f{i}"), CellKind::Ff).unwrap();
        }
        for i in 0..brams {
            nl.add_cell(format!("b{i}"), CellKind::Bram).unwrap();
        }
        for i in 0..dsps {
            nl.add_cell(format!("d{i}"), CellKind::Dsp).unwrap();
        }
        nl
    }

    #[test]
    fn luts_and_ffs_share_clbs() {
        // 8 LUTs + 8 FFs in 4-per-CLB rules → 2 CLBs, not 4.
        let d = pack(&netlist(8, 8, 0, 0), &PackRules::default());
        assert_eq!(d.clbs, 2);
    }

    #[test]
    fn larger_population_dominates() {
        let d = pack(&netlist(9, 2, 0, 0), &PackRules::default());
        assert_eq!(d.clbs, 3); // ceil(9/4)
        let d = pack(&netlist(2, 9, 0, 0), &PackRules::default());
        assert_eq!(d.clbs, 3); // ceil(9/4)
    }

    #[test]
    fn dedicated_blocks_map_one_to_one() {
        let d = pack(&netlist(0, 0, 3, 2), &PackRules::default());
        assert_eq!(d.clbs, 0);
        assert_eq!(d.brams, 3);
        assert_eq!(d.dsps, 2);
    }

    #[test]
    fn ports_cost_nothing() {
        let mut nl = netlist(4, 0, 0, 0);
        nl.add_cell("io", CellKind::Port).unwrap();
        let d = pack(&nl, &PackRules::default());
        assert_eq!(d.clbs, 1);
    }

    #[test]
    fn custom_rules() {
        let rules = PackRules {
            luts_per_clb: 8,
            ffs_per_clb: 16,
        };
        let d = pack(&netlist(8, 17, 0, 0), &rules);
        assert_eq!(d.clbs, 2); // ceil(17/16) = 2 > ceil(8/8) = 1
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = pack(
            &netlist(1, 0, 0, 0),
            &PackRules {
                luts_per_clb: 0,
                ffs_per_clb: 4,
            },
        );
    }
}
