//! The text format: one declaration per line.
//!
//! ```text
//! # comment
//! cell <name> <kind>          # kind ∈ lut | ff | bram | dsp | port
//! net  <name> <cell> <cell>…  # at least two pins
//! ```

use crate::cell::CellKind;
use crate::netlist::{Netlist, NetlistError};
use std::fmt;

/// Parse failures, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    Syntax { line: usize, message: String },
    Semantic { line: usize, error: NetlistError },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Semantic { line, error } => write!(f, "line {line}: {error}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a netlist from the text format.
pub fn parse(src: &str) -> Result<Netlist, ParseError> {
    let mut netlist = Netlist::new();
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("cell") => {
                let name = tokens.next().ok_or_else(|| ParseError::Syntax {
                    line: line_no,
                    message: "cell needs a name".into(),
                })?;
                let kind_tok = tokens.next().ok_or_else(|| ParseError::Syntax {
                    line: line_no,
                    message: "cell needs a kind".into(),
                })?;
                let kind = CellKind::from_keyword(kind_tok).ok_or_else(|| ParseError::Syntax {
                    line: line_no,
                    message: format!("unknown cell kind {kind_tok:?}"),
                })?;
                if tokens.next().is_some() {
                    return Err(ParseError::Syntax {
                        line: line_no,
                        message: "trailing tokens after cell declaration".into(),
                    });
                }
                netlist
                    .add_cell(name, kind)
                    .map_err(|error| ParseError::Semantic {
                        line: line_no,
                        error,
                    })?;
            }
            Some("net") => {
                let name = tokens.next().ok_or_else(|| ParseError::Syntax {
                    line: line_no,
                    message: "net needs a name".into(),
                })?;
                let pins: Vec<&str> = tokens.collect();
                netlist
                    .add_net(name, pins.iter().copied())
                    .map_err(|error| ParseError::Semantic {
                        line: line_no,
                        error,
                    })?;
            }
            Some(other) => {
                return Err(ParseError::Syntax {
                    line: line_no,
                    message: format!("unknown directive {other:?}"),
                })
            }
            None => unreachable!("blank lines filtered above"),
        }
    }
    Ok(netlist)
}

/// Write a netlist back to the text format (the inverse of [`parse`]).
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    for cell in netlist.cells() {
        out.push_str(&format!("cell {} {}\n", cell.name, cell.kind.keyword()));
    }
    for net in netlist.nets() {
        out.push_str(&format!("net {}", net.name));
        for &pin in &net.pins {
            out.push(' ');
            out.push_str(&netlist.cell(pin).name);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a sample module
cell l0 lut
cell f0 ff    # register
cell m0 bram
net  d  l0 f0
net  q  f0 m0
";

    #[test]
    fn parse_sample() {
        let nl = parse(SAMPLE).unwrap();
        assert_eq!(nl.cells().len(), 3);
        assert_eq!(nl.nets().len(), 2);
        assert_eq!(nl.count(CellKind::Bram), 1);
    }

    #[test]
    fn roundtrip() {
        let nl = parse(SAMPLE).unwrap();
        let text = write(&nl);
        let back = parse(&text).unwrap();
        assert_eq!(back.cells(), nl.cells());
        assert_eq!(back.nets(), nl.nets());
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse("cell a lut\nwire x a b").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }));
        let err = parse("cell a gate").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
        let err = parse("cell").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
        let err = parse("cell a lut extra").unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 1, .. }));
    }

    #[test]
    fn semantic_errors_carry_line_numbers() {
        let err = parse("cell a lut\ncell a ff").unwrap_err();
        assert!(matches!(err, ParseError::Semantic { line: 2, .. }));
        let err = parse("cell a lut\nnet n a ghost").unwrap_err();
        assert!(matches!(err, ParseError::Semantic { line: 2, .. }));
        let err = parse("cell a lut\nnet n a").unwrap_err();
        assert!(matches!(err, ParseError::Semantic { line: 2, .. }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let nl = parse("\n   \n# only comments\n").unwrap();
        assert_eq!(nl.cells().len(), 0);
    }
}
