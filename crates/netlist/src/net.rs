//! Nets: hyperedges over cells.

use crate::cell::CellId;
use serde::{Deserialize, Serialize};

/// Dense net handle within one [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named hyperedge connecting two or more cell pins. Pin directions are
/// not modelled — the packer and the flow only need connectivity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    pub name: String,
    pub pins: Vec<CellId>,
}

impl Net {
    /// Number of pins minus one — the classic fanout measure.
    pub fn fanout(&self) -> usize {
        self.pins.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout() {
        let net = Net {
            name: "n".into(),
            pins: vec![CellId(0), CellId(1), CellId(2)],
        };
        assert_eq!(net.fanout(), 2);
        let empty = Net {
            name: "e".into(),
            pins: vec![],
        };
        assert_eq!(empty.fanout(), 0);
    }
}
