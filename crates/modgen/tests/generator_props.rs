//! Property tests of the workload generator: every generated module must
//! respect its spec, stay placeable on the matching device family, and be
//! reproducible from its seed.

use proptest::prelude::*;
use rrf_fabric::{device, Region, ResourceKind};
use rrf_geost::allowed_anchors;
use rrf_modgen::{base_layout, generate_workload, layout::LayoutParams, ModuleSpec, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The layout delivers the exact resource counts of the spec.
    #[test]
    fn layout_matches_spec(clbs in 5i32..110, brams in 0i32..5, height in 2i32..10,
                           offset in 0i32..4) {
        let spec = ModuleSpec { clbs, brams, height };
        let params = LayoutParams { bram_offset: offset, ..LayoutParams::default() };
        let shape = base_layout(&spec, &params);
        let ms = shape.resource_multiset();
        prop_assert_eq!(ms[ResourceKind::Clb.index()], clbs as i64);
        prop_assert_eq!(ms[ResourceKind::Bram.index()], (brams * 2) as i64);
        // No other kinds ever appear.
        prop_assert_eq!(ms[ResourceKind::Dsp.index()], 0);
        prop_assert_eq!(ms[ResourceKind::Static.index()], 0);
    }

    /// Every generated layout is placeable on a big-enough device of the
    /// family it was generated for — the generator's core guarantee.
    #[test]
    fn layout_is_placeable_on_family_device(clbs in 5i32..110, brams in 0i32..5,
                                            height in 2i32..9, offset in 0i32..4) {
        let spec = ModuleSpec { clbs, brams, height };
        let params = LayoutParams { bram_offset: offset, ..LayoutParams::default() };
        let shape = base_layout(&spec, &params);
        let layout = device::ColumnLayout {
            bram_period: 10,
            bram_offset: 4,
            dsp_period: 0,
            dsp_offset: 0,
            io_ring: 0,
            center_clock: false,
        };
        let region = Region::whole(device::columns(80, 24, layout));
        prop_assert!(
            !allowed_anchors(&region, &shape).is_empty(),
            "unplaceable layout for {:?} offset {}",
            spec,
            offset
        );
    }

    /// Workloads are a pure function of their spec.
    #[test]
    fn workload_reproducible(seed in 0u64..1000, modules in 1usize..8) {
        let spec = WorkloadSpec { modules, seed, ..WorkloadSpec::small(modules, seed) };
        prop_assert_eq!(generate_workload(&spec), generate_workload(&spec));
    }

    /// Within one workload, every module's alternatives share the module's
    /// resource multiset, and total shapes are bounded by 4 per module.
    #[test]
    fn workload_invariants(seed in 0u64..300) {
        let wl = generate_workload(&WorkloadSpec { modules: 6, seed, ..WorkloadSpec::default() });
        for m in &wl.modules {
            prop_assert!(!m.shapes.is_empty() && m.shapes.len() <= 4);
            let base = m.shapes[0].resource_multiset();
            for s in &m.shapes {
                prop_assert_eq!(s.resource_multiset(), base);
                // Shapes are normalized: bounding box at the origin.
                let bb = s.bounding_box();
                prop_assert_eq!((bb.x, bb.y), (0, 0));
            }
        }
        prop_assert_eq!(wl.without_alternatives().total_shapes(), 6);
    }
}
