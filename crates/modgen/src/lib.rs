//! # rrf-modgen — synthetic module and workload generation
//!
//! The paper's evaluation (§V) places "30 automatically generated modules
//! with shapes similar to that shown in Figure 1", with resource
//! requirements of 20–100 CLBs and 0–4 embedded memory blocks, each module
//! represented by **four design alternatives**: the base layout, its 180°
//! rotation, an *internal* relayout (same bounding box, dedicated resources
//! at different positions) and an *external* relayout (different bounding
//! box). This crate regenerates that workload family deterministically from
//! a seed.
//!
//! ```
//! use rrf_modgen::{WorkloadSpec, generate_workload};
//!
//! let spec = WorkloadSpec { modules: 5, seed: 1, ..WorkloadSpec::default() };
//! let wl = generate_workload(&spec);
//! assert_eq!(wl.modules.len(), 5);
//! for m in &wl.modules {
//!     assert!(m.shapes.len() >= 1 && m.shapes.len() <= 4);
//!     assert!((20..=100).contains(&m.clbs));
//! }
//! ```

#![forbid(unsafe_code)]

pub mod alternatives;
pub mod layout;
pub mod spec;
pub mod workload;

pub use alternatives::derive_alternatives;
pub use layout::base_layout;
pub use spec::{ModuleSpec, WorkloadSpec};
pub use workload::{generate_module, generate_workload, GeneratedModule, Workload};
