//! Module layout synthesis: from a resource requirement to a concrete
//! tile layout (a [`ShapeDef`]).
//!
//! Generated layouts follow the Figure-1 family: a mostly-rectangular block
//! of CLB columns with one or more columns of stacked embedded-memory
//! blocks. Because fabric BRAM columns repeat with a fixed period, a
//! module's internal BRAM columns must themselves be `period` apart, and a
//! module must not place CLB tiles on a column that will align with a
//! fabric BRAM column — the generator bakes both rules in so generated
//! modules are actually placeable on the target device family.

use crate::spec::{ModuleSpec, BRAM_BLOCK_TILES};
use rrf_fabric::{Point, ResourceKind};
use rrf_geost::ShapeDef;
use serde::{Deserialize, Serialize};

/// Device-family parameters the layout must respect, plus layout knobs that
/// the alternative-derivation varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutParams {
    /// Fabric BRAM column spacing (default device: every 10 columns).
    pub bram_period: i32,
    /// Internal column index of the module's first BRAM column
    /// (`0 <= bram_offset < bram_period`). Irrelevant for BRAM-less modules.
    pub bram_offset: i32,
    /// Stack memory blocks from the top of the column instead of the bottom
    /// (the *internal relayout* knob: same bounding box, resources at
    /// different positions).
    pub top_align_brams: bool,
    /// Put the ragged partial CLB column's tiles at the top instead of the
    /// bottom.
    pub top_align_ragged: bool,
}

impl Default for LayoutParams {
    fn default() -> LayoutParams {
        LayoutParams {
            bram_period: 10,
            bram_offset: 0,
            top_align_brams: false,
            top_align_ragged: false,
        }
    }
}

/// Integer ceiling division for positive values.
fn ceil_div(a: i32, b: i32) -> i32 {
    (a + b - 1) / b
}

/// Synthesize the layout for `spec` under `params`.
///
/// The module height may exceed `spec.height` when the requirement cannot
/// fit the device family otherwise (e.g. a 100-CLB module with no BRAMs
/// must stay narrower than the fabric's BRAM column gap).
///
/// Panics on specs outside the supported envelope (validated workload specs
/// never reach those cases).
pub fn base_layout(spec: &ModuleSpec, params: &LayoutParams) -> ShapeDef {
    assert!(spec.clbs > 0, "module without CLBs");
    assert!(spec.brams >= 0, "negative BRAM count");
    assert!(
        params.bram_period >= 2 && (0..params.bram_period).contains(&params.bram_offset),
        "bad layout params {params:?}"
    );
    let period = params.bram_period;
    let off = params.bram_offset;

    if spec.brams == 0 {
        // CLB-only module: must fit between fabric BRAM columns.
        let max_w = period - 1;
        let h = spec.height.max(ceil_div(spec.clbs, max_w)).max(2);
        let w = ceil_div(spec.clbs, h);
        return fill_columns(spec.clbs, 0, w, h, &[], params);
    }

    // Find the smallest height >= spec.height whose induced geometry fits.
    let mut h = spec.height.max(BRAM_BLOCK_TILES);
    loop {
        let blocks_per_col = h / BRAM_BLOCK_TILES;
        let n_cols = ceil_div(spec.brams, blocks_per_col);
        // BRAM columns sit at off, off+period, …; every other column in
        // [0, w) holds CLBs and must not align with the fabric pattern, so
        // w may not reach the (n_cols+1)-th aligned column.
        let last_bram_col = off + (n_cols - 1) * period;
        let clb_cols_needed = ceil_div(spec.clbs, h);
        let w = (last_bram_col + 1).max(n_cols + clb_cols_needed);
        // Accept this height only if (a) the width stays short of the next
        // aligned fabric column and (b) every CLB column can hold at least
        // one tile (connectivity). Otherwise grow the module taller, which
        // packs more memory blocks per column and narrows the footprint.
        if w <= off + n_cols * period && spec.clbs >= w - n_cols {
            let bram_cols: Vec<i32> = (0..n_cols).map(|k| off + k * period).collect();
            return fill_columns(spec.clbs, spec.brams, w, h, &bram_cols, params);
        }
        h += 1;
        assert!(
            h <= 256,
            "layout search diverged for spec {spec:?} / params {params:?}"
        );
    }
}

/// Fill a `w × h` bounding box: BRAM blocks in `bram_cols`, `clbs` CLB
/// tiles distributed over the remaining columns.
fn fill_columns(
    clbs: i32,
    brams: i32,
    w: i32,
    h: i32,
    bram_cols: &[i32],
    params: &LayoutParams,
) -> ShapeDef {
    let mut tiles: Vec<(Point, ResourceKind)> = Vec::with_capacity((clbs + 2 * brams) as usize);

    // Memory blocks, stacked per column.
    let blocks_per_col = h / BRAM_BLOCK_TILES;
    let mut remaining_blocks = brams;
    for &bx in bram_cols {
        let here = remaining_blocks.min(blocks_per_col);
        for blk in 0..here {
            let y0 = if params.top_align_brams {
                h - (blk + 1) * BRAM_BLOCK_TILES
            } else {
                blk * BRAM_BLOCK_TILES
            };
            for dy in 0..BRAM_BLOCK_TILES {
                tiles.push((Point::new(bx, y0 + dy), ResourceKind::Bram));
            }
        }
        remaining_blocks -= here;
    }
    debug_assert_eq!(remaining_blocks, 0, "unplaced memory blocks");

    // CLB columns: distribute the requirement evenly so every column is
    // non-empty (keeps modules connected even when BRAM column spacing
    // forces a wider bounding box than the CLB count alone would need);
    // leftover tiles go to the leftmost columns, so full columns sit left
    // and ragged ones right, like the paper's Figure 1.
    let clb_cols: Vec<i32> = (0..w).filter(|x| !bram_cols.contains(x)).collect();
    assert!(!clb_cols.is_empty(), "module with no CLB columns");
    let n = clb_cols.len() as i32;
    let base = clbs / n;
    let rem = clbs % n;
    debug_assert!(base >= 1 || rem > 0, "empty CLB columns unavoidable");
    for (ci, &cx) in clb_cols.iter().enumerate() {
        let here = base + i32::from((ci as i32) < rem);
        debug_assert!(here <= h, "column overflow: {here} > {h}");
        for i in 0..here {
            let y = if params.top_align_ragged && here < h {
                h - 1 - i
            } else {
                i
            };
            tiles.push((Point::new(cx, y), ResourceKind::Clb));
        }
    }
    ShapeDef::from_tiles(&tiles).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_kind(s: &ShapeDef, k: ResourceKind) -> i64 {
        s.resource_multiset()[k.index()]
    }

    #[test]
    fn clb_only_exact_count() {
        let spec = ModuleSpec {
            clbs: 20,
            brams: 0,
            height: 4,
        };
        let s = base_layout(&spec, &LayoutParams::default());
        assert_eq!(count_kind(&s, ResourceKind::Clb), 20);
        assert_eq!(count_kind(&s, ResourceKind::Bram), 0);
        assert_eq!(s.height(), 4);
        assert_eq!(s.width(), 5);
    }

    #[test]
    fn clb_only_ragged_column() {
        let spec = ModuleSpec {
            clbs: 22,
            brams: 0,
            height: 4,
        };
        let s = base_layout(&spec, &LayoutParams::default());
        assert_eq!(s.area(), 22);
        assert_eq!(s.width(), 6); // 5 full columns + 2-tile ragged column
    }

    #[test]
    fn clb_only_grows_height_to_respect_gap() {
        // 100 CLBs at requested height 4 would need width 25 > period-1=9;
        // the layout must grow the height instead.
        let spec = ModuleSpec {
            clbs: 100,
            brams: 0,
            height: 4,
        };
        let s = base_layout(&spec, &LayoutParams::default());
        assert!(s.width() <= 9, "width {} exceeds fabric gap", s.width());
        assert_eq!(count_kind(&s, ResourceKind::Clb), 100);
    }

    #[test]
    fn bram_blocks_occupy_one_column() {
        let spec = ModuleSpec {
            clbs: 24,
            brams: 2,
            height: 4,
        };
        let s = base_layout(&spec, &LayoutParams::default());
        assert_eq!(count_kind(&s, ResourceKind::Bram), 4);
        assert_eq!(count_kind(&s, ResourceKind::Clb), 24);
        // All BRAM tiles in internal column 0 (offset 0).
        let bram_xs: std::collections::BTreeSet<i32> = s
            .tiles()
            .filter(|(_, k)| *k == ResourceKind::Bram)
            .map(|(p, _)| p.x)
            .collect();
        assert_eq!(bram_xs.into_iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn bram_offset_moves_column() {
        let spec = ModuleSpec {
            clbs: 24,
            brams: 1,
            height: 4,
        };
        let params = LayoutParams {
            bram_offset: 3,
            ..LayoutParams::default()
        };
        let s = base_layout(&spec, &params);
        let bram_xs: std::collections::BTreeSet<i32> = s
            .tiles()
            .filter(|(_, k)| *k == ResourceKind::Bram)
            .map(|(p, _)| p.x)
            .collect();
        assert_eq!(bram_xs.into_iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn many_brams_split_across_period_spaced_columns() {
        // height 4 → 2 blocks per column; 4 blocks → 2 columns, 10 apart.
        let spec = ModuleSpec {
            clbs: 80,
            brams: 4,
            height: 4,
        };
        let s = base_layout(&spec, &LayoutParams::default());
        let bram_xs: std::collections::BTreeSet<i32> = s
            .tiles()
            .filter(|(_, k)| *k == ResourceKind::Bram)
            .map(|(p, _)| p.x)
            .collect();
        let xs: Vec<i32> = bram_xs.into_iter().collect();
        assert_eq!(xs, vec![0, 10]);
        assert_eq!(count_kind(&s, ResourceKind::Bram), 8);
        assert_eq!(count_kind(&s, ResourceKind::Clb), 80);
    }

    #[test]
    fn top_aligned_brams_same_bbox_different_tiles() {
        let spec = ModuleSpec {
            clbs: 30,
            brams: 1,
            height: 6,
        };
        let base = base_layout(&spec, &LayoutParams::default());
        let internal = base_layout(
            &spec,
            &LayoutParams {
                top_align_brams: true,
                ..LayoutParams::default()
            },
        );
        assert_eq!(base.bounding_box(), internal.bounding_box());
        assert_ne!(base, internal);
        assert_eq!(base.resource_multiset(), internal.resource_multiset());
        // Block moved from bottom rows to top rows.
        let top_bram_y: Vec<i32> = internal
            .tiles()
            .filter(|(_, k)| *k == ResourceKind::Bram)
            .map(|(p, _)| p.y)
            .collect();
        assert_eq!(top_bram_y, vec![4, 5]);
    }

    #[test]
    fn every_generated_column_is_nonempty() {
        // Connectivity proxy: no fully empty column inside the bbox.
        for clbs in [20, 35, 61, 100] {
            for brams in [0, 1, 3] {
                let spec = ModuleSpec {
                    clbs,
                    brams,
                    height: 5,
                };
                let s = base_layout(&spec, &LayoutParams::default());
                let bb = s.bounding_box();
                let mut col_counts = vec![0; bb.w as usize];
                for (p, _) in s.tiles() {
                    col_counts[(p.x - bb.x) as usize] += 1;
                }
                assert!(
                    col_counts.iter().all(|&c| c > 0),
                    "empty column for clbs={clbs} brams={brams}: {col_counts:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_clbs_panics() {
        let spec = ModuleSpec {
            clbs: 0,
            brams: 1,
            height: 4,
        };
        let _ = base_layout(&spec, &LayoutParams::default());
    }
}
