//! Workload distribution parameters.

use serde::{Deserialize, Serialize};

/// Requirements for one module before layout synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// CLB tiles required.
    pub clbs: i32,
    /// Embedded memory blocks required (each occupies a vertical run of
    /// BRAM tiles; memories are rectangular, not square — §V).
    pub brams: i32,
    /// Module height in tiles (its bounding-box height).
    pub height: i32,
}

impl ModuleSpec {
    /// Total tiles of the module (CLBs plus BRAM tiles; one memory block =
    /// [`BRAM_BLOCK_TILES`] tiles).
    pub fn total_tiles(&self) -> i32 {
        self.clbs + self.brams * BRAM_BLOCK_TILES
    }
}

/// Tiles per embedded memory block (a 1×2 vertical footprint, mirroring the
/// paper's observation that memories are rectangular).
pub const BRAM_BLOCK_TILES: i32 = 2;

/// Parameters of a generated workload, defaulting to the paper's §V setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of modules (paper: 30).
    pub modules: usize,
    /// CLB requirement range, inclusive (paper: 20–100).
    pub clb_min: i32,
    pub clb_max: i32,
    /// Embedded memory block range, inclusive (paper: 0–4).
    pub bram_min: i32,
    pub bram_max: i32,
    /// Module height range, inclusive. Heights are chosen so modules are
    /// wider than tall, like the paper's figures.
    pub height_min: i32,
    pub height_max: i32,
    /// Design alternatives to derive per module (paper: 4, including the
    /// base layout). Clamped to [1, 4].
    pub alternatives: usize,
    /// RNG seed; the same spec always generates the same workload.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        WorkloadSpec {
            modules: 30,
            clb_min: 20,
            clb_max: 100,
            bram_min: 0,
            bram_max: 4,
            height_min: 4,
            height_max: 8,
            alternatives: 4,
            seed: 0,
        }
    }
}

impl WorkloadSpec {
    /// The paper's Table I workload with a chosen seed.
    pub fn paper(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            ..WorkloadSpec::default()
        }
    }

    /// A scaled-down variant: same distribution shape, smaller modules.
    /// Used by quick tests and the scaling benchmarks.
    pub fn small(modules: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            modules,
            clb_min: 6,
            clb_max: 20,
            bram_min: 0,
            bram_max: 2,
            height_min: 2,
            height_max: 4,
            alternatives: 4,
            seed,
        }
    }

    /// Basic sanity of the ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.modules == 0 {
            return Err("workload with zero modules".into());
        }
        if self.clb_min <= 0 || self.clb_min > self.clb_max {
            return Err(format!("bad CLB range {}..={}", self.clb_min, self.clb_max));
        }
        if self.bram_min < 0 || self.bram_min > self.bram_max {
            return Err(format!(
                "bad BRAM range {}..={}",
                self.bram_min, self.bram_max
            ));
        }
        if self.height_min < 2 || self.height_min > self.height_max {
            return Err(format!(
                "bad height range {}..={} (min height 2: BRAM blocks are 2 tall)",
                self.height_min, self.height_max
            ));
        }
        if self.alternatives == 0 {
            return Err("at least one alternative (the base layout) required".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let s = WorkloadSpec::default();
        assert_eq!(s.modules, 30);
        assert_eq!((s.clb_min, s.clb_max), (20, 100));
        assert_eq!((s.bram_min, s.bram_max), (0, 4));
        assert_eq!(s.alternatives, 4);
        s.validate().unwrap();
    }

    #[test]
    fn total_tiles_accounts_for_bram_footprint() {
        let m = ModuleSpec {
            clbs: 10,
            brams: 3,
            height: 4,
        };
        assert_eq!(m.total_tiles(), 16);
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let cases = [
            WorkloadSpec {
                modules: 0,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                clb_min: 0,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                bram_max: -1,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                height_min: 1,
                ..WorkloadSpec::default()
            },
            WorkloadSpec {
                alternatives: 0,
                ..WorkloadSpec::default()
            },
        ];
        for spec in cases {
            assert!(spec.validate().is_err(), "{spec:?}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let s = WorkloadSpec::paper(17);
        let json = serde_json::to_string(&s).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
