//! Design alternative derivation.
//!
//! §V: "The module alternatives considered include variants in which the
//! module is rotated 180 degrees and additionally have different internal
//! and external layout." We derive up to four shapes per module:
//!
//! 1. the **base** layout;
//! 2. its **180° rotation**;
//! 3. an **internal relayout** — same bounding box, dedicated resources at
//!    different positions (memory blocks top-aligned instead of
//!    bottom-aligned, ragged CLB column flipped);
//! 4. an **external relayout** — a different bounding box (the layout re-run
//!    at a different height).
//!
//! Duplicate shapes (e.g. the rotation of a perfectly symmetric module) are
//! dropped, so a module may end up with fewer distinct shapes than asked.

use crate::layout::{base_layout, LayoutParams};
use crate::spec::ModuleSpec;
use rrf_geost::{canonical_tiles, ShapeDef};

/// Derive up to `count` distinct design alternatives (including the base
/// layout itself) for `spec`. `count` is clamped to `1..=4`.
///
/// `external_height` chooses the bounding-box height of the external
/// relayout; pass the base height ± something sensible (the workload
/// generator picks this from its height range).
pub fn derive_alternatives(
    spec: &ModuleSpec,
    params: &LayoutParams,
    count: usize,
    external_height: i32,
) -> Vec<ShapeDef> {
    let count = count.clamp(1, 4);
    let base = base_layout(spec, params);
    let mut shapes: Vec<ShapeDef> = vec![base.clone()];

    // Compare canonical tile sets, not `ShapeDef` equality: rotating a
    // 180°-symmetric multi-column layout yields the same tiles decomposed
    // into the same boxes in a *different order*, which `==` on the box
    // list would treat as a new shape and emit twice.
    let push_unique = |shapes: &mut Vec<ShapeDef>, s: ShapeDef| {
        let s = s.normalized();
        let tiles = canonical_tiles(&s);
        if !shapes
            .iter()
            .any(|existing| canonical_tiles(existing) == tiles)
        {
            shapes.push(s);
        }
    };

    if count >= 2 {
        push_unique(&mut shapes, base.rotated_180());
    }
    if count >= 3 {
        let internal = base_layout(
            spec,
            &LayoutParams {
                top_align_brams: !params.top_align_brams,
                top_align_ragged: !params.top_align_ragged,
                ..*params
            },
        );
        push_unique(&mut shapes, internal);
    }
    if count >= 4 {
        let ext_spec = ModuleSpec {
            height: external_height,
            ..*spec
        };
        let external = base_layout(&ext_spec, params);
        push_unique(&mut shapes, external.clone());
        // If the external height collapsed to the same layout (the layout
        // may override the height), try its rotation as a fallback 4th.
        if shapes.len() < count {
            push_unique(&mut shapes, external.rotated_180());
        }
    }
    shapes.truncate(count);
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_fabric::ResourceKind;

    fn spec(clbs: i32, brams: i32, height: i32) -> ModuleSpec {
        ModuleSpec {
            clbs,
            brams,
            height,
        }
    }

    #[test]
    fn four_distinct_alternatives_for_asymmetric_module() {
        let shapes = derive_alternatives(&spec(30, 1, 6), &LayoutParams::default(), 4, 4);
        assert_eq!(shapes.len(), 4);
        for (i, a) in shapes.iter().enumerate() {
            for b in &shapes[i + 1..] {
                assert_ne!(a, b, "duplicate alternatives survived");
            }
        }
    }

    #[test]
    fn all_alternatives_preserve_resources() {
        let shapes = derive_alternatives(&spec(47, 3, 6), &LayoutParams::default(), 4, 8);
        let base_ms = shapes[0].resource_multiset();
        assert_eq!(base_ms[ResourceKind::Clb.index()], 47);
        assert_eq!(base_ms[ResourceKind::Bram.index()], 6);
        for s in &shapes[1..] {
            assert_eq!(s.resource_multiset(), base_ms);
        }
    }

    #[test]
    fn count_one_returns_base_only() {
        let shapes = derive_alternatives(&spec(30, 1, 6), &LayoutParams::default(), 1, 4);
        assert_eq!(shapes.len(), 1);
    }

    #[test]
    fn symmetric_rectangle_dedupes_rotation() {
        // 24 CLBs at height 4 is a perfect 6x4 rectangle: rotation is
        // identical and must be dropped, not duplicated.
        let shapes = derive_alternatives(&spec(24, 0, 4), &LayoutParams::default(), 2, 6);
        assert_eq!(shapes.len(), 1);
    }

    #[test]
    fn rotation_symmetric_multicolumn_layout_dedupes() {
        // 16 CLBs + 2 memory blocks at height 4 with the BRAM column in
        // the middle (offset 2) lays out as clb|clb|bram|clb|clb — a
        // 180°-symmetric footprint whose rotation covers identical tiles
        // but lists its boxes in a different order. Tile-set comparison
        // must collapse it; box-list equality used to let it through.
        let params = LayoutParams {
            bram_offset: 2,
            ..LayoutParams::default()
        };
        let shapes = derive_alternatives(&spec(16, 2, 4), &params, 2, 6);
        let base = &shapes[0];
        let rotated = base.rotated_180().normalized();
        assert_eq!(
            rrf_geost::canonical_tiles(base),
            rrf_geost::canonical_tiles(&rotated),
            "test premise: the layout is 180-degree symmetric"
        );
        assert_eq!(shapes.len(), 1, "symmetric rotation emitted twice");
    }

    #[test]
    fn workload_generation_stays_seeded_deterministic() {
        let spec = crate::spec::WorkloadSpec {
            modules: 8,
            seed: 7,
            ..crate::spec::WorkloadSpec::default()
        };
        let a = crate::workload::generate_workload(&spec);
        let b = crate::workload::generate_workload(&spec);
        assert_eq!(a.modules, b.modules);
    }

    #[test]
    fn external_alternative_changes_bbox() {
        let shapes = derive_alternatives(&spec(36, 0, 4), &LayoutParams::default(), 4, 6);
        let heights: std::collections::BTreeSet<i32> = shapes.iter().map(|s| s.height()).collect();
        assert!(heights.len() >= 2, "external relayout missing: {heights:?}");
    }

    #[test]
    fn count_clamped() {
        let shapes = derive_alternatives(&spec(30, 1, 6), &LayoutParams::default(), 99, 4);
        assert!(shapes.len() <= 4);
        let shapes = derive_alternatives(&spec(30, 1, 6), &LayoutParams::default(), 0, 4);
        assert_eq!(shapes.len(), 1);
    }
}
