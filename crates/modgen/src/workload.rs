//! Seeded workload generation: batches of modules with design alternatives.

use crate::alternatives::derive_alternatives;
use crate::layout::LayoutParams;
use crate::spec::{ModuleSpec, WorkloadSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rrf_geost::ShapeDef;
use serde::{Deserialize, Serialize};

/// One generated module: its requirement and its design alternatives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedModule {
    /// Stable name, e.g. `"m07"`.
    pub name: String,
    /// CLB requirement the module was generated from.
    pub clbs: i32,
    /// Memory block requirement.
    pub brams: i32,
    /// The design alternatives (at least the base layout).
    pub shapes: Vec<ShapeDef>,
}

impl GeneratedModule {
    /// Tile count of the first shape (all alternatives share it).
    pub fn area(&self) -> i64 {
        self.shapes[0].area()
    }
}

/// A generated batch of modules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    pub spec: WorkloadSpec,
    pub modules: Vec<GeneratedModule>,
}

impl Workload {
    /// Total tiles over all modules (one shape each).
    pub fn total_area(&self) -> i64 {
        self.modules.iter().map(GeneratedModule::area).sum()
    }

    /// The same workload restricted to one alternative per module — the
    /// paper's *without design alternatives* arm.
    pub fn without_alternatives(&self) -> Workload {
        Workload {
            spec: WorkloadSpec {
                alternatives: 1,
                ..self.spec
            },
            modules: self
                .modules
                .iter()
                .map(|m| GeneratedModule {
                    name: m.name.clone(),
                    clbs: m.clbs,
                    brams: m.brams,
                    shapes: vec![m.shapes[0].clone()],
                })
                .collect(),
        }
    }

    /// Total number of shapes across modules (the paper: 30 modules → 120
    /// shapes with alternatives).
    pub fn total_shapes(&self) -> usize {
        self.modules.iter().map(|m| m.shapes.len()).sum()
    }
}

/// Generate one module from an explicit spec and RNG (exposed for tests and
/// the figure binaries).
pub fn generate_module(
    name: String,
    spec: &ModuleSpec,
    alternatives: usize,
    height_range: (i32, i32),
    rng: &mut impl Rng,
) -> GeneratedModule {
    let params = LayoutParams {
        // Vary the internal BRAM column position between modules — with
        // offset 0 the memory column hugs the left edge; larger offsets put
        // CLB columns left of it.
        bram_offset: rng.gen_range(0..4),
        ..LayoutParams::default()
    };
    // External relayout height: a different height from the same range.
    let mut ext_h = rng.gen_range(height_range.0..=height_range.1);
    if ext_h == spec.height {
        ext_h = if spec.height < height_range.1 {
            spec.height + 1
        } else {
            (spec.height - 1).max(2)
        };
    }
    let shapes = derive_alternatives(spec, &params, alternatives, ext_h);
    GeneratedModule {
        name,
        clbs: spec.clbs,
        brams: spec.brams,
        shapes,
    }
}

/// Generate the full workload for `spec` (deterministic in `spec.seed`).
pub fn generate_workload(spec: &WorkloadSpec) -> Workload {
    spec.validate().expect("invalid workload spec");
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let modules = (0..spec.modules)
        .map(|i| {
            let m = ModuleSpec {
                clbs: rng.gen_range(spec.clb_min..=spec.clb_max),
                brams: rng.gen_range(spec.bram_min..=spec.bram_max),
                height: rng.gen_range(spec.height_min..=spec.height_max),
            };
            generate_module(
                format!("m{i:02}"),
                &m,
                spec.alternatives,
                (spec.height_min, spec.height_max),
                &mut rng,
            )
        })
        .collect();
    Workload {
        spec: *spec,
        modules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_fabric::ResourceKind;

    #[test]
    fn deterministic_per_seed() {
        let spec = WorkloadSpec::small(8, 3);
        let a = generate_workload(&spec);
        let b = generate_workload(&spec);
        assert_eq!(a, b);
        let c = generate_workload(&WorkloadSpec::small(8, 4));
        assert_ne!(a, c);
    }

    #[test]
    fn paper_spec_counts() {
        let wl = generate_workload(&WorkloadSpec::paper(0));
        assert_eq!(wl.modules.len(), 30);
        for m in &wl.modules {
            assert!((20..=100).contains(&m.clbs), "{}", m.clbs);
            assert!((0..=4).contains(&m.brams), "{}", m.brams);
            assert!(!m.shapes.is_empty() && m.shapes.len() <= 4);
        }
        // "30 modules yield 120 different shapes" — dedup may drop a few
        // for symmetric modules, but the bulk must be there.
        assert!(wl.total_shapes() > 100, "{}", wl.total_shapes());
    }

    #[test]
    fn shapes_match_requirements() {
        let wl = generate_workload(&WorkloadSpec::small(10, 7));
        for m in &wl.modules {
            for s in &m.shapes {
                let ms = s.resource_multiset();
                assert_eq!(ms[ResourceKind::Clb.index()], m.clbs as i64);
                assert_eq!(
                    ms[ResourceKind::Bram.index()],
                    (m.brams * crate::spec::BRAM_BLOCK_TILES) as i64
                );
            }
        }
    }

    #[test]
    fn without_alternatives_strips_to_one() {
        let wl = generate_workload(&WorkloadSpec::small(6, 1));
        let solo = wl.without_alternatives();
        assert_eq!(solo.modules.len(), wl.modules.len());
        assert_eq!(solo.total_shapes(), 6);
        for (a, b) in solo.modules.iter().zip(&wl.modules) {
            assert_eq!(a.shapes[0], b.shapes[0]);
        }
        assert_eq!(solo.total_area(), wl.total_area());
    }

    #[test]
    fn names_are_stable() {
        let wl = generate_workload(&WorkloadSpec::small(3, 0));
        let names: Vec<&str> = wl.modules.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["m00", "m01", "m02"]);
    }

    #[test]
    fn serde_roundtrip() {
        let wl = generate_workload(&WorkloadSpec::small(4, 9));
        let json = serde_json::to_string(&wl).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(back, wl);
    }
}
