//! Property tests tying bitstream assembly to placement semantics: the
//! frames of a *valid* floorplan always merge conflict-free, and overlap
//! at the placement level surfaces as a load conflict.

use proptest::prelude::*;
use rrf_bitstream::{assemble_floorplan, assemble_module, ConfigMemory, FrameGeometry, LoadError};
use rrf_core::{baseline, verify, Floorplan, Module, PlacedModule, PlacementProblem};
use rrf_fabric::{device, Region, ResourceKind};
use rrf_geost::{ShapeDef, ShiftedBox};

fn region() -> Region {
    let layout = device::ColumnLayout {
        bram_period: 6,
        bram_offset: 3,
        dsp_period: 0,
        dsp_offset: 0,
        io_ring: 0,
        center_clock: false,
    };
    Region::whole(device::columns(24, 6, layout))
}

fn modules(dims: &[(i32, i32)]) -> Vec<Module> {
    dims.iter()
        .enumerate()
        .map(|(i, &(w, h))| {
            Module::new(
                format!("m{i}"),
                vec![ShapeDef::new(vec![ShiftedBox::new(
                    0,
                    0,
                    w,
                    h,
                    ResourceKind::Clb,
                )])],
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Greedy-placed (hence valid) floorplans load without conflicts, and
    /// readback equals the merged frames.
    #[test]
    fn valid_floorplans_load_cleanly(dims in proptest::collection::vec((1i32..3, 1i32..4), 1..5)) {
        let region = region();
        let modules = modules(&dims);
        let problem = PlacementProblem::new(region.clone(), modules.clone());
        prop_assume!(problem.demand() <= 40);
        let Some(plan) = baseline::bottom_left(&problem) else {
            return Ok(()); // didn't fit; nothing to assemble
        };
        prop_assert!(verify::verify(&region, &modules, &plan).is_empty());
        let geometry = FrameGeometry::default();
        let bitstreams = assemble_floorplan(&region, &modules, &plan, &geometry);
        let mut memory = ConfigMemory::new(region, geometry);
        for bs in &bitstreams {
            prop_assert!(bs.verify_crc());
            memory.load(bs).unwrap();
        }
        let expected: usize = bitstreams
            .iter()
            .map(|b| b.frames.iter().flat_map(|f| &f.words).filter(|&&w| w != 0).count())
            .sum();
        prop_assert_eq!(memory.live_words(), expected);
    }

    /// Placement overlap implies a load conflict (the converse direction).
    #[test]
    fn overlapping_placements_conflict(x in 0i32..2, y in 0i32..3) {
        let region = region();
        let modules = modules(&[(2, 3), (2, 3)]);
        let plan = Floorplan::new(vec![
            PlacedModule { module: 0, shape: 0, x: 0, y: 0 },
            PlacedModule { module: 1, shape: 0, x, y },
        ]);
        // By construction the second module overlaps the first somewhere.
        let geometry = FrameGeometry::default();
        let a = assemble_module(&region, &modules, &plan.placements[0], &geometry);
        let b = assemble_module(&region, &modules, &plan.placements[1], &geometry);
        let mut memory = ConfigMemory::new(region, geometry);
        memory.load(&a).unwrap();
        let result = memory.load(&b);
        prop_assert!(matches!(result, Err(LoadError::Conflict { .. })),
                     "overlap at ({x},{y}) not detected");
    }
}
