//! # rrf-bitstream — partial bitstream assembly
//!
//! The placer in this workspace is "planned to be a part of the
//! ReCoBus-Builder framework … \[which\] comprises floorplanning
//! capabilities, on-FPGA communication architecture synthesis, and
//! **bitstream assembly**". This crate is that back end, at the level of
//! abstraction the placement results need:
//!
//! * [`frame`] — frame-addressed configuration data (one frame per fabric
//!   column, sized by the column's resource kind);
//! * [`assemble`] — per-module partial bitstreams generated from a placed
//!   design alternative, CRC-protected;
//! * [`memory`] — a device configuration memory that loads partial
//!   bitstreams and detects conflicting writes (two modules configuring
//!   the same frame word — the bitstream-level shadow of a placement
//!   overlap);
//! * [`relocate()`] — column rebasing of a partial bitstream, valid exactly
//!   when the target columns carry the same resource kinds (the
//!   relocatability constraint of Becker et al. that the paper discusses).

#![forbid(unsafe_code)]

pub mod assemble;
pub mod crc;
pub mod frame;
pub mod memory;
pub mod relocate;

pub use assemble::{assemble_floorplan, assemble_module, PartialBitstream};
pub use crc::crc32;
pub use frame::{Frame, FrameAddress, FrameGeometry};
pub use memory::{ConfigMemory, LoadError};
pub use relocate::{relocate, RelocationError};
