//! The device's configuration memory: loads partial bitstreams, merges
//! frames, and detects conflicting writes.

use crate::assemble::PartialBitstream;
use crate::frame::FrameGeometry;
use rrf_fabric::Region;
use std::collections::BTreeMap;
use std::fmt;

/// Loading failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// CRC mismatch — the bitstream is corrupt.
    BadCrc { name: String },
    /// A frame's word count does not match the device geometry.
    FrameSizeMismatch {
        name: String,
        column: i32,
        expected: usize,
        got: usize,
    },
    /// Two loaded bitstreams configure the same word — the bitstream-level
    /// signature of overlapping placements.
    Conflict {
        column: i32,
        word: usize,
        first: String,
        second: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::BadCrc { name } => write!(f, "bitstream {name:?}: CRC mismatch"),
            LoadError::FrameSizeMismatch {
                name,
                column,
                expected,
                got,
            } => write!(
                f,
                "bitstream {name:?}: frame {column} has {got} words, device expects {expected}"
            ),
            LoadError::Conflict {
                column,
                word,
                first,
                second,
            } => write!(
                f,
                "column {column} word {word}: {second:?} overwrites {first:?}"
            ),
        }
    }
}

impl std::error::Error for LoadError {}

/// The configuration memory of one device region.
pub struct ConfigMemory {
    region: Region,
    geometry: FrameGeometry,
    /// column -> (words, owner name per non-zero word). Ordered so that
    /// whole-memory walks (unload, live_words) are column-ascending and
    /// replay-stable.
    columns: BTreeMap<i32, (Vec<u32>, Vec<Option<String>>)>,
}

impl ConfigMemory {
    pub fn new(region: Region, geometry: FrameGeometry) -> ConfigMemory {
        ConfigMemory {
            region,
            geometry,
            columns: BTreeMap::new(),
        }
    }

    /// Load a partial bitstream: CRC check, size check, merge with
    /// conflict detection (only non-zero words are owned — zero words are
    /// the "don't touch" mask).
    pub fn load(&mut self, bitstream: &PartialBitstream) -> Result<(), LoadError> {
        if !bitstream.verify_crc() {
            return Err(LoadError::BadCrc {
                name: bitstream.name.clone(),
            });
        }
        // Validate sizes first so a failed load leaves memory untouched.
        for frame in &bitstream.frames {
            let expected =
                self.geometry
                    .column_words(&self.region, frame.address.column) as usize;
            if frame.words.len() != expected {
                return Err(LoadError::FrameSizeMismatch {
                    name: bitstream.name.clone(),
                    column: frame.address.column,
                    expected,
                    got: frame.words.len(),
                });
            }
        }
        // Detect conflicts before mutating.
        for frame in &bitstream.frames {
            if let Some((_, owners)) = self.columns.get(&frame.address.column) {
                for (i, &w) in frame.words.iter().enumerate() {
                    if w != 0 {
                        if let Some(owner) = &owners[i] {
                            return Err(LoadError::Conflict {
                                column: frame.address.column,
                                word: i,
                                first: owner.clone(),
                                second: bitstream.name.clone(),
                            });
                        }
                    }
                }
            }
        }
        for frame in &bitstream.frames {
            let entry = self
                .columns
                .entry(frame.address.column)
                .or_insert_with(|| (vec![0; frame.words.len()], vec![None; frame.words.len()]));
            for (i, &w) in frame.words.iter().enumerate() {
                if w != 0 {
                    entry.0[i] = w;
                    entry.1[i] = Some(bitstream.name.clone());
                }
            }
        }
        Ok(())
    }

    /// Remove every word owned by `name` (module departure).
    pub fn unload(&mut self, name: &str) {
        for (words, owners) in self.columns.values_mut() {
            for (w, o) in words.iter_mut().zip(owners.iter_mut()) {
                if o.as_deref() == Some(name) {
                    *w = 0;
                    *o = None;
                }
            }
        }
    }

    /// Read back one column's words (zeros if never written).
    pub fn readback(&self, column: i32) -> Vec<u32> {
        match self.columns.get(&column) {
            Some((words, _)) => words.clone(),
            None => vec![0; self.geometry.column_words(&self.region, column) as usize],
        }
    }

    /// Total non-zero configuration words (live configuration footprint).
    pub fn live_words(&self) -> usize {
        self.columns
            .values()
            .map(|(w, _)| w.iter().filter(|&&x| x != 0).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble_module;
    use rrf_core::{Module, PlacedModule};
    use rrf_fabric::{Fabric, ResourceKind};
    use rrf_geost::{ShapeDef, ShiftedBox};

    fn setup() -> (Region, Vec<Module>, FrameGeometry) {
        let region = Region::whole(Fabric::from_art("cccc\ncccc").unwrap());
        let m = Module::new(
            "m",
            vec![ShapeDef::new(vec![ShiftedBox::new(
                0,
                0,
                2,
                1,
                ResourceKind::Clb,
            )])],
        );
        let n = Module::new("n", m.shapes().to_vec());
        (region, vec![m, n], FrameGeometry::default())
    }

    fn place(module: usize, x: i32, y: i32) -> PlacedModule {
        PlacedModule {
            module,
            shape: 0,
            x,
            y,
        }
    }

    #[test]
    fn load_readback_roundtrip() {
        let (region, modules, g) = setup();
        let bs = assemble_module(&region, &modules, &place(0, 0, 0), &g);
        let mut mem = ConfigMemory::new(region, g);
        mem.load(&bs).unwrap();
        assert_eq!(mem.readback(0), bs.frames[0].words);
        assert!(mem.live_words() > 0);
    }

    #[test]
    fn disjoint_modules_merge() {
        let (region, modules, g) = setup();
        let a = assemble_module(&region, &modules, &place(0, 0, 0), &g);
        let b = assemble_module(&region, &modules, &place(1, 0, 1), &g);
        let mut mem = ConfigMemory::new(region, g);
        mem.load(&a).unwrap();
        mem.load(&b).unwrap(); // same columns, different rows: fine
        assert_eq!(mem.live_words(), a.words_nonzero() + b.words_nonzero());
    }

    #[test]
    fn overlap_is_a_conflict() {
        let (region, modules, g) = setup();
        let a = assemble_module(&region, &modules, &place(0, 0, 0), &g);
        let b = assemble_module(&region, &modules, &place(1, 1, 0), &g);
        let mut mem = ConfigMemory::new(region, g);
        mem.load(&a).unwrap();
        let err = mem.load(&b).unwrap_err();
        assert!(matches!(err, LoadError::Conflict { column: 1, .. }));
    }

    #[test]
    fn unload_frees_words() {
        let (region, modules, g) = setup();
        let a = assemble_module(&region, &modules, &place(0, 0, 0), &g);
        let b = assemble_module(&region, &modules, &place(1, 1, 0), &g);
        let mut mem = ConfigMemory::new(region, g);
        mem.load(&a).unwrap();
        mem.unload("m");
        assert_eq!(mem.live_words(), 0);
        mem.load(&b).unwrap(); // now fits
    }

    #[test]
    fn corrupt_bitstream_rejected() {
        let (region, modules, g) = setup();
        let mut bs = assemble_module(&region, &modules, &place(0, 0, 0), &g);
        bs.frames[0].words[0] ^= 0xFF;
        let mut mem = ConfigMemory::new(region, g);
        assert!(matches!(mem.load(&bs), Err(LoadError::BadCrc { .. })));
        assert_eq!(mem.live_words(), 0);
    }

    #[test]
    fn wrong_frame_size_rejected() {
        let (region, modules, g) = setup();
        let mut bs = assemble_module(&region, &modules, &place(0, 0, 0), &g);
        bs.frames[0].words.push(7);
        bs.crc = crate::crc::crc32(
            &bs.frames
                .iter()
                .flat_map(|f| f.words.iter().copied())
                .collect::<Vec<_>>(),
        );
        let mut mem = ConfigMemory::new(region, g);
        assert!(matches!(
            mem.load(&bs),
            Err(LoadError::FrameSizeMismatch { .. })
        ));
    }

    impl crate::assemble::PartialBitstream {
        fn words_nonzero(&self) -> usize {
            self.frames
                .iter()
                .flat_map(|f| &f.words)
                .filter(|&&w| w != 0)
                .count()
        }
    }
}
