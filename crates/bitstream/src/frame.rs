//! Frames: the unit of (re)configuration.
//!
//! Column-oriented devices configure one *frame* at a time; a frame holds
//! the configuration bits of one fabric column (within the reconfigurable
//! region's height), and its word count depends on the column's resource
//! kind — BRAM content frames are much larger than logic frames.

use rrf_fabric::{Region, ResourceKind};
use serde::{Deserialize, Serialize};

/// Words per tile for each resource kind — multiplied by the region
/// height to get a column's frame size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameGeometry {
    pub clb_words_per_tile: u32,
    pub bram_words_per_tile: u32,
    pub dsp_words_per_tile: u32,
    /// Io / clock / static columns still carry routing configuration.
    pub other_words_per_tile: u32,
}

impl Default for FrameGeometry {
    fn default() -> FrameGeometry {
        FrameGeometry {
            clb_words_per_tile: 4,
            bram_words_per_tile: 32,
            dsp_words_per_tile: 6,
            other_words_per_tile: 2,
        }
    }
}

impl FrameGeometry {
    pub fn words_per_tile(&self, kind: ResourceKind) -> u32 {
        match kind {
            ResourceKind::Clb => self.clb_words_per_tile,
            ResourceKind::Bram => self.bram_words_per_tile,
            ResourceKind::Dsp => self.dsp_words_per_tile,
            _ => self.other_words_per_tile,
        }
    }

    /// Frame word count of column `x` of `region`: the sum over the
    /// column's tiles (heterogeneous columns — e.g. clock-interrupted —
    /// sum their parts).
    pub fn column_words(&self, region: &Region, x: i32) -> u32 {
        let b = region.bounds();
        (b.y..b.y_end())
            .map(|y| self.words_per_tile(region.kind_at(x, y)))
            .sum()
    }
}

/// A frame address: the column it configures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FrameAddress {
    pub column: i32,
}

/// One frame of configuration data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    pub address: FrameAddress,
    /// Configuration words; length must equal the device's frame size for
    /// that column (checked at load time).
    pub words: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_fabric::Fabric;

    #[test]
    fn column_words_by_kind() {
        let region = Region::whole(Fabric::from_art("cB\ncB").unwrap());
        let g = FrameGeometry::default();
        assert_eq!(g.column_words(&region, 0), 2 * 4);
        assert_eq!(g.column_words(&region, 1), 2 * 32);
    }

    #[test]
    fn mixed_column_sums_parts() {
        // Column with one CLB and one clock tile.
        let region = Region::whole(Fabric::from_art("c\nk").unwrap());
        let g = FrameGeometry::default();
        assert_eq!(g.column_words(&region, 0), 4 + 2);
    }

    #[test]
    fn out_of_region_column_counts_as_other() {
        // Columns outside the fabric read as Static and still get the
        // "other" routing words per row of the region height.
        let region = Region::whole(Fabric::from_art("c").unwrap());
        let g = FrameGeometry::default();
        assert_eq!(g.column_words(&region, 5), g.other_words_per_tile);
    }
}
