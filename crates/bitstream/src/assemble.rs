//! Per-module partial bitstream assembly.
//!
//! A placed design alternative configures the frames of every column its
//! tiles touch. The payload here is a deterministic function of the
//! module's tiles (kind and row per word slot) — not real device bits,
//! but faithful in every property the flow exercises: frame extents,
//! sizes, conflicts, relocation validity, and integrity checking.

use crate::crc::crc32;
use crate::frame::{Frame, FrameAddress, FrameGeometry};
use rrf_core::{Floorplan, Module, PlacedModule};
use rrf_fabric::Region;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A module's partial bitstream: the frames it writes plus a CRC over all
/// payload words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialBitstream {
    /// Module name (diagnostics only).
    pub name: String,
    pub frames: Vec<Frame>,
    pub crc: u32,
}

impl PartialBitstream {
    /// Total payload words.
    pub fn words(&self) -> usize {
        self.frames.iter().map(|f| f.words.len()).sum()
    }

    /// Recompute the CRC and compare (integrity check before loading).
    pub fn verify_crc(&self) -> bool {
        self.crc == compute_crc(&self.frames)
    }

    /// Columns written, ascending.
    pub fn columns(&self) -> Vec<i32> {
        self.frames.iter().map(|f| f.address.column).collect()
    }
}

fn compute_crc(frames: &[Frame]) -> u32 {
    let all: Vec<u32> = frames
        .iter()
        .flat_map(|f| f.words.iter().copied())
        .collect();
    crc32(&all)
}

/// Deterministic payload word for one tile slot.
fn payload_word(module_name: &str, kind_index: usize, row: i32, slot: u32) -> u32 {
    // A cheap mix; stability across runs is all that matters.
    let mut h = 0x811C_9DC5u32; // FNV offset basis
    for b in module_name.bytes() {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h ^ ((kind_index as u32) << 24) ^ ((row as u32) << 8) ^ slot
}

/// Assemble the partial bitstream of one placed module.
///
/// Every column the module touches yields one frame sized by the device
/// geometry; word slots covered by the module's tiles carry payload, the
/// rest are zero (the "don't touch" mask a merging loader preserves).
pub fn assemble_module(
    region: &Region,
    modules: &[Module],
    placed: &PlacedModule,
    geometry: &FrameGeometry,
) -> PartialBitstream {
    let module = &modules[placed.module];
    let shape = &module.shapes()[placed.shape];
    let b = region.bounds();
    // Column -> frame words.
    let mut frames: BTreeMap<i32, Vec<u32>> = BTreeMap::new();
    for (tile, kind) in shape.tiles_at(placed.x, placed.y) {
        let words = frames
            .entry(tile.x)
            .or_insert_with(|| vec![0u32; geometry.column_words(region, tile.x) as usize]);
        // The word offset of this tile within its column's frame.
        let mut offset = 0usize;
        for y in b.y..tile.y {
            offset += geometry.words_per_tile(region.kind_at(tile.x, y)) as usize;
        }
        let per_tile = geometry.words_per_tile(region.kind_at(tile.x, tile.y)) as usize;
        for slot in 0..per_tile {
            words[offset + slot] = payload_word(&module.name, kind.index(), tile.y, slot as u32);
        }
    }
    let frames: Vec<Frame> = frames
        .into_iter()
        .map(|(column, words)| Frame {
            address: FrameAddress { column },
            words,
        })
        .collect();
    let crc = compute_crc(&frames);
    PartialBitstream {
        name: module.name.clone(),
        frames,
        crc,
    }
}

/// Assemble every module of a floorplan.
pub fn assemble_floorplan(
    region: &Region,
    modules: &[Module],
    plan: &Floorplan,
    geometry: &FrameGeometry,
) -> Vec<PartialBitstream> {
    plan.placements
        .iter()
        .map(|p| assemble_module(region, modules, p, geometry))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_fabric::{Fabric, ResourceKind};
    use rrf_geost::{ShapeDef, ShiftedBox};

    fn setup() -> (Region, Vec<Module>) {
        let region = Region::whole(Fabric::from_art("ccBcc\nccBcc\nccBcc").unwrap());
        let logic = Module::new(
            "logic",
            vec![ShapeDef::new(vec![ShiftedBox::new(
                0,
                0,
                2,
                2,
                ResourceKind::Clb,
            )])],
        );
        let mem = Module::new(
            "mem",
            vec![ShapeDef::new(vec![ShiftedBox::new(
                0,
                0,
                1,
                2,
                ResourceKind::Bram,
            )])],
        );
        (region, vec![logic, mem])
    }

    fn place(module: usize, x: i32, y: i32) -> PlacedModule {
        PlacedModule {
            module,
            shape: 0,
            x,
            y,
        }
    }

    #[test]
    fn frame_extents_match_footprint() {
        let (region, modules) = setup();
        let bs = assemble_module(
            &region,
            &modules,
            &place(0, 0, 0),
            &FrameGeometry::default(),
        );
        assert_eq!(bs.columns(), vec![0, 1]);
        // 3-row CLB columns at 4 words/tile → 12-word frames.
        assert!(bs.frames.iter().all(|f| f.words.len() == 12));
        assert!(bs.verify_crc());
    }

    #[test]
    fn bram_frames_are_larger() {
        let (region, modules) = setup();
        let bs = assemble_module(
            &region,
            &modules,
            &place(1, 2, 0),
            &FrameGeometry::default(),
        );
        assert_eq!(bs.columns(), vec![2]);
        assert_eq!(bs.frames[0].words.len(), 3 * 32);
    }

    #[test]
    fn untouched_rows_are_zero() {
        let (region, modules) = setup();
        // Module at y=1 leaves row 0 slots zero.
        let bs = assemble_module(
            &region,
            &modules,
            &place(0, 0, 1),
            &FrameGeometry::default(),
        );
        let frame = &bs.frames[0];
        assert!(frame.words[..4].iter().all(|&w| w == 0));
        assert!(frame.words[4..].iter().any(|&w| w != 0));
    }

    #[test]
    fn deterministic_and_name_sensitive() {
        let (region, modules) = setup();
        let g = FrameGeometry::default();
        let a = assemble_module(&region, &modules, &place(0, 0, 0), &g);
        let b = assemble_module(&region, &modules, &place(0, 0, 0), &g);
        assert_eq!(a, b);
        // A different module at the same spot writes different payloads.
        let renamed = vec![
            Module::new("other", modules[0].shapes().to_vec()),
            modules[1].clone(),
        ];
        let c = assemble_module(&region, &renamed, &place(0, 0, 0), &g);
        assert_ne!(a.frames, c.frames);
    }

    #[test]
    fn crc_detects_tampering() {
        let (region, modules) = setup();
        let mut bs = assemble_module(
            &region,
            &modules,
            &place(0, 0, 0),
            &FrameGeometry::default(),
        );
        assert!(bs.verify_crc());
        bs.frames[0].words[0] ^= 1;
        assert!(!bs.verify_crc());
    }

    #[test]
    fn floorplan_assembly_is_per_module() {
        let (region, modules) = setup();
        let plan = Floorplan::new(vec![place(0, 0, 0), place(1, 2, 0)]);
        let all = assemble_floorplan(&region, &modules, &plan, &FrameGeometry::default());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "logic");
        assert_eq!(all[1].name, "mem");
    }
}
