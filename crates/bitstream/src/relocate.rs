//! Bitstream relocation: rebasing a partial bitstream to another column
//! offset.
//!
//! Relocatable modules (Becker et al., discussed in the paper's related
//! work) can be loaded at several positions from *one* stored bitstream —
//! but only where the target columns carry exactly the resource kinds the
//! bitstream was generated for. This module implements the rebase and the
//! compatibility check; its failure cases are precisely the heterogeneity
//! constraints the placement model encodes.

use crate::assemble::PartialBitstream;
use crate::frame::{FrameAddress, FrameGeometry};
use rrf_fabric::Region;
use std::fmt;

/// Why a relocation is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelocationError {
    /// A target column's frame size differs — its resource layout cannot
    /// match the source column's.
    IncompatibleColumn {
        from: i32,
        to: i32,
        from_words: usize,
        to_words: usize,
    },
    /// A target column's per-row resource kinds differ from the source's,
    /// even though sizes coincide.
    KindMismatch { from: i32, to: i32, row: i32 },
}

impl fmt::Display for RelocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelocationError::IncompatibleColumn {
                from,
                to,
                from_words,
                to_words,
            } => write!(
                f,
                "cannot relocate column {from} ({from_words} words) onto {to} ({to_words} words)"
            ),
            RelocationError::KindMismatch { from, to, row } => write!(
                f,
                "column {to} row {row} has a different resource kind than column {from}"
            ),
        }
    }
}

impl std::error::Error for RelocationError {}

/// Rebase `bitstream` by `delta_columns` on `region`. Succeeds iff every
/// (source, target) column pair matches in per-row resource kinds.
pub fn relocate(
    region: &Region,
    geometry: &FrameGeometry,
    bitstream: &PartialBitstream,
    delta_columns: i32,
) -> Result<PartialBitstream, RelocationError> {
    let b = region.bounds();
    for frame in &bitstream.frames {
        let from = frame.address.column;
        let to = from + delta_columns;
        for row in b.y..b.y_end() {
            if region.kind_at(from, row) != region.kind_at(to, row) {
                // Distinguish the gross size error from the fine one.
                let from_words = geometry.column_words(region, from) as usize;
                let to_words = geometry.column_words(region, to) as usize;
                if from_words != to_words {
                    return Err(RelocationError::IncompatibleColumn {
                        from,
                        to,
                        from_words,
                        to_words,
                    });
                }
                return Err(RelocationError::KindMismatch { from, to, row });
            }
        }
    }
    let frames = bitstream
        .frames
        .iter()
        .map(|f| crate::frame::Frame {
            address: FrameAddress {
                column: f.address.column + delta_columns,
            },
            words: f.words.clone(),
        })
        .collect();
    Ok(PartialBitstream {
        name: bitstream.name.clone(),
        frames,
        crc: bitstream.crc, // payload unchanged
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble_module;
    use rrf_core::{Module, PlacedModule};
    use rrf_fabric::{Fabric, ResourceKind};
    use rrf_geost::{ShapeDef, ShiftedBox};

    fn setup() -> (Region, Vec<Module>, FrameGeometry) {
        // Periodic fabric: B at columns 2 and 6 → period 4.
        let region = Region::whole(Fabric::from_art("ccBcccBc\nccBcccBc").unwrap());
        let m = Module::new(
            "m",
            vec![ShapeDef::new(vec![
                ShiftedBox::new(0, 0, 2, 2, ResourceKind::Clb),
                ShiftedBox::new(2, 0, 1, 2, ResourceKind::Bram),
            ])],
        );
        (region, vec![m], FrameGeometry::default())
    }

    #[test]
    fn period_aligned_relocation_succeeds() {
        let (region, modules, g) = setup();
        let bs = assemble_module(
            &region,
            &modules,
            &PlacedModule {
                module: 0,
                shape: 0,
                x: 0,
                y: 0,
            },
            &g,
        );
        let moved = relocate(&region, &g, &bs, 4).unwrap();
        assert_eq!(moved.columns(), vec![4, 5, 6]);
        assert!(moved.verify_crc());
        // Loading both the original and the relocated copy must merge
        // cleanly (they are disjoint placements of "the same" module).
        let mut mem = crate::memory::ConfigMemory::new(region, g);
        mem.load(&bs).unwrap();
        mem.load(&moved).unwrap();
    }

    #[test]
    fn misaligned_relocation_fails() {
        let (region, modules, g) = setup();
        let bs = assemble_module(
            &region,
            &modules,
            &PlacedModule {
                module: 0,
                shape: 0,
                x: 0,
                y: 0,
            },
            &g,
        );
        // Shift by 1: the BRAM column would land on CLB.
        let err = relocate(&region, &g, &bs, 1).unwrap_err();
        assert!(matches!(
            err,
            RelocationError::IncompatibleColumn { .. } | RelocationError::KindMismatch { .. }
        ));
    }

    #[test]
    fn zero_delta_is_identity() {
        let (region, modules, g) = setup();
        let bs = assemble_module(
            &region,
            &modules,
            &PlacedModule {
                module: 0,
                shape: 0,
                x: 0,
                y: 0,
            },
            &g,
        );
        assert_eq!(relocate(&region, &g, &bs, 0).unwrap(), bs);
    }

    #[test]
    fn relocation_off_device_fails() {
        let (region, modules, g) = setup();
        let bs = assemble_module(
            &region,
            &modules,
            &PlacedModule {
                module: 0,
                shape: 0,
                x: 0,
                y: 0,
            },
            &g,
        );
        // Off the right edge: kinds become Static and sizes differ.
        assert!(relocate(&region, &g, &bs, 100).is_err());
    }
}
