//! CRC-32 (IEEE 802.3 polynomial) over configuration words — the
//! integrity check a configuration controller runs before committing a
//! partial bitstream.

/// Reflected CRC-32 with the IEEE polynomial, processing each 32-bit word
/// little-endian byte first. The table is built at first use.
pub fn crc32(words: &[u32]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &word in words {
        for byte in word.to_le_bytes() {
            crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
        }
    }
    !crc
}

/// The standard reflected table for polynomial 0xEDB88320.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // "123456789" as bytes → CRC32 0xCBF43926. Pack into words LE:
        // the bytes 31..39 need padding to a word multiple, so instead
        // check internal consistency plus the empty and one-word cases.
        assert_eq!(crc32(&[]), 0);
        // CRC of the 4 bytes 01 00 00 00 (word 1 LE).
        assert_eq!(crc32(&[1]), {
            // Computed with the reference bytewise algorithm inline:
            let mut crc = 0xFFFF_FFFFu32;
            for b in [1u8, 0, 0, 0] {
                crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        });
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = [0xDEAD_BEEFu32, 0x1234_5678, 0x0BAD_F00D];
        let base = crc32(&data);
        for word in 0..data.len() {
            for bit in 0..32 {
                let mut corrupted = data;
                corrupted[word] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "missed flip {word}/{bit}");
            }
        }
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(crc32(&[1, 2]), crc32(&[2, 1]));
    }
}
