//! # rrf-chaos — a deterministic TCP chaos proxy
//!
//! Sits between a client and an `rrf-serve` daemon and injects transport
//! faults — abrupt disconnects, byte corruption, torn writes at
//! arbitrary offsets, stalls, and reorder-free delays — from a seeded
//! RNG, so a soak run that found a bug can be replayed byte-for-byte.
//!
//! Determinism model: connections are numbered in accept order, and each
//! connection derives its own `ChaCha8Rng` from `seed ^ mix(conn_id)` —
//! two pumps per connection (client→server and server→client) split that
//! stream by direction. Fault decisions are drawn per forwarded chunk.
//! The *sequence* of decisions is therefore reproducible for a given
//! seed and connection order; wall-clock timing of the endpoints is not
//! (that is exactly the nondeterminism a soak test wants to survive).
//!
//! Direction policy: **corruption is injected only client→server.**
//! The daemon must survive arbitrary garbage, but a corrupted
//! server→client response would make an honest placement look wrong and
//! poison invariant checks ("every accepted placement verifies") with
//! false failures. Disconnects, torn writes, stalls, and delays apply in
//! both directions — they reorder nothing and never forge bytes.

#![forbid(unsafe_code)]

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fault-injection probabilities and magnitudes. All probabilities are
/// per forwarded chunk (a chunk is one upstream `read`, ≤ 8 KiB).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Proxy listen address; port 0 picks a free port.
    pub listen: String,
    /// Upstream daemon address.
    pub upstream: String,
    /// Seed for every per-connection RNG derivation.
    pub seed: u64,
    /// Probability of dropping the connection instead of forwarding a
    /// chunk (both directions).
    pub disconnect_prob: f64,
    /// Probability of flipping one byte of a chunk (client→server only;
    /// see the module docs for why).
    pub corrupt_prob: f64,
    /// Probability of tearing a chunk: write a prefix of random length,
    /// pause, then write the rest (both directions).
    pub torn_write_prob: f64,
    /// Probability of stalling for `stall_ms` before forwarding (both
    /// directions) — exercises read/write timeouts.
    pub stall_prob: f64,
    /// Stall duration, milliseconds.
    pub stall_ms: u64,
    /// Probability of a short reorder-free delay before forwarding.
    pub delay_prob: f64,
    /// Maximum delay, milliseconds (uniform draw in `1..=max`).
    pub delay_ms_max: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            listen: "127.0.0.1:0".to_string(),
            upstream: "127.0.0.1:7171".to_string(),
            seed: 1,
            disconnect_prob: 0.01,
            corrupt_prob: 0.02,
            torn_write_prob: 0.05,
            stall_prob: 0.02,
            stall_ms: 150,
            delay_prob: 0.10,
            delay_ms_max: 10,
        }
    }
}

/// Injection counters, all monotone.
#[derive(Debug, Default, Clone)]
pub struct ChaosStats {
    pub conns: u64,
    pub disconnects: u64,
    pub corrupted_bytes: u64,
    pub torn_writes: u64,
    pub stalls: u64,
    pub delays: u64,
    pub bytes_forwarded: u64,
    /// Partition onsets ([`ChaosProxy::set_partitioned`] false→true).
    pub partitions: u64,
}

#[derive(Default)]
struct Counters {
    conns: AtomicU64,
    disconnects: AtomicU64,
    corrupted_bytes: AtomicU64,
    torn_writes: AtomicU64,
    stalls: AtomicU64,
    delays: AtomicU64,
    bytes_forwarded: AtomicU64,
    partitions: AtomicU64,
}

/// A running proxy. Dropping the handle (or calling [`ChaosProxy::stop`])
/// shuts the listener down; live pumps notice within their poll interval.
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    partitioned: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: Option<JoinHandle<()>>,
}

const POLL: Duration = Duration::from_millis(20);

/// SplitMix64 finalizer — decorrelates consecutive connection ids into
/// well-separated RNG seeds.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

pub fn start(config: ChaosConfig) -> std::io::Result<ChaosProxy> {
    let listener = TcpListener::bind(&config.listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let partitioned = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters::default());
    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let partitioned = Arc::clone(&partitioned);
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || {
            accept_loop(&listener, &config, &shutdown, &partitioned, &counters)
        })
    };
    Ok(ChaosProxy {
        addr,
        shutdown,
        partitioned,
        counters,
        accept_thread: Some(accept_thread),
    })
}

impl ChaosProxy {
    /// The address clients should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> ChaosStats {
        let c = &self.counters;
        ChaosStats {
            conns: c.conns.load(Ordering::SeqCst),
            disconnects: c.disconnects.load(Ordering::SeqCst),
            corrupted_bytes: c.corrupted_bytes.load(Ordering::SeqCst),
            torn_writes: c.torn_writes.load(Ordering::SeqCst),
            stalls: c.stalls.load(Ordering::SeqCst),
            delays: c.delays.load(Ordering::SeqCst),
            bytes_forwarded: c.bytes_forwarded.load(Ordering::SeqCst),
            partitions: c.partitions.load(Ordering::SeqCst),
        }
    }

    /// Simulate a network partition between proxy and upstream: while
    /// set, new connections are refused at accept and live pumps cut
    /// both directions at their next chunk — from the client's view the
    /// backend just vanished, exactly like a pulled cable. Clearing the
    /// flag heals the partition (new connections flow again; the cut
    /// ones stay dead, as real TCP sessions would).
    pub fn set_partitioned(&self, on: bool) {
        let was = self.partitioned.swap(on, Ordering::SeqCst);
        if on && !was {
            self.counters.partitions.fetch_add(1, Ordering::SeqCst);
        }
    }

    pub fn is_partitioned(&self) -> bool {
        self.partitioned.load(Ordering::SeqCst)
    }

    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    config: &ChaosConfig,
    shutdown: &Arc<AtomicBool>,
    partitioned: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    let mut conn_id = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                conn_id += 1;
                counters.conns.fetch_add(1, Ordering::SeqCst);
                if partitioned.load(Ordering::SeqCst) {
                    // Partitioned: the upstream is unreachable, so the
                    // client sees an immediate close on connect.
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let upstream = match TcpStream::connect(&config.upstream) {
                    Ok(upstream) => upstream,
                    Err(_) => {
                        // Upstream down: the client sees an immediate
                        // close — indistinguishable from an injected
                        // disconnect, which is fine.
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    }
                };
                let conn_seed = config.seed ^ mix(conn_id);
                spawn_pump(
                    client.try_clone(),
                    upstream.try_clone(),
                    Direction::ClientToServer,
                    ChaCha8Rng::seed_from_u64(mix(conn_seed)),
                    config.clone(),
                    Arc::clone(shutdown),
                    Arc::clone(partitioned),
                    Arc::clone(counters),
                );
                spawn_pump(
                    Ok(upstream),
                    Ok(client),
                    Direction::ServerToClient,
                    ChaCha8Rng::seed_from_u64(mix(conn_seed ^ 1)),
                    config.clone(),
                    Arc::clone(shutdown),
                    Arc::clone(partitioned),
                    Arc::clone(counters),
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    ClientToServer,
    ServerToClient,
}

#[allow(clippy::too_many_arguments)]
fn spawn_pump(
    from: std::io::Result<TcpStream>,
    to: std::io::Result<TcpStream>,
    direction: Direction,
    rng: ChaCha8Rng,
    config: ChaosConfig,
    shutdown: Arc<AtomicBool>,
    partitioned: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let (Ok(from), Ok(to)) = (from, to) else {
        return;
    };
    std::thread::spawn(move || {
        let _ = pump(
            from,
            to,
            direction,
            rng,
            &config,
            &shutdown,
            &partitioned,
            &counters,
        );
    });
}

/// What to do with one forwarded chunk — the injector's deterministic
/// verdict, separated from the socket plumbing so it can be tested (and
/// replayed) without live TCP timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Cut both directions instead of forwarding.
    pub disconnect: bool,
    /// Sleep this long before forwarding (stall + reorder-free delay).
    pub pre_delay: Duration,
    /// Flip bit 0x10 of the byte at this offset (client→server only).
    pub corrupt_at: Option<usize>,
    /// Tear the write at this offset, with this pause between halves.
    pub tear: Option<(usize, Duration)>,
}

/// The seeded per-pump decision stream. For a given config, seed, and
/// sequence of chunk lengths, the emitted [`Decision`]s are identical on
/// every run — this is the proxy's replayability contract.
pub struct Injector {
    direction_corrupts: bool,
    config: ChaosConfig,
    rng: ChaCha8Rng,
}

impl Injector {
    pub fn new(config: ChaosConfig, seed: u64, corrupts: bool) -> Injector {
        Injector {
            direction_corrupts: corrupts,
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Decide the fate of the next chunk of `len` bytes. Draws are gated
    /// on non-zero probabilities, so disabling an injection removes its
    /// draws from the stream entirely (a zeroed knob cannot shift the
    /// decisions of the others).
    pub fn decide(&mut self, len: usize) -> Decision {
        let config = &self.config;
        let rng = &mut self.rng;
        let mut decision = Decision {
            disconnect: false,
            pre_delay: Duration::ZERO,
            corrupt_at: None,
            tear: None,
        };
        if config.disconnect_prob > 0.0 && rng.gen_bool(config.disconnect_prob) {
            decision.disconnect = true;
            return decision;
        }
        if config.stall_prob > 0.0 && rng.gen_bool(config.stall_prob) {
            decision.pre_delay += Duration::from_millis(config.stall_ms);
        }
        if config.delay_prob > 0.0 && rng.gen_bool(config.delay_prob) {
            decision.pre_delay +=
                Duration::from_millis(rng.gen_range(1..=config.delay_ms_max.max(1)));
        }
        if self.direction_corrupts && config.corrupt_prob > 0.0 && rng.gen_bool(config.corrupt_prob)
        {
            decision.corrupt_at = Some(rng.gen_range(0..len.max(1)));
        }
        if config.torn_write_prob > 0.0 && len >= 2 && rng.gen_bool(config.torn_write_prob) {
            decision.tear = Some((
                rng.gen_range(1..len),
                Duration::from_millis(rng.gen_range(1..=5)),
            ));
        }
        decision
    }
}

/// Forward bytes `from` → `to`, injecting faults per chunk. Returns when
/// either side closes, a disconnect is injected, or the proxy shuts down.
#[allow(clippy::too_many_arguments)]
fn pump(
    mut from: TcpStream,
    mut to: TcpStream,
    direction: Direction,
    rng: ChaCha8Rng,
    config: &ChaosConfig,
    shutdown: &AtomicBool,
    partitioned: &AtomicBool,
    counters: &Counters,
) -> std::io::Result<()> {
    from.set_read_timeout(Some(POLL))?;
    let stall_prob = config.stall_prob;
    let mut injector = Injector {
        direction_corrupts: direction == Direction::ClientToServer,
        config: config.clone(),
        rng,
    };
    let mut buf = [0u8; 8192];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        if partitioned.load(Ordering::SeqCst) {
            // The cable is pulled: cut both directions mid-stream.
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return Ok(());
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                // Propagate the half-close so the other end's read sees
                // EOF rather than hanging.
                let _ = to.shutdown(Shutdown::Write);
                return Ok(());
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                let _ = to.shutdown(Shutdown::Both);
                return Ok(());
            }
        };
        let chunk = &mut buf[..n];
        let decision = injector.decide(n);

        if decision.disconnect {
            counters.disconnects.fetch_add(1, Ordering::SeqCst);
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return Ok(());
        }
        if !decision.pre_delay.is_zero() {
            // Counter attribution is approximate (a stall and a delay in
            // the same decision count once each when both knobs are on).
            if stall_prob > 0.0 && decision.pre_delay >= Duration::from_millis(config.stall_ms) {
                counters.stalls.fetch_add(1, Ordering::SeqCst);
            } else {
                counters.delays.fetch_add(1, Ordering::SeqCst);
            }
            std::thread::sleep(decision.pre_delay);
        }
        if let Some(at) = decision.corrupt_at {
            // Flip a middle bit — guaranteed to change the byte, and can
            // turn printable JSON into control bytes and vice versa.
            chunk[at.min(chunk.len() - 1)] ^= 0x10;
            counters.corrupted_bytes.fetch_add(1, Ordering::SeqCst);
        }
        if let Some((split, pause)) = decision.tear {
            counters.torn_writes.fetch_add(1, Ordering::SeqCst);
            to.write_all(&chunk[..split])?;
            to.flush()?;
            std::thread::sleep(pause);
            to.write_all(&chunk[split..])?;
        } else {
            to.write_all(chunk)?;
        }
        counters
            .bytes_forwarded
            .fetch_add(n as u64, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial line-echo upstream for proxy tests.
    fn echo_server() -> (std::net::SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    while let Ok(n) = reader.read_line(&mut line) {
                        if n == 0 {
                            break;
                        }
                        if writer.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn clean_config_forwards_bytes_unmodified() {
        let (upstream, _handle) = echo_server();
        let mut proxy = start(ChaosConfig {
            upstream: upstream.to_string(),
            disconnect_prob: 0.0,
            corrupt_prob: 0.0,
            torn_write_prob: 0.0,
            stall_prob: 0.0,
            delay_prob: 0.0,
            ..ChaosConfig::default()
        })
        .unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"hello through the proxy\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "hello through the proxy\n");
        proxy.stop();
        assert_eq!(proxy.stats().conns, 1);
        assert!(proxy.stats().bytes_forwarded >= 2 * reply.len() as u64);
    }

    #[test]
    fn torn_writes_still_deliver_every_byte_in_order() {
        let (upstream, _handle) = echo_server();
        let mut proxy = start(ChaosConfig {
            upstream: upstream.to_string(),
            seed: 7,
            disconnect_prob: 0.0,
            corrupt_prob: 0.0,
            torn_write_prob: 1.0, // tear every chunk
            stall_prob: 0.0,
            delay_prob: 0.0,
            ..ChaosConfig::default()
        })
        .unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        for i in 0..20 {
            let msg = format!("line {i} with some padding to tear\n");
            conn.write_all(msg.as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            assert_eq!(reply, msg, "torn writes must not lose or reorder bytes");
        }
        proxy.stop();
        assert!(proxy.stats().torn_writes > 0);
    }

    #[test]
    fn same_seed_same_injection_sequence() {
        // The replayability contract lives in the Injector: for a fixed
        // seed, config, and chunk-length sequence, the decision stream
        // is identical — chunk by chunk, field by field.
        let config = ChaosConfig {
            seed: 99,
            disconnect_prob: 0.05,
            corrupt_prob: 0.4,
            torn_write_prob: 0.4,
            stall_prob: 0.1,
            delay_prob: 0.3,
            ..ChaosConfig::default()
        };
        let lens: Vec<usize> = (0..200).map(|i| 3 + (i * 37) % 800).collect();
        let run = || {
            let mut injector = Injector::new(config.clone(), mix(config.seed), true);
            lens.iter().map(|&n| injector.decide(n)).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must inject identically");
        assert!(
            a.iter().any(|d| d.corrupt_at.is_some()) && a.iter().any(|d| d.tear.is_some()),
            "probabilities this high must fire over 200 chunks"
        );
        // A different seed diverges (not a fixed decision table).
        let mut other = Injector::new(config.clone(), mix(config.seed ^ 1), true);
        let c: Vec<_> = lens.iter().map(|&n| other.decide(n)).collect();
        assert_ne!(a, c, "different seeds must diverge");
        // Zeroing one knob must not shift the others' draw stream: with
        // corruption disabled, tear decisions keep their positions in
        // the stream for chunks where neither fired... (gated draws).
        let mut no_corrupt = Injector::new(
            ChaosConfig {
                corrupt_prob: 0.0,
                ..config.clone()
            },
            mix(config.seed),
            true,
        );
        let d: Vec<_> = lens.iter().map(|&n| no_corrupt.decide(n)).collect();
        assert!(d.iter().all(|dec| dec.corrupt_at.is_none()));
    }

    #[test]
    fn partition_cuts_live_and_new_connections_until_healed() {
        let (upstream, _handle) = echo_server();
        let mut proxy = start(ChaosConfig {
            upstream: upstream.to_string(),
            disconnect_prob: 0.0,
            corrupt_prob: 0.0,
            torn_write_prob: 0.0,
            stall_prob: 0.0,
            delay_prob: 0.0,
            ..ChaosConfig::default()
        })
        .unwrap();

        // A live connection works, then dies when the cable is pulled.
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"before partition\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "before partition\n");

        proxy.set_partitioned(true);
        assert!(proxy.is_partitioned());
        let _ = conn.write_all(b"into the void\n");
        reply.clear();
        // The pump cuts at its next poll tick (≤ POLL): the read sees
        // EOF or a reset, never an echo.
        match reader.read_line(&mut reply) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("echo must not cross a partition: {reply:?}"),
        }

        // New connections during the partition die without an echo too.
        let mut cut = TcpStream::connect(proxy.addr()).unwrap();
        let _ = cut.write_all(b"also doomed\n");
        let mut cut_reader = BufReader::new(cut);
        reply.clear();
        match cut_reader.read_line(&mut reply) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("new connections must not cross a partition"),
        }

        // Healing restores service for fresh connections.
        proxy.set_partitioned(false);
        let mut healed = TcpStream::connect(proxy.addr()).unwrap();
        healed.write_all(b"after heal\n").unwrap();
        let mut healed_reader = BufReader::new(healed.try_clone().unwrap());
        reply.clear();
        healed_reader.read_line(&mut reply).unwrap();
        assert_eq!(reply, "after heal\n");

        proxy.stop();
        assert_eq!(proxy.stats().partitions, 1);
    }

    #[test]
    fn disconnect_injection_closes_the_client() {
        let (upstream, _handle) = echo_server();
        let mut proxy = start(ChaosConfig {
            upstream: upstream.to_string(),
            seed: 3,
            disconnect_prob: 1.0, // first chunk dies
            ..ChaosConfig::default()
        })
        .unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let _ = conn.write_all(b"doomed\n");
        let mut reader = BufReader::new(conn);
        let mut reply = String::new();
        // Either a clean EOF or a reset — never a successful echo.
        match reader.read_line(&mut reply) {
            Ok(0) => {}
            Ok(_) => panic!("echo must not survive a forced disconnect"),
            Err(_) => {}
        }
        proxy.stop();
        assert!(proxy.stats().disconnects >= 1);
    }
}
