//! `rrf-chaos` — run the chaos proxy between a client and rrf-serve.
//!
//! ```text
//! rrf-chaos --upstream HOST:PORT [--listen HOST:PORT] [--seed N]
//!           [--disconnect P] [--corrupt P] [--torn P] [--stall P]
//!           [--stall-ms MS] [--delay P] [--delay-ms-max MS]
//! ```
//!
//! Probabilities are per forwarded chunk, in `[0, 1]`. The injection
//! sequence is deterministic per `--seed` and connection order; rerun
//! with the same seed to replay a failure. Corruption applies only
//! client→server (see the library docs). Stops on SIGINT/SIGTERM, then
//! prints injection counters to stderr.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rrf_chaos::{start, ChaosConfig};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const USAGE: &str = "usage: rrf-chaos --upstream HOST:PORT [--listen HOST:PORT] [--seed N] \
                     [--disconnect P] [--corrupt P] [--torn P] [--stall P] [--stall-ms MS] \
                     [--delay P] [--delay-ms-max MS] [--partition-after-ms MS] \
                     [--partition-for-ms MS] [--help] [--version]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut config = ChaosConfig::default();
    let mut partition_after_ms: Option<u64> = None;
    let mut partition_for_ms: u64 = 1_000;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--version" | "-V" => {
                println!("rrf-chaos {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--listen" => config.listen = value(),
            "--upstream" => config.upstream = value(),
            "--seed" => config.seed = value().parse().unwrap_or_else(|_| usage()),
            "--disconnect" => config.disconnect_prob = value().parse().unwrap_or_else(|_| usage()),
            "--corrupt" => config.corrupt_prob = value().parse().unwrap_or_else(|_| usage()),
            "--torn" => config.torn_write_prob = value().parse().unwrap_or_else(|_| usage()),
            "--stall" => config.stall_prob = value().parse().unwrap_or_else(|_| usage()),
            "--stall-ms" => config.stall_ms = value().parse().unwrap_or_else(|_| usage()),
            "--delay" => config.delay_prob = value().parse().unwrap_or_else(|_| usage()),
            "--delay-ms-max" => config.delay_ms_max = value().parse().unwrap_or_else(|_| usage()),
            "--partition-after-ms" => {
                partition_after_ms = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--partition-for-ms" => partition_for_ms = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    // Same minimal async-signal-safe handler pattern as rrf-serve, minus
    // the FFI: ctrl-c delivery is polled via the atomic. Installing a
    // real handler needs unsafe FFI; a chaos proxy is fine with the
    // default SIGINT disposition killing it — the atomic path exists for
    // SIGTERM-less environments where the process is stopped by closing
    // stdin instead.
    match start(config) {
        Ok(mut proxy) => {
            println!("rrf-chaos listening on {}", proxy.addr());
            // Scripted mid-soak partition: pull the cable once at the
            // requested offset, heal it after the window. One-shot by
            // design — replayable soaks want one fault at a known time.
            let mut partition_at =
                partition_after_ms.map(|ms| std::time::Instant::now() + Duration::from_millis(ms));
            let mut heal_at = None;
            while !SHUTDOWN.load(Ordering::SeqCst) {
                let now = std::time::Instant::now();
                if partition_at.is_some_and(|t| now >= t) {
                    partition_at = None;
                    proxy.set_partitioned(true);
                    heal_at = Some(now + Duration::from_millis(partition_for_ms));
                    eprintln!("rrf-chaos: partition on ({partition_for_ms} ms)");
                }
                if heal_at.is_some_and(|t| now >= t) {
                    heal_at = None;
                    proxy.set_partitioned(false);
                    eprintln!("rrf-chaos: partition healed");
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            proxy.stop();
            eprintln!("rrf-chaos: {:?}", proxy.stats());
        }
        Err(e) => {
            eprintln!("rrf-chaos: failed to start: {e}");
            std::process::exit(1);
        }
    }
}
