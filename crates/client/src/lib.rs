//! # rrf-client — a resilient client for the placement daemon
//!
//! `rrf-serve` sheds load under pressure: `overloaded` rejections carry a
//! `retry_after_ms` hint, slow clients are disconnected, and a draining
//! daemon refuses new work. This crate is the client half of that
//! contract — a reusable library (and a thin `rrf-client` CLI) that turns
//! those signals into correct retry behavior instead of hand-rolled
//! reconnect loops:
//!
//! * **Connection pooling.** A small pool of TCP connections is reused
//!   across calls; a connection that errored is dropped, not returned.
//! * **Timeouts.** Every attempt has a request timeout (read) and a
//!   connect timeout, so a wedged daemon cannot hang the caller.
//! * **Backoff with decorrelated jitter.** Retries sleep
//!   `uniform(base, prev * 3)` capped at a maximum ([`Backoff`]) — the
//!   classic decorrelated-jitter scheme, which avoids retry convoys from
//!   many clients synchronizing. The server's `retry_after_ms` hint
//!   raises the floor of the draw: the server knows how congested it is;
//!   the client never retries sooner than the server asked.
//! * **Idempotent-safe classification** ([`retry_class`]). `place`,
//!   `analyze`, and the read-only queries are retried freely — replaying
//!   them cannot corrupt state. State-mutating session operations
//!   (insert, remove, defrag, faults, repair, task ops) are **never**
//!   blindly resent after an ambiguous transport failure: the daemon may
//!   have applied the operation and only the response was lost. Instead,
//!   [`Client::call_mutating`] snapshots the session's occupancy digest
//!   (`dump_session`) before the attempt and compares it afterwards — an
//!   unchanged digest proves the operation did not apply (safe to
//!   resend); a changed digest means it (or a concurrent writer) did,
//!   and the caller gets [`MutationOutcome::AppliedNoResponse`] rather
//!   than a silent double-apply.
//!
//! An `overloaded` response is *always* retry-safe regardless of
//! classification: the daemon rejected the request before executing any
//! of it (see `rrf_server::protocol::Response::Overloaded`). That
//! includes the coalescing path: a `place` that joined another request's
//! in-flight solve and timed out waiting answers `overloaded` without
//! having run (or cancelled) anything itself, and the leader's result —
//! if the solve succeeded — lands in the placement cache, so the retry
//! this crate's existing loop issues typically returns as a cache hit
//! after the `retry_after_ms` sleep.

#![forbid(unsafe_code)]

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rrf_server::{Request, Response};

/// How a request may be retried after a transport failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Replaying the request cannot change daemon state: retry freely.
    Idempotent,
    /// The request mutates session state: an ambiguous failure (sent,
    /// no response) must not be blindly resent — use
    /// [`Client::call_mutating`].
    Mutating,
}

/// Classify a request for retry purposes. `schedule_status` is only
/// idempotent when it does not advance the logical clock.
pub fn retry_class(request: &Request) -> RetryClass {
    match request {
        Request::Place { .. }
        | Request::Analyze { .. }
        | Request::DumpSession { .. }
        | Request::Stats { .. }
        | Request::StatsDetail { .. }
        | Request::Ping { .. } => RetryClass::Idempotent,
        Request::ScheduleStatus { advance_to, .. } => match advance_to {
            None => RetryClass::Idempotent,
            Some(_) => RetryClass::Mutating,
        },
        Request::OpenSession { .. }
        | Request::AdoptJournal { .. }
        | Request::Insert { .. }
        | Request::Remove { .. }
        | Request::Defrag { .. }
        | Request::CloseSession { .. }
        | Request::InjectFault { .. }
        | Request::ClearFault { .. }
        | Request::Repair { .. }
        | Request::SubmitTask { .. }
        | Request::CancelTask { .. }
        | Request::DebugPanic { .. } => RetryClass::Mutating,
    }
}

/// Decorrelated-jitter backoff: each delay is drawn uniformly from
/// `[floor, prev * 3]` and clamped to `cap`, where `floor` is the base
/// delay raised by any server-provided `retry_after_ms` hint.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: ChaCha8Rng,
}

impl Backoff {
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        let base = base.max(Duration::from_millis(1));
        Backoff {
            base,
            cap: cap.max(base),
            prev: base,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The next delay to sleep before retrying. `hint` is the server's
    /// `retry_after_ms` (if the failure was an `overloaded` rejection);
    /// it raises the floor of the jitter draw — never retry sooner than
    /// the server asked, but still jitter *above* the hint so a thousand
    /// rejected clients do not return in lockstep.
    pub fn next_delay(&mut self, hint: Option<Duration>) -> Duration {
        let floor = self.base.max(hint.unwrap_or(Duration::ZERO)).min(self.cap);
        let ceil = (self.prev.saturating_mul(3)).clamp(floor, self.cap.max(floor));
        let span_us = ceil.saturating_sub(floor).as_micros() as u64;
        let jitter = if span_us == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.rng.gen_range(0..=span_us))
        };
        self.prev = floor + jitter;
        self.prev
    }

    /// Reset the growth state (e.g. after a successful call).
    pub fn reset(&mut self) {
        self.prev = self.base;
    }
}

/// Client configuration. The default is tuned for tests and CLIs:
/// small pool, generous timeouts, a handful of retries.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon address, `HOST:PORT`.
    pub addr: String,
    /// Maximum pooled idle connections (at least 1).
    pub pool_size: usize,
    /// Per-attempt response timeout.
    pub request_timeout: Duration,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Retry attempts after the first try (0 = never retry).
    pub max_retries: u32,
    /// Backoff base delay (the floor of the first jitter draw).
    pub backoff_base: Duration,
    /// Backoff cap: no single sleep exceeds this.
    pub backoff_cap: Duration,
    /// Seed for the jitter RNG — fixed seeds make retry schedules
    /// reproducible in tests.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            addr: "127.0.0.1:7171".to_string(),
            pool_size: 4,
            request_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
            max_retries: 6,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(10),
            seed: 0x5eed,
        }
    }
}

/// Client-side failure. Application-level failures (`Response::Error`)
/// are *not* errors — they are returned as ordinary responses.
#[derive(Debug)]
pub enum ClientError {
    /// Connect or transport failure on the final attempt.
    Io(std::io::Error),
    /// The daemon closed the connection without answering.
    ConnectionClosed,
    /// The response line did not parse as a protocol response.
    Protocol(String),
    /// Retries exhausted; the last failure is attached.
    RetriesExhausted {
        attempts: u32,
        last: Box<ClientError>,
    },
    /// Retries exhausted while the daemon kept answering `overloaded`.
    Overloaded {
        attempts: u32,
        message: String,
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::ConnectionClosed => write!(f, "connection closed before response"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            ClientError::Overloaded {
                attempts, message, ..
            } => write!(f, "still overloaded after {attempts} attempts: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Whether a failure proves the endpoint is down *right now*: the TCP
/// connect was refused, so the OS (not a timeout) answered immediately
/// and the request was never sent. Such failures are not worth the full
/// retry-with-backoff budget against the same endpoint — a router that
/// ejected a backend, or a crashed daemon, keeps refusing until it is
/// replaced — and they are never ambiguous, even for mutating requests.
pub fn is_fast_fail(e: &ClientError) -> bool {
    match e {
        ClientError::Io(e) => e.kind() == ErrorKind::ConnectionRefused,
        ClientError::RetriesExhausted { last, .. } => is_fast_fail(last),
        _ => false,
    }
}

/// Outcome of [`Client::call_mutating`].
#[derive(Debug)]
pub enum MutationOutcome {
    /// The daemon answered; nothing ambiguous happened. (Boxed: a
    /// `Response` can embed a full placement report, dwarfing the
    /// digest-pair variant.)
    Responded(Box<Response>),
    /// The transport failed after the request was sent, and the
    /// session's occupancy digest *changed* — the operation (or a
    /// concurrent writer) applied, but its response was lost. The caller
    /// must reconcile via `dump_session` rather than resend.
    AppliedNoResponse {
        /// Digest observed before the attempt.
        before_digest: String,
        /// Digest observed after the failure.
        after_digest: String,
    },
}

/// One pooled connection: a buffered reader over a cloned stream plus
/// the writing half.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(config: &ClientConfig) -> std::io::Result<Conn> {
        let addr = config.addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(ErrorKind::InvalidInput, "address resolved empty")
        })?;
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.request_timeout))?;
        stream.set_write_timeout(Some(config.request_timeout))?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One request/response exchange. Any error poisons the connection
    /// (the caller drops it): a timeout mid-read leaves a half-consumed
    /// response on the wire that would corrupt the next exchange.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = serde_json::to_string(request)
            .map_err(|e| ClientError::Protocol(format!("unserializable request: {e}")))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) => Err(ClientError::ConnectionClosed),
            Ok(_) => serde_json::from_str::<Response>(reply.trim())
                .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}"))),
            Err(e) => Err(ClientError::Io(e)),
        }
    }
}

/// A pooled, retrying client for one daemon address. Not `Sync`: clone
/// the config and build one client per thread (each keeps its own pool).
pub struct Client {
    config: ClientConfig,
    backoff: Backoff,
    idle: Vec<Conn>,
}

impl Client {
    pub fn new(config: ClientConfig) -> Client {
        let backoff = Backoff::new(config.backoff_base, config.backoff_cap, config.seed);
        Client {
            config,
            backoff,
            idle: Vec::new(),
        }
    }

    /// Connect with default settings to `addr`.
    pub fn connect(addr: impl Into<String>) -> Client {
        Client::new(ClientConfig {
            addr: addr.into(),
            ..ClientConfig::default()
        })
    }

    fn checkout(&mut self) -> std::io::Result<Conn> {
        match self.idle.pop() {
            Some(conn) => Ok(conn),
            None => Conn::open(&self.config),
        }
    }

    fn checkin(&mut self, conn: Conn) {
        if self.idle.len() < self.config.pool_size.max(1) {
            self.idle.push(conn);
        }
    }

    /// One attempt, no retries. Transport errors drop the connection.
    pub fn call_once(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut conn = self.checkout()?;
        match conn.roundtrip(request) {
            Ok(response) => {
                self.checkin(conn);
                Ok(response)
            }
            Err(e) => Err(e), // conn dropped
        }
    }

    /// Call with retries appropriate to the request's [`retry_class`]:
    ///
    /// * `overloaded` responses are retried for *any* request (the
    ///   daemon rejected it before execution), sleeping at least the
    ///   server's `retry_after_ms`.
    /// * Transport failures are retried only for idempotent requests.
    ///   For mutating requests the error surfaces immediately — use
    ///   [`Client::call_mutating`] to resume safely.
    /// * A refused connection ([`is_fast_fail`]) surfaces immediately
    ///   for every request class: the endpoint is down now, and burning
    ///   the whole backoff budget against it only delays whoever (an
    ///   [`EndpointPool`], a router) could try elsewhere.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let idempotent = retry_class(request) == RetryClass::Idempotent;
        self.backoff.reset();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let failure = match self.call_once(request) {
                Ok(Response::Overloaded {
                    message,
                    retry_after_ms,
                    ..
                }) => {
                    if attempts > self.config.max_retries {
                        return Err(ClientError::Overloaded {
                            attempts,
                            message,
                            retry_after_ms,
                        });
                    }
                    let hint = Some(Duration::from_millis(retry_after_ms));
                    std::thread::sleep(self.backoff.next_delay(hint));
                    continue;
                }
                Ok(response) => return Ok(response),
                Err(e) => e,
            };
            if is_fast_fail(&failure) || !idempotent || attempts > self.config.max_retries {
                return if attempts > 1 {
                    Err(ClientError::RetriesExhausted {
                        attempts,
                        last: Box::new(failure),
                    })
                } else {
                    Err(failure)
                };
            }
            std::thread::sleep(self.backoff.next_delay(None));
        }
    }

    /// The session's occupancy-grid digest, via `dump_session` (retried
    /// freely — it is a pure read).
    pub fn session_digest(&mut self, session: u64) -> Result<String, ClientError> {
        match self.call(&Request::DumpSession {
            id: u64::MAX,
            session,
        })? {
            Response::SessionState { grid_digest, .. } => Ok(grid_digest),
            Response::Error { message, .. } => Err(ClientError::Protocol(format!(
                "dump_session failed: {message}"
            ))),
            other => Err(ClientError::Protocol(format!(
                "unexpected dump_session reply: {other:?}"
            ))),
        }
    }

    /// Safely execute a state-mutating session operation with resume.
    ///
    /// Snapshot the session digest, attempt the call; on an ambiguous
    /// transport failure, re-dump the digest: unchanged means the
    /// operation did not apply — resend; changed means it applied with
    /// the response lost — return [`MutationOutcome::AppliedNoResponse`]
    /// instead of double-applying. `overloaded` rejections are retried
    /// like any other (pre-execution, always safe).
    ///
    /// Only sound when this client is the session's sole writer —
    /// exactly the deployment the digest-compare is designed for; with
    /// concurrent writers a changed digest is still reported as applied,
    /// which is the conservative answer.
    pub fn call_mutating(
        &mut self,
        session: u64,
        request: &Request,
    ) -> Result<MutationOutcome, ClientError> {
        debug_assert_eq!(retry_class(request), RetryClass::Mutating);
        self.backoff.reset();
        let mut attempts = 0u32;
        let mut before = self.session_digest(session)?;
        loop {
            attempts += 1;
            let failure = match self.call_once(request) {
                Ok(Response::Overloaded {
                    message,
                    retry_after_ms,
                    ..
                }) => {
                    if attempts > self.config.max_retries {
                        return Err(ClientError::Overloaded {
                            attempts,
                            message,
                            retry_after_ms,
                        });
                    }
                    std::thread::sleep(
                        self.backoff
                            .next_delay(Some(Duration::from_millis(retry_after_ms))),
                    );
                    continue;
                }
                Ok(response) => return Ok(MutationOutcome::Responded(Box::new(response))),
                Err(e) => e,
            };
            // A refused connect never sent the request — nothing
            // ambiguous happened, the endpoint is just down: fail fast
            // (no digest check, no backoff) so the caller can move on.
            if is_fast_fail(&failure) {
                return Err(failure);
            }
            // Ambiguous: the request may or may not have executed.
            let after = self.session_digest(session)?;
            if after != before {
                return Ok(MutationOutcome::AppliedNoResponse {
                    before_digest: before,
                    after_digest: after,
                });
            }
            if attempts > self.config.max_retries {
                return Err(ClientError::RetriesExhausted {
                    attempts,
                    last: Box::new(failure),
                });
            }
            before = after;
            std::thread::sleep(self.backoff.next_delay(None));
        }
    }
}

/// A multi-endpoint pool: one [`Client`] per endpoint, with a sticky
/// preference. Calls go to the preferred endpoint; a fast-fail
/// ([`is_fast_fail`] — the endpoint refused the connection, so it is
/// down *now* and the request was never sent) rotates to the next
/// endpoint immediately instead of burning the per-endpoint retry
/// budget, and whichever endpoint answers becomes preferred. Any other
/// failure surfaces unchanged: a slow or ambiguous endpoint is not
/// grounds to silently switch targets mid-conversation.
pub struct EndpointPool {
    clients: Vec<Client>,
    preferred: usize,
}

impl EndpointPool {
    /// One pooled client per endpoint, sharing `config`'s tuning
    /// (`config.addr` is ignored — the endpoints replace it).
    pub fn new(endpoints: &[String], config: &ClientConfig) -> EndpointPool {
        assert!(
            !endpoints.is_empty(),
            "endpoint pool needs at least one endpoint"
        );
        let clients = endpoints
            .iter()
            .map(|addr| {
                Client::new(ClientConfig {
                    addr: addr.clone(),
                    ..config.clone()
                })
            })
            .collect();
        EndpointPool {
            clients,
            preferred: 0,
        }
    }

    /// The endpoint the next call will try first.
    pub fn preferred_addr(&self) -> &str {
        &self.clients[self.preferred].config.addr
    }

    /// [`Client::call`] against the preferred endpoint, rotating through
    /// the others on fast-fail. Fails only when every endpoint refused
    /// (returning the last refusal) or one failed non-fast.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let n = self.clients.len();
        let mut last = None;
        for step in 0..n {
            let idx = (self.preferred + step) % n;
            match self.clients[idx].call(request) {
                Ok(response) => {
                    self.preferred = idx;
                    return Ok(response);
                }
                Err(e) if is_fast_fail(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("pool has at least one endpoint"))
    }

    /// [`Client::call_mutating`] against the preferred endpoint,
    /// rotating on fast-fail — safe even for mutating requests, because
    /// a refused connect proves the request was never sent.
    pub fn call_mutating(
        &mut self,
        session: u64,
        request: &Request,
    ) -> Result<MutationOutcome, ClientError> {
        let n = self.clients.len();
        let mut last = None;
        for step in 0..n {
            let idx = (self.preferred + step) % n;
            match self.clients[idx].call_mutating(session, request) {
                Ok(outcome) => {
                    self.preferred = idx;
                    return Ok(outcome);
                }
                Err(e) if is_fast_fail(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("pool has at least one endpoint"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_protocol_contract() {
        use rrf_server::Request as R;
        assert_eq!(retry_class(&R::Ping { id: 1 }), RetryClass::Idempotent);
        assert_eq!(retry_class(&R::Stats { id: 1 }), RetryClass::Idempotent);
        assert_eq!(
            retry_class(&R::DumpSession { id: 1, session: 1 }),
            RetryClass::Idempotent
        );
        assert_eq!(
            retry_class(&R::ScheduleStatus {
                id: 1,
                session: 1,
                advance_to: None
            }),
            RetryClass::Idempotent,
            "pure schedule reads are safe"
        );
        assert_eq!(
            retry_class(&R::ScheduleStatus {
                id: 1,
                session: 1,
                advance_to: Some(10)
            }),
            RetryClass::Mutating,
            "clock advances are journaled state changes"
        );
        assert_eq!(
            retry_class(&R::Defrag { id: 1, session: 1 }),
            RetryClass::Mutating
        );
        assert_eq!(
            retry_class(&R::CancelTask {
                id: 1,
                session: 1,
                task: 2
            }),
            RetryClass::Mutating
        );
    }

    #[test]
    fn backoff_honors_hint_floor_and_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(500);
        let mut b = Backoff::new(base, cap, 42);
        // Without a hint: first draw is within [base, 3*base].
        let first = b.next_delay(None);
        assert!(first >= base && first <= base * 3, "{first:?}");
        // A server hint raises the floor above the natural draw.
        let hint = Duration::from_millis(200);
        let hinted = b.next_delay(Some(hint));
        assert!(hinted >= hint, "{hinted:?} must respect the hint");
        assert!(hinted <= cap);
        // Growth never escapes the cap.
        for _ in 0..20 {
            assert!(b.next_delay(None) <= cap);
        }
        // A hint beyond the cap clamps to the cap rather than panicking.
        let wild = b.next_delay(Some(Duration::from_secs(60)));
        assert_eq!(wild, cap);
    }

    #[test]
    fn backoff_is_deterministic_under_a_fixed_seed() {
        let mk = || Backoff::new(Duration::from_millis(5), Duration::from_secs(1), 7);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..50 {
            assert_eq!(a.next_delay(None), b.next_delay(None));
        }
    }

    /// An address nothing listens on (bound, resolved, released) — a
    /// connect to it is refused immediately by the OS.
    fn dead_addr() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    }

    /// A one-shot stub daemon: accepts connections and answers every
    /// request line with `pong` (echoing nothing else), until dropped.
    fn stub_pong_server() -> (String, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut line = String::new();
                while {
                    line.clear();
                    reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false)
                } {
                    let id = serde_json::from_str::<Request>(line.trim())
                        .map(|r| r.id())
                        .unwrap_or(0);
                    let reply = serde_json::to_string(&Response::Pong { id }).unwrap();
                    if writer.write_all(format!("{reply}\n").as_bytes()).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn connection_refused_fails_fast_without_burning_retries() {
        let mut client = Client::new(ClientConfig {
            addr: dead_addr(),
            max_retries: 6,
            backoff_base: Duration::from_millis(500),
            backoff_cap: Duration::from_secs(5),
            ..ClientConfig::default()
        });
        let started = std::time::Instant::now();
        let err = client.call(&Request::Ping { id: 1 }).unwrap_err();
        assert!(is_fast_fail(&err), "want fast-fail, got {err}");
        // Six retries at a 500ms backoff floor would take seconds; a
        // refused connect must surface in well under one backoff sleep.
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "refused connect burned the retry budget: {:?}",
            started.elapsed()
        );
        // Mutating path: refused connect is not ambiguous either.
        let err = client
            .call_mutating(1, &Request::Defrag { id: 2, session: 1 })
            .unwrap_err();
        assert!(is_fast_fail(&err), "want fast-fail, got {err}");
    }

    #[test]
    fn endpoint_pool_rotates_on_refused_and_sticks_to_the_survivor() {
        let (live, _server) = stub_pong_server();
        let endpoints = vec![dead_addr(), live.clone()];
        let mut pool = EndpointPool::new(
            &endpoints,
            &ClientConfig {
                max_retries: 2,
                backoff_base: Duration::from_millis(1),
                ..ClientConfig::default()
            },
        );
        assert_eq!(pool.preferred_addr(), endpoints[0]);
        match pool.call(&Request::Ping { id: 7 }).unwrap() {
            Response::Pong { id } => assert_eq!(id, 7),
            other => panic!("unexpected reply: {other:?}"),
        }
        // The endpoint that answered is now preferred.
        assert_eq!(pool.preferred_addr(), live);

        // All endpoints dead: the pool reports the (fast) refusal.
        let mut dead_pool =
            EndpointPool::new(&[dead_addr(), dead_addr()], &ClientConfig::default());
        let err = dead_pool.call(&Request::Ping { id: 1 }).unwrap_err();
        assert!(is_fast_fail(&err), "want fast-fail, got {err}");
    }
}
