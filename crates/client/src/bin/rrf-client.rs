//! `rrf-client` — send NDJSON requests to an rrf-serve daemon with
//! pooling, timeouts, and jittered retries that honor the server's
//! `retry_after_ms` backpressure hints.
//!
//! ```text
//! rrf-client [--addr HOST:PORT] [--timeout-ms MS] [--retries N]
//!            [--backoff-base-ms MS] [--backoff-cap-ms MS] [--seed N]
//!            [--ping]
//! ```
//!
//! Requests are read one per line from stdin (the same NDJSON the daemon
//! speaks; see `rrf_server::protocol`), responses are written one per
//! line to stdout in request order. `--ping` skips stdin and performs a
//! single liveness roundtrip. Idempotent requests (`place`, `analyze`,
//! reads) are retried across transport failures; state-mutating session
//! operations are not blindly resent — a transport failure on those
//! surfaces as an error on stderr (use the library's `call_mutating` for
//! digest-compare resume).

#![forbid(unsafe_code)]

use std::io::BufRead;
use std::time::Duration;

use rrf_client::{Client, ClientConfig};
use rrf_server::Request;

const USAGE: &str = "usage: rrf-client [--addr HOST:PORT] [--timeout-ms MS] [--retries N] \
                     [--backoff-base-ms MS] [--backoff-cap-ms MS] [--seed N] [--ping] \
                     [--help] [--version]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut config = ClientConfig::default();
    let mut ping_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--version" | "-V" => {
                println!("rrf-client {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--addr" => config.addr = value(),
            "--timeout-ms" => {
                config.request_timeout =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()))
            }
            "--retries" => config.max_retries = value().parse().unwrap_or_else(|_| usage()),
            "--backoff-base-ms" => {
                config.backoff_base =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()))
            }
            "--backoff-cap-ms" => {
                config.backoff_cap =
                    Duration::from_millis(value().parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => config.seed = value().parse().unwrap_or_else(|_| usage()),
            "--ping" => ping_only = true,
            _ => usage(),
        }
    }

    let mut client = Client::new(config);
    if ping_only {
        match client.call(&Request::Ping { id: 1 }) {
            Ok(response) => {
                println!("{}", serde_json::to_string(&response).unwrap());
            }
            Err(e) => {
                eprintln!("rrf-client: ping failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let stdin = std::io::stdin();
    let mut failures = 0u64;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("rrf-client: stdin error: {e}");
                std::process::exit(1);
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request: Request = match serde_json::from_str(trimmed) {
            Ok(request) => request,
            Err(e) => {
                eprintln!("rrf-client: unparseable request: {e}");
                failures += 1;
                continue;
            }
        };
        match client.call(&request) {
            Ok(response) => println!("{}", serde_json::to_string(&response).unwrap()),
            Err(e) => {
                eprintln!("rrf-client: request {} failed: {e}", request.id());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
