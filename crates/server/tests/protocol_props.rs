//! Property tests: every protocol type survives a JSON round trip.
//!
//! `Request` and its payloads have `PartialEq`, so those compare
//! structurally; `Response` embeds solver statistics and float metrics
//! without `PartialEq`, so those compare at the JSON level —
//! `to_string(parse(to_string(x))) == to_string(x)`, which also pins the
//! wire format itself as the equivalence.

use proptest::prelude::*;
use rrf_core::{Floorplan, PlacedModule, PlacementMetrics, SolveStats};
use rrf_fabric::{Rect, ResourceKind};
use rrf_flow::{
    DeviceSpec, FlowReport, FlowSpec, ModuleEntry, PlacedModuleReport, PlacerSettings, RegionSpec,
};
use rrf_geost::{ShapeDef, ShiftedBox};
use rrf_server::{PlaceMethod, Request, Response, ServerStats};
use serde::{Deserialize, Serialize};
use std::time::Duration;

fn json_roundtrip<T: Serialize + Deserialize>(value: &T) -> Result<String, TestCaseError> {
    let json =
        serde_json::to_string(value).map_err(|e| TestCaseError::Fail(format!("serialize: {e}")))?;
    let back: T = serde_json::from_str(&json)
        .map_err(|e| TestCaseError::Fail(format!("parse back {json}: {e}")))?;
    let json2 = serde_json::to_string(&back)
        .map_err(|e| TestCaseError::Fail(format!("re-serialize: {e}")))?;
    prop_assert_eq!(&json, &json2);
    Ok(json)
}

fn name_strat() -> BoxedStrategy<String> {
    proptest::collection::vec(0u8..26, 1..8)
        .prop_map(|letters| letters.into_iter().map(|c| (b'a' + c) as char).collect())
        .boxed()
}

fn kind_strat() -> BoxedStrategy<ResourceKind> {
    prop_oneof![
        Just(ResourceKind::Clb),
        Just(ResourceKind::Bram),
        Just(ResourceKind::Dsp),
    ]
    .boxed()
}

fn shape_strat() -> BoxedStrategy<ShapeDef> {
    // Boxes are spread along x so they never overlap (ShapeDef::new
    // rejects internal overlap).
    proptest::collection::vec((1i32..5, 1i32..5, kind_strat()), 1..3)
        .prop_map(|boxes| {
            ShapeDef::new(
                boxes
                    .into_iter()
                    .enumerate()
                    .map(|(i, (w, h, kind))| ShiftedBox::new(i as i32 * 8, 0, w, h, kind))
                    .collect(),
            )
        })
        .boxed()
}

fn rect_strat() -> BoxedStrategy<Rect> {
    (0i32..10, 0i32..10, 0i32..6, 0i32..6)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
        .boxed()
}

fn device_strat() -> BoxedStrategy<DeviceSpec> {
    prop_oneof![
        (1i32..40, 1i32..12).prop_map(|(width, height)| DeviceSpec::Homogeneous { width, height }),
        (4i32..40, 2i32..10, 2i32..8, 0i32..4).prop_map(
            |(width, height, bram_period, bram_offset)| DeviceSpec::Columns {
                width,
                height,
                bram_period,
                bram_offset,
                dsp_period: 0,
                dsp_offset: 0,
                io_ring: 0,
                center_clock: false,
            }
        ),
        (1i32..20, 1i32..8, 0u64..1000).prop_map(|(width, height, seed)| {
            DeviceSpec::Irregular {
                width,
                height,
                seed,
            }
        }),
        name_strat().prop_map(|art| DeviceSpec::Art { art }),
    ]
    .boxed()
}

fn region_strat() -> BoxedStrategy<RegionSpec> {
    (
        device_strat(),
        prop_oneof![Just(None), rect_strat().prop_map(Some)],
        proptest::collection::vec(rect_strat(), 0..3),
    )
        .prop_map(|(device, bounds, static_masks)| RegionSpec {
            device,
            bounds,
            static_masks,
        })
        .boxed()
}

fn module_entry_strat() -> BoxedStrategy<ModuleEntry> {
    (name_strat(), proptest::collection::vec(shape_strat(), 1..4))
        .prop_map(|(name, shapes)| ModuleEntry {
            name,
            shapes,
            netlist: None,
        })
        .boxed()
}

fn settings_strat() -> BoxedStrategy<PlacerSettings> {
    (
        prop_oneof![Just(None), (1u64..100_000).prop_map(Some)],
        prop_oneof![Just(false), Just(true)],
        prop_oneof![Just(false), Just(true)],
        0usize..5,
        prop_oneof![Just(false), Just(true)],
    )
        .prop_map(
            |(time_limit_ms, warm_start, redundant_cumulative, workers, analyze_prune)| {
                PlacerSettings {
                    time_limit_ms,
                    warm_start,
                    redundant_cumulative,
                    workers,
                    analyze_prune,
                }
            },
        )
        .boxed()
}

fn spec_strat() -> BoxedStrategy<FlowSpec> {
    (
        region_strat(),
        proptest::collection::vec(module_entry_strat(), 0..4),
        settings_strat(),
    )
        .prop_map(|(region, modules, placer)| FlowSpec {
            region,
            modules,
            placer,
        })
        .boxed()
}

fn request_strat() -> BoxedStrategy<Request> {
    let id = || 0u64..1000;
    prop_oneof![
        (
            id(),
            spec_strat(),
            prop_oneof![Just(None), (0u64..60_000).prop_map(Some)]
        )
            .prop_map(|(id, spec, deadline_ms)| Request::Place {
                id,
                spec,
                deadline_ms
            }),
        (id(), spec_strat()).prop_map(|(id, spec)| Request::Analyze { id, spec }),
        (id(), region_strat()).prop_map(|(id, region)| Request::OpenSession { id, region }),
        (id(), id(), module_entry_strat()).prop_map(|(id, session, module)| Request::Insert {
            id,
            session,
            module
        }),
        (id(), id(), id()).prop_map(|(id, session, slot)| Request::Remove { id, session, slot }),
        (id(), id()).prop_map(|(id, session)| Request::Defrag { id, session }),
        (id(), id()).prop_map(|(id, session)| Request::CloseSession { id, session }),
        id().prop_map(|id| Request::Stats { id }),
        id().prop_map(|id| Request::Ping { id }),
    ]
    .boxed()
}

fn duration_strat() -> BoxedStrategy<Duration> {
    (0u64..120, 0u32..1_000_000_000)
        .prop_map(|(secs, nanos)| Duration::new(secs, nanos))
        .boxed()
}

fn solve_stats_strat() -> BoxedStrategy<SolveStats> {
    (
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..100),
        0usize..10_000,
        0usize..100,
        duration_strat(),
        duration_strat(),
    )
        .prop_map(
            |(
                (nodes, failures, propagations, solutions),
                table_rows,
                shapes_pruned,
                duration,
                time_to_best,
            )| {
                SolveStats {
                    nodes,
                    failures,
                    propagations,
                    solutions,
                    table_rows,
                    shapes_pruned,
                    duration,
                    time_to_best,
                }
            },
        )
        .boxed()
}

fn metrics_strat() -> BoxedStrategy<PlacementMetrics> {
    (
        (0i64..1000, 0i64..1000, 0i32..100),
        0.0..1.0f64,
        (0i64..1000, 0i64..100),
    )
        .prop_map(
            |((occupied_tiles, window_placeable_tiles, extent_cols), utilization, (clb, bram))| {
                PlacementMetrics {
                    occupied_tiles,
                    window_placeable_tiles,
                    extent_cols,
                    utilization,
                    fragmentation: 1.0 - utilization,
                    clb_tiles: clb,
                    bram_tiles: bram,
                }
            },
        )
        .boxed()
}

fn placed_report_strat() -> BoxedStrategy<PlacedModuleReport> {
    (name_strat(), 0usize..4, 0i32..40, 0i32..16)
        .prop_map(|(name, shape, x, y)| PlacedModuleReport { name, shape, x, y })
        .boxed()
}

fn floorplan_strat() -> BoxedStrategy<Floorplan> {
    proptest::collection::vec((0usize..8, 0usize..4, 0i32..40, 0i32..16), 0..6)
        .prop_map(|placements| {
            Floorplan::new(
                placements
                    .into_iter()
                    .map(|(module, shape, x, y)| PlacedModule {
                        module,
                        shape,
                        x,
                        y,
                    })
                    .collect(),
            )
        })
        .boxed()
}

fn report_strat() -> BoxedStrategy<FlowReport> {
    (
        (
            prop_oneof![Just(false), Just(true)],
            prop_oneof![Just(false), Just(true)],
            prop_oneof![Just(None), (0i64..1000).prop_map(Some)],
        ),
        proptest::collection::vec(placed_report_strat(), 0..4),
        prop_oneof![Just(None), metrics_strat().prop_map(Some)],
        solve_stats_strat(),
        prop_oneof![Just(None), floorplan_strat().prop_map(Some)],
    )
        .prop_map(
            |((feasible, proven, extent), placements, metrics, stats, floorplan)| FlowReport {
                feasible,
                proven,
                extent,
                placements,
                metrics,
                stats,
                floorplan,
            },
        )
        .boxed()
}

fn method_strat() -> BoxedStrategy<PlaceMethod> {
    prop_oneof![
        Just(PlaceMethod::Optimal),
        Just(PlaceMethod::CpIncumbent),
        Just(PlaceMethod::Lns),
        Just(PlaceMethod::BottomLeft),
        Just(PlaceMethod::Infeasible),
    ]
    .boxed()
}

fn server_stats_strat() -> BoxedStrategy<ServerStats> {
    (
        (0u64..100, 0u64..100, 0u64..100, 0u64..100),
        (0u64..100, 0u64..100, 0u64..100, 0u64..100),
        proptest::collection::vec(0u64..50, 9..10),
    )
        .prop_map(
            |(
                (requests, place_requests, cache_hits, cache_misses),
                (placed_optimal, placed_lns, rejected_backpressure, online_inserts),
                solve_ms_histogram,
            )| {
                ServerStats {
                    requests,
                    place_requests,
                    cache_hits,
                    cache_misses,
                    placed_optimal,
                    placed_lns,
                    rejected_backpressure,
                    online_inserts,
                    solve_ms_histogram,
                    ..ServerStats::default()
                }
            },
        )
        .boxed()
}

fn response_strat() -> BoxedStrategy<Response> {
    let id = || 0u64..1000;
    let util = || 0.0..1.0f64;
    prop_oneof![
        (
            id(),
            method_strat(),
            prop_oneof![Just(false), Just(true)],
            report_strat(),
            0u64..10_000
        )
            .prop_map(|(id, method, cache_hit, report, elapsed_ms)| {
                Response::Placed {
                    id,
                    method,
                    cache_hit,
                    report,
                    elapsed_ms,
                }
            }),
        (id(), id()).prop_map(|(id, session)| Response::SessionOpened { id, session }),
        (
            id(),
            id(),
            prop_oneof![Just(None), id().prop_map(Some)],
            prop_oneof![Just(None), placed_report_strat().prop_map(Some)],
            util()
        )
            .prop_map(|(id, session, slot, placement, utilization)| {
                Response::Inserted {
                    id,
                    session,
                    slot,
                    placement,
                    utilization,
                }
            }),
        (id(), id(), prop_oneof![Just(false), Just(true)], util()).prop_map(
            |(id, session, removed, utilization)| Response::Removed {
                id,
                session,
                removed,
                utilization
            }
        ),
        (id(), id(), 0u64..20, util()).prop_map(|(id, session, moved, utilization)| {
            Response::Defragged {
                id,
                session,
                moved,
                utilization,
            }
        }),
        (id(), id(), prop_oneof![Just(false), Just(true)]).prop_map(|(id, session, closed)| {
            Response::SessionClosed {
                id,
                session,
                closed,
            }
        }),
        (id(), server_stats_strat()).prop_map(|(id, stats)| Response::Stats { id, stats }),
        id().prop_map(|id| Response::Pong { id }),
        (id(), name_strat()).prop_map(|(id, message)| Response::Error { id, message }),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn request_roundtrips(request in request_strat()) {
        let json = json_roundtrip(&request)?;
        let back: Request = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::Fail(format!("parse: {e}")))?;
        prop_assert_eq!(back, request);
    }

    #[test]
    fn response_roundtrips(response in response_strat()) {
        json_roundtrip(&response)?;
    }

    #[test]
    fn spec_roundtrips_structurally(spec in spec_strat()) {
        let json = json_roundtrip(&spec)?;
        let back: FlowSpec = serde_json::from_str(&json)
            .map_err(|e| TestCaseError::Fail(format!("parse: {e}")))?;
        prop_assert_eq!(back, spec);
    }

    #[test]
    fn canonical_cache_key_is_order_invariant(
        spec in spec_strat(),
        seed in 0u64..1000,
    ) {
        // Shuffle modules and each module's shape list with a cheap LCG;
        // the canonical cache key must not move.
        let mut shuffled = spec.clone();
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move |n: usize| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 33) as usize % n.max(1)
        };
        for entry in &mut shuffled.modules {
            for i in (1..entry.shapes.len()).rev() {
                entry.shapes.swap(i, next(i + 1));
            }
        }
        for i in (1..shuffled.modules.len()).rev() {
            shuffled.modules.swap(i, next(i + 1));
        }
        let key_a = rrf_server::cache::cache_key(&rrf_server::cache::canonicalize(&spec).0);
        let key_b = rrf_server::cache::cache_key(&rrf_server::cache::canonicalize(&shuffled).0);
        prop_assert_eq!(key_a, key_b);
    }
}
