//! Cache persistence end-to-end: graceful shutdown writes the snapshot,
//! restart warm-loads it (across different shard counts — the file is
//! shard-count invariant), the real binary does the same under SIGTERM,
//! and a mangled snapshot costs the tail, never the daemon — proven for
//! every byte-offset truncation and for arbitrary byte flips.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rrf_fabric::ResourceKind;
use rrf_flow::{DeviceSpec, FlowReport, FlowSpec, ModuleEntry, PlacerSettings, RegionSpec};
use rrf_geost::{ShapeDef, ShiftedBox};
use rrf_server::cache::{persist, CacheEntry};
use rrf_server::{start, PlaceMethod, Request, Response, ServerConfig};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Response {
        let mut line = serde_json::to_string(request).unwrap();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read response");
        serde_json::from_str(reply.trim()).expect("parse response")
    }
}

fn clb_shape(w: i32, h: i32) -> ShapeDef {
    ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
}

/// One distinct, quickly provable spec per `salt`.
fn small_spec(salt: usize) -> FlowSpec {
    FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 10,
                height: 4,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules: vec![
            ModuleEntry {
                name: format!("alu{salt}"),
                shapes: vec![clb_shape(4, 2), clb_shape(2, 4)],
                netlist: None,
            },
            ModuleEntry {
                name: "ctl".into(),
                shapes: vec![clb_shape(2 + salt as i32 % 2, 2)],
                netlist: None,
            },
        ],
        placer: PlacerSettings::default(),
    }
}

fn place(client: &mut Client, id: u64, spec: &FlowSpec) -> bool {
    match client.roundtrip(&Request::Place {
        id,
        spec: spec.clone(),
        deadline_ms: None,
    }) {
        Response::Placed {
            cache_hit, report, ..
        } => {
            assert!(report.feasible);
            cache_hit
        }
        other => panic!("expected placed, got {other:?}"),
    }
}

fn stats(client: &mut Client, id: u64) -> rrf_server::ServerStats {
    match client.roundtrip(&Request::Stats { id }) {
        Response::Stats { stats, .. } => stats,
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn graceful_shutdown_snapshot_warm_loads_across_shard_counts() {
    let path =
        std::env::temp_dir().join(format!("rrf_cache_persist_{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let specs: Vec<FlowSpec> = (0..3).map(small_spec).collect();

    // Life 1 (8 shards): three solves, then a graceful shutdown.
    let handle = start(ServerConfig {
        cache_shards: 8,
        cache_persist_path: Some(path.to_str().unwrap().to_string()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr());
    for (i, spec) in specs.iter().enumerate() {
        assert!(!place(&mut client, i as u64, spec));
    }
    handle.shutdown();
    let first_bytes = std::fs::read(&path).expect("snapshot written on graceful shutdown");
    assert_eq!(first_bytes.iter().filter(|&&b| b == b'\n').count(), 4);

    // Life 2 (1 shard, same file): every spec is a warm hit, no solve.
    let handle = start(ServerConfig {
        cache_shards: 1,
        cache_persist_path: Some(path.to_str().unwrap().to_string()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr());
    for (i, spec) in specs.iter().enumerate() {
        assert!(place(&mut client, 10 + i as u64, spec), "warm hit expected");
    }
    let s = stats(&mut client, 20);
    assert_eq!(s.cache_persist_loaded, 3);
    assert_eq!(s.cache_load_errors, 0);
    assert_eq!(s.cache_hits, 3);
    assert_eq!(s.cache_misses, 0);
    handle.shutdown();
    // Same entries, different shard count: byte-identical snapshot.
    assert_eq!(
        std::fs::read(&path).unwrap(),
        first_bytes,
        "snapshot bytes must not depend on the shard count"
    );

    // Life 3: a torn tail costs the last record, never the start — the
    // daemon comes up with the sound prefix and counts the defect.
    std::fs::write(&path, &first_bytes[..first_bytes.len() - 5]).unwrap();
    let handle = start(ServerConfig {
        cache_persist_path: Some(path.to_str().unwrap().to_string()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr());
    let s = stats(&mut client, 30);
    assert_eq!(s.cache_persist_loaded, 2);
    assert_eq!(s.cache_load_errors, 1);
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}

fn spawn_daemon(persist_path: &std::path::Path) -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rrf-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--cache-shards",
            "4",
            "--cache-persist",
            persist_path.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rrf-serve");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read startup line");
    let addr = line
        .trim()
        .strip_prefix("rrf-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .parse()
        .expect("parse bound address");
    (child, addr)
}

fn wait_for_exit(child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        assert!(Instant::now() < deadline, "daemon did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_writes_snapshot_and_restart_serves_warm_hits() {
    let path =
        std::env::temp_dir().join(format!("rrf_cache_sigterm_{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let spec = small_spec(7);

    let (mut child, addr) = spawn_daemon(&path);
    let mut client = Client::connect(addr);
    assert!(!place(&mut client, 1, &spec));
    drop(client);
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    wait_for_exit(&mut child);
    assert!(path.exists(), "SIGTERM must write the snapshot");

    let (mut child, addr) = spawn_daemon(&path);
    let mut client = Client::connect(addr);
    assert!(
        place(&mut client, 2, &spec),
        "restart must serve a warm hit"
    );
    let s = stats(&mut client, 3);
    assert_eq!(s.cache_persist_loaded, 1);
    assert_eq!(s.cache_load_errors, 0);
    child.kill().expect("kill daemon");
    wait_for_exit(&mut child);
    let _ = std::fs::remove_file(&path);
}

/// A fixed synthetic snapshot, built once: four entries with distinct
/// keys and budgets.
fn snapshot_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        let entries: Vec<(String, CacheEntry)> = (0..4)
            .map(|i| {
                (
                    format!("key-{i:02}"),
                    CacheEntry {
                        method: PlaceMethod::Infeasible,
                        report: FlowReport {
                            feasible: false,
                            proven: false,
                            extent: None,
                            placements: vec![],
                            metrics: None,
                            stats: rrf_core::SolveStats::default(),
                            floorplan: None,
                        },
                        budget: Duration::from_millis(10 * (i + 1)),
                    },
                )
            })
            .collect();
        let path = std::env::temp_dir().join(format!("rrf_cache_trunc_{}", std::process::id()));
        persist::save(&path, &entries).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        bytes
    })
}

/// Exhaustive torn-tail sweep over the snapshot: every truncation loads
/// without a panic, recovers exactly the records whose lines survived in
/// full, and counts exactly one defect — except the two clean cases
/// (empty file = cold start, full file = pristine).
#[test]
fn every_byte_truncation_loads_a_sound_prefix() {
    let bytes = snapshot_bytes();
    let scratch = std::env::temp_dir().join(format!(
        "rrf_cache_trunc_sweep_{}.ndjson",
        std::process::id()
    ));
    let full = {
        std::fs::write(&scratch, bytes).unwrap();
        persist::load(&scratch).unwrap()
    };
    assert_eq!(full.errors, 0);
    assert_eq!(full.entries.len(), 4);

    // Byte offsets one past each newline: line k is intact iff
    // cut >= line_ends[k].
    let line_ends: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();

    for cut in 0..=bytes.len() {
        std::fs::write(&scratch, &bytes[..cut]).unwrap();
        let loaded = persist::load(&scratch).unwrap();
        // Entry lines follow the header (line 0): intact record lines
        // are those whose terminating newline fits in the cut.
        let expected = line_ends.iter().skip(1).filter(|&&end| end <= cut).count();
        assert_eq!(
            loaded.entries.len(),
            expected,
            "cut {cut}: wrong number of recovered entries"
        );
        for (got, want) in loaded.entries.iter().zip(&full.entries) {
            assert_eq!(got.0, want.0, "cut {cut}: keys diverge");
            assert_eq!(got.1.budget, want.1.budget, "cut {cut}: budgets diverge");
        }
        let clean = cut == 0 || cut == bytes.len();
        assert_eq!(
            loaded.errors,
            u64::from(!clean),
            "cut {cut}: wrong defect count"
        );
    }
    let _ = std::fs::remove_file(&scratch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary single-byte corruption anywhere in the snapshot: load
    /// never panics or errors out, and whatever it recovers is a prefix
    /// of the pristine entries (damage costs the tail, nothing else).
    #[test]
    fn byte_flips_never_panic_the_loader(offset_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let bytes = snapshot_bytes();
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        let mut damaged = bytes.to_vec();
        damaged[offset] ^= flip;

        let scratch = std::env::temp_dir().join(format!(
            "rrf_cache_flip_{}_{offset}.ndjson",
            std::process::id()
        ));
        std::fs::write(&scratch, &damaged).unwrap();
        let loaded = persist::load(&scratch).expect("load never errors on an existing file");
        let _ = std::fs::remove_file(&scratch);

        std::fs::write(&scratch, bytes).unwrap();
        let full = persist::load(&scratch).unwrap();
        let _ = std::fs::remove_file(&scratch);

        // Lines wholly before the damaged byte survive verbatim; the
        // first line is the header, so record k needs line k+1 intact.
        let intact_lines = bytes[..offset].iter().filter(|&&b| b == b'\n').count();
        let intact_records = intact_lines.saturating_sub(1);
        prop_assert!(loaded.entries.len() >= intact_records.min(full.entries.len()));
        for (got, want) in loaded.entries.iter().take(intact_records).zip(&full.entries) {
            prop_assert_eq!(&got.0, &want.0);
            prop_assert_eq!(got.1.budget, want.1.budget);
        }
    }
}
