//! Fault-tolerance end-to-end tests over a real TCP socket: fabric fault
//! injection and repair, worker panic isolation, and journal-backed
//! session recovery across a graceful restart.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use rrf_fabric::{Fault, ResourceKind};
use rrf_flow::{DeviceSpec, ModuleEntry, RegionSpec};
use rrf_geost::{ShapeDef, ShiftedBox};
use rrf_server::{start, Request, Response, ServerConfig, SlotState};

/// A blocking NDJSON client over one TCP connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Response {
        let mut line = serde_json::to_string(request).unwrap();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read response");
        serde_json::from_str(reply.trim()).expect("parse response")
    }
}

fn clb_shape(w: i32, h: i32) -> ShapeDef {
    ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
}

fn entry(name: &str, shapes: Vec<ShapeDef>) -> ModuleEntry {
    ModuleEntry {
        name: name.into(),
        shapes,
        netlist: None,
    }
}

fn region_8x2() -> RegionSpec {
    RegionSpec {
        device: DeviceSpec::Homogeneous {
            width: 8,
            height: 2,
        },
        bounds: None,
        static_masks: vec![],
    }
}

fn open_session(client: &mut Client, id: u64) -> u64 {
    match client.roundtrip(&Request::OpenSession {
        id,
        region: region_8x2(),
    }) {
        Response::SessionOpened { session, .. } => session,
        other => panic!("expected session, got {other:?}"),
    }
}

fn insert(client: &mut Client, id: u64, session: u64, name: &str) -> u64 {
    match client.roundtrip(&Request::Insert {
        id,
        session,
        module: entry(name, vec![clb_shape(2, 2)]),
    }) {
        Response::Inserted {
            slot: Some(slot), ..
        } => slot,
        other => panic!("expected accepted insert, got {other:?}"),
    }
}

fn dump(client: &mut Client, id: u64, session: u64) -> (u64, String, u64, Vec<SlotState>) {
    match client.roundtrip(&Request::DumpSession { id, session }) {
        Response::SessionState {
            next_slot,
            grid_digest,
            total_faults,
            slots,
            ..
        } => (next_slot, grid_digest, total_faults, slots),
        other => panic!("expected session state, got {other:?}"),
    }
}

fn fetch_stats(client: &mut Client, id: u64) -> rrf_server::ServerStats {
    match client.roundtrip(&Request::Stats { id }) {
        Response::Stats { stats, .. } => stats,
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn fault_inject_repair_clear_over_the_wire() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());
    let session = open_session(&mut client, 1);

    // Three 2x2 modules at x = 0, 2, 4; the tail x = 6..8 stays free.
    let slots: Vec<u64> = (0..3)
        .map(|i| insert(&mut client, 10 + i, session, &format!("m{i}")))
        .collect();

    // A fault under the first module displaces exactly that slot.
    match client.roundtrip(&Request::InjectFault {
        id: 20,
        session,
        fault: Fault::Tile { x: 0, y: 0 },
    }) {
        Response::FaultInjected {
            tiles,
            displaced,
            total_faults,
            ..
        } => {
            assert_eq!(tiles, 1);
            assert_eq!(displaced, vec![slots[0]]);
            assert_eq!(total_faults, 1);
        }
        other => panic!("expected fault injected, got {other:?}"),
    }

    // Repair relocates the displaced module into the free tail; the two
    // untouched modules stay put.
    match client.roundtrip(&Request::Repair {
        id: 21,
        session,
        budget_ms: None,
    }) {
        Response::Repaired { report, .. } => {
            assert_eq!(report.relocated_count(), 1);
            assert_eq!(report.evicted_count(), 0);
            assert_eq!(report.unaffected, 2);
            assert!(!report.escalated, "greedy refit suffices here");
            assert_eq!(report.moved.len(), 1);
            assert_eq!(report.moved[0].slot, slots[0]);
        }
        other => panic!("expected repaired, got {other:?}"),
    }

    // The dump shows three live slots and none of them on the faulted tile.
    let (_, _, total_faults, dumped) = dump(&mut client, 22, session);
    assert_eq!(total_faults, 1);
    assert_eq!(dumped.len(), 3);
    assert!(
        dumped
            .iter()
            .all(|s| !(s.x == 0 && s.y == 0) || s.slot != slots[0]),
        "repaired module left the faulted tile: {dumped:?}"
    );

    // Clearing the fault restores the tile.
    match client.roundtrip(&Request::ClearFault {
        id: 23,
        session,
        fault: Fault::Tile { x: 0, y: 0 },
    }) {
        Response::FaultCleared {
            tiles,
            total_faults,
            ..
        } => {
            assert_eq!(tiles, 1);
            assert_eq!(total_faults, 0);
        }
        other => panic!("expected fault cleared, got {other:?}"),
    }

    let stats = fetch_stats(&mut client, 24);
    assert_eq!(stats.faults_injected, 1);
    assert_eq!(stats.faults_cleared, 1);
    assert_eq!(stats.repairs, 1);
    assert_eq!(stats.repaired_relocated, 1);
    assert_eq!(stats.repaired_evicted, 0);

    handle.shutdown();
}

#[test]
fn worker_panics_do_not_shrink_the_pool() {
    let workers = 2;
    let handle = start(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr());

    // Panic the pool more times than it has workers: if a panic killed its
    // worker, the later requests would hang on a drained pool.
    let panics = 5;
    for i in 0..panics {
        match client.roundtrip(&Request::DebugPanic { id: 30 + i }) {
            Response::Error { id, message } => {
                assert_eq!(id, 30 + i);
                assert!(message.contains("panicked"), "message: {message}");
            }
            other => panic!("expected internal error, got {other:?}"),
        }
    }

    // The pool still serves real work at full strength.
    match client.roundtrip(&Request::Ping { id: 40 }) {
        Response::Pong { id } => assert_eq!(id, 40),
        other => panic!("expected pong, got {other:?}"),
    }
    let session = open_session(&mut client, 41);
    insert(&mut client, 42, session, "survivor");

    let stats = fetch_stats(&mut client, 43);
    assert_eq!(stats.worker_panics, panics);
    assert_eq!(stats.workers_alive, workers as u64);

    handle.shutdown();
}

#[test]
fn journaled_sessions_survive_a_graceful_restart() {
    let path = std::env::temp_dir().join(format!(
        "rrf_fault_e2e_{}_graceful.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let config = || ServerConfig {
        journal_path: Some(path.to_string_lossy().into_owned()),
        journal_fsync_every: 1,
        ..ServerConfig::default()
    };

    // First life: build up state worth recovering — placements, a live
    // fault, a repair, and a rejected insert.
    let handle = start(config()).unwrap();
    let mut client = Client::connect(handle.addr());
    let session = open_session(&mut client, 1);
    for i in 0..3 {
        insert(&mut client, 10 + i, session, &format!("m{i}"));
    }
    match client.roundtrip(&Request::InjectFault {
        id: 20,
        session,
        fault: Fault::Column { x: 0 },
    }) {
        Response::FaultInjected { .. } => {}
        other => panic!("expected fault injected, got {other:?}"),
    }
    match client.roundtrip(&Request::Repair {
        id: 21,
        session,
        budget_ms: None,
    }) {
        Response::Repaired { .. } => {}
        other => panic!("expected repaired, got {other:?}"),
    }
    let before = dump(&mut client, 22, session);
    // Graceful shutdown compacts the journal to one snapshot line.
    handle.shutdown();
    let journal_text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        journal_text.lines().count(),
        1,
        "shutdown must leave a single snapshot record"
    );
    assert!(journal_text.starts_with(r#"{"op":"snapshot""#));

    // Second life: the session comes back bit-identical and stays usable.
    let handle = start(config()).unwrap();
    let mut client = Client::connect(handle.addr());
    let stats = fetch_stats(&mut client, 30);
    assert_eq!(stats.recovered_sessions, 1);
    assert_eq!(stats.recovery_errors, 0);
    let after = dump(&mut client, 31, session);
    assert_eq!(after, before, "recovered session diverged from the dump");
    // New sessions do not collide with recovered ids, and the recovered
    // session still serves requests: with the fault live and the repair
    // replayed, only 2 free tiles remain, so a 2x2 insert is a clean
    // rejection — not an unknown-session error.
    let fresh = open_session(&mut client, 32);
    assert_ne!(fresh, session);
    match client.roundtrip(&Request::Insert {
        id: 33,
        session,
        module: entry("late", vec![clb_shape(2, 2)]),
    }) {
        Response::Inserted { slot: None, .. } => {}
        other => panic!("expected rejection, got {other:?}"),
    }

    handle.shutdown();
    let _ = std::fs::remove_file(&path);
}
