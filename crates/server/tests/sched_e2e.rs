//! Scheduler end-to-end tests: drive `submit_task` / `cancel_task` /
//! `schedule_status` over a real TCP socket, then prove the schedule is
//! crash-durable by SIGKILLing a journaled `rrf-serve` mid-session and
//! demanding a bit-identical schedule digest after restart.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rrf_fabric::{Fault, ResourceKind};
use rrf_flow::{DeviceSpec, ModuleEntry, RegionSpec};
use rrf_geost::{ShapeDef, ShiftedBox};
use rrf_sched::TaskSpec;
use rrf_server::{start, Request, Response, ServerConfig};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Response {
        let mut line = serde_json::to_string(request).unwrap();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read response");
        serde_json::from_str(reply.trim()).expect("parse response")
    }
}

fn clb_shape(w: i32, h: i32) -> ShapeDef {
    ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
}

fn region_spec(width: i32, height: i32) -> RegionSpec {
    RegionSpec {
        device: DeviceSpec::Homogeneous { width, height },
        bounds: None,
        static_masks: vec![],
    }
}

fn task(name: &str, shapes: Vec<ShapeDef>, duration: u64, deadline: Option<u64>) -> TaskSpec {
    TaskSpec {
        module: ModuleEntry {
            name: name.into(),
            shapes,
            netlist: None,
        },
        arrival: 0,
        duration,
        deadline,
        priority: 0,
    }
}

fn open(client: &mut Client, id: u64, width: i32, height: i32) -> u64 {
    match client.roundtrip(&Request::OpenSession {
        id,
        region: region_spec(width, height),
    }) {
        Response::SessionOpened { session, .. } => session,
        other => panic!("expected session, got {other:?}"),
    }
}

fn schedule_digest(client: &mut Client, id: u64, session: u64) -> (String, u64, u64) {
    match client.roundtrip(&Request::ScheduleStatus {
        id,
        session,
        advance_to: None,
    }) {
        Response::Schedule {
            digest,
            now,
            queue_depth,
            ..
        } => (digest, now, queue_depth),
        other => panic!("expected schedule, got {other:?}"),
    }
}

/// The full request surface: admissions (accepted and rejected), the
/// frozen live-slot mask, cancel, clock advances, and the counters both
/// `stats` and `stats_detail` grow.
#[test]
fn submit_cancel_status_round_trip() {
    let handle = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let mut client = Client::connect(handle.addr());
    let session = open(&mut client, 1, 10, 6);

    // A live slot first: its footprint must be masked out of the
    // scheduler's fabric when the first submit freezes the region.
    match client.roundtrip(&Request::Insert {
        id: 2,
        session,
        module: ModuleEntry {
            name: "resident".into(),
            shapes: vec![clb_shape(10, 3)],
            netlist: None,
        },
    }) {
        Response::Inserted { slot: Some(_), .. } => {}
        other => panic!("expected accepted insert, got {other:?}"),
    }

    // Admitted: fits in the unmasked 10x3 strip.
    let admitted = match client.roundtrip(&Request::SubmitTask {
        id: 3,
        session,
        task: task("worker", vec![clb_shape(4, 2), clb_shape(2, 3)], 200, None),
    }) {
        Response::TaskSubmitted {
            task: Some(t),
            outcome,
            ..
        } => {
            assert_eq!(outcome, "admitted");
            t
        }
        other => panic!("expected admission, got {other:?}"),
    };

    // Rejected: 10x6 can never fit with the resident masking 10x3.
    match client.roundtrip(&Request::SubmitTask {
        id: 4,
        session,
        task: task("too_big", vec![clb_shape(10, 6)], 100, None),
    }) {
        Response::TaskSubmitted {
            task: None,
            outcome,
            ..
        } => assert_eq!(outcome, "rejected_unplaceable"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // Rejected: the deadline cannot cover configuration + run time.
    match client.roundtrip(&Request::SubmitTask {
        id: 5,
        session,
        task: task("too_late", vec![clb_shape(2, 2)], 500, Some(10)),
    }) {
        Response::TaskSubmitted {
            task: None,
            outcome,
            ..
        } => assert_eq!(outcome, "rejected_deadline"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // Cancel the admitted (not yet started) task.
    match client.roundtrip(&Request::CancelTask {
        id: 6,
        session,
        task: admitted,
    }) {
        Response::TaskCancelled { outcome, .. } => {
            assert!(
                outcome == "reserved" || outcome == "queued",
                "unexpected cancel outcome {outcome}"
            );
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
    // Cancelling it again is a benign miss.
    match client.roundtrip(&Request::CancelTask {
        id: 7,
        session,
        task: admitted,
    }) {
        Response::TaskCancelled { outcome, .. } => assert_eq!(outcome, "unknown"),
        other => panic!("expected cancellation, got {other:?}"),
    }

    // Advance the logical clock, then submit work that runs to completion.
    match client.roundtrip(&Request::SubmitTask {
        id: 8,
        session,
        task: task("runner", vec![clb_shape(3, 2)], 100, Some(100_000)),
    }) {
        Response::TaskSubmitted { task: Some(_), .. } => {}
        other => panic!("expected admission, got {other:?}"),
    }
    match client.roundtrip(&Request::ScheduleStatus {
        id: 9,
        session,
        advance_to: Some(100_000),
    }) {
        Response::Schedule { now, stats, .. } => {
            assert_eq!(now, 100_000);
            assert_eq!(stats.completed, 1, "runner ran to completion");
            assert_eq!(stats.cancelled, 1);
            assert!(stats.useful_area_ticks > 0);
        }
        other => panic!("expected schedule, got {other:?}"),
    }

    match client.roundtrip(&Request::Stats { id: 10 }) {
        Response::Stats { stats, .. } => {
            assert_eq!(stats.sched_submits, 4);
            assert_eq!(stats.sched_admitted, 2);
            assert_eq!(stats.sched_rejected, 2);
            assert_eq!(stats.sched_cancels, 2);
            assert_eq!(stats.sched_advances, 1);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    match client.roundtrip(&Request::StatsDetail { id: 11 }) {
        Response::StatsDetail { detail, .. } => {
            assert!(
                detail.sched_queue_depth.count > 0,
                "queue-depth gauge sampled"
            );
        }
        other => panic!("expected stats detail, got {other:?}"),
    }

    // A session that never scheduled reads as an empty schedule.
    let bare = open(&mut client, 12, 4, 4);
    let (digest, now, depth) = schedule_digest(&mut client, 13, bare);
    assert_eq!((now, depth), (0, 0));
    assert_eq!(digest, format!("{:016x}", 0u64));

    handle.shutdown();
}

struct Daemon {
    child: Child,
    addr: std::net::SocketAddr,
}

fn spawn_daemon(journal: &std::path::Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rrf-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--journal",
            journal.to_str().unwrap(),
            "--journal-fsync-every",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rrf-serve");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read startup line");
    let addr = line
        .trim()
        .strip_prefix("rrf-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .parse()
        .expect("parse bound address");
    Daemon { child, addr }
}

fn wait_for_exit(child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        assert!(Instant::now() < deadline, "daemon did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// SIGKILL mid-schedule, restart on the same journal, and demand the
/// recovered scheduler land on a bit-identical digest — clock, queue,
/// ledger, and counters included. Ops after recovery must keep working.
#[test]
fn sigkill_then_restart_replays_bit_identical_schedule() {
    let journal =
        std::env::temp_dir().join(format!("rrf_sched_e2e_{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&journal);

    let mut daemon = spawn_daemon(&journal);
    let mut client = Client::connect(daemon.addr);
    let session = open(&mut client, 1, 12, 8);

    // Build up a rich schedule: an insert (frozen as a mask), admissions
    // with alternatives and deadlines, a fault that kills started work, a
    // cancel, and a clock advance.
    match client.roundtrip(&Request::Insert {
        id: 2,
        session,
        module: ModuleEntry {
            name: "resident".into(),
            shapes: vec![clb_shape(4, 2)],
            netlist: None,
        },
    }) {
        Response::Inserted { slot: Some(_), .. } => {}
        other => panic!("expected accepted insert, got {other:?}"),
    }
    let mut admitted = Vec::new();
    for (i, (shapes, duration, deadline)) in [
        (vec![clb_shape(6, 2), clb_shape(2, 6)], 300, None),
        (vec![clb_shape(6, 2), clb_shape(2, 6)], 250, Some(400)),
        (vec![clb_shape(3, 3)], 200, Some(5_000)),
        (vec![clb_shape(2, 2)], 150, None),
    ]
    .into_iter()
    .enumerate()
    {
        match client.roundtrip(&Request::SubmitTask {
            id: 10 + i as u64,
            session,
            task: task(&format!("t{i}"), shapes, duration, deadline),
        }) {
            Response::TaskSubmitted { task: Some(t), .. } => admitted.push(t),
            Response::TaskSubmitted { task: None, .. } => {}
            other => panic!("expected task_submitted, got {other:?}"),
        }
    }
    match client.roundtrip(&Request::ScheduleStatus {
        id: 20,
        session,
        advance_to: Some(100),
    }) {
        Response::Schedule { now: 100, .. } => {}
        other => panic!("expected schedule at t=100, got {other:?}"),
    }
    match client.roundtrip(&Request::InjectFault {
        id: 21,
        session,
        fault: Fault::Column { x: 1 },
    }) {
        Response::FaultInjected { .. } => {}
        other => panic!("expected fault injected, got {other:?}"),
    }
    if let Some(&victim) = admitted.last() {
        match client.roundtrip(&Request::CancelTask {
            id: 22,
            session,
            task: victim,
        }) {
            Response::TaskCancelled { .. } => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
    }
    match client.roundtrip(&Request::ScheduleStatus {
        id: 23,
        session,
        advance_to: Some(500),
    }) {
        Response::Schedule { now: 500, .. } => {}
        other => panic!("expected schedule at t=500, got {other:?}"),
    }
    let before = schedule_digest(&mut client, 24, session);

    daemon.child.kill().expect("SIGKILL the daemon");
    wait_for_exit(&mut daemon.child);

    // Life 2: the replayed schedule must be bit-identical, and the
    // scheduler must still accept work.
    let mut daemon = spawn_daemon(&journal);
    let mut client = Client::connect(daemon.addr);
    assert_eq!(schedule_digest(&mut client, 30, session), before);
    match client.roundtrip(&Request::Stats { id: 31 }) {
        Response::Stats { stats, .. } => {
            assert_eq!(stats.recovered_sessions, 1);
            assert_eq!(stats.recovery_errors, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    match client.roundtrip(&Request::SubmitTask {
        id: 32,
        session,
        task: task("after_recovery", vec![clb_shape(2, 2)], 100, None),
    }) {
        Response::TaskSubmitted { task: Some(_), .. } => {}
        other => panic!("expected admission after recovery, got {other:?}"),
    }

    // Graceful shutdown compacts to one snapshot carrying the op history;
    // a third life must replay from the snapshot to the same digest.
    let after_submit = schedule_digest(&mut client, 33, session);
    let pid = daemon.child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    wait_for_exit(&mut daemon.child);

    let mut daemon = spawn_daemon(&journal);
    let mut client = Client::connect(daemon.addr);
    assert_eq!(schedule_digest(&mut client, 40, session), after_submit);
    daemon.child.kill().expect("kill");
    wait_for_exit(&mut daemon.child);
    let _ = std::fs::remove_file(&journal);
}
