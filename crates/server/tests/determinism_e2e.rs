//! Byte-level determinism regression: two freshly started daemons driven
//! through an identical request sequence — inserts, removals, a fault, a
//! repair, a defrag, task submissions, and logical-clock advances — must
//! answer `dump_session` and `schedule_status` with *byte-identical*
//! response lines. This pins the ordering fixes in the online placer
//! (BTreeMap-backed slot map) and the replay path: any unordered-map
//! iteration leaking into response bytes shows up here as a diff.

#![forbid(unsafe_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use rrf_fabric::{Fault, ResourceKind};
use rrf_flow::{DeviceSpec, ModuleEntry, RegionSpec};
use rrf_geost::{ShapeDef, ShiftedBox};
use rrf_sched::TaskSpec;
use rrf_server::{start, Request, ServerConfig};

struct RawClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawClient {
    fn connect(addr: std::net::SocketAddr) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        RawClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    /// Send one request, return the raw (unparsed) response line — the
    /// exact bytes a client would see, trailing newline stripped.
    fn roundtrip_raw(&mut self, request: &Request) -> String {
        let mut line = serde_json::to_string(request).unwrap();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read response");
        reply.trim_end().to_string()
    }
}

fn shape(w: i32, h: i32) -> ShapeDef {
    ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
}

fn module(name: &str, shapes: Vec<ShapeDef>) -> ModuleEntry {
    ModuleEntry {
        name: name.into(),
        shapes,
        netlist: None,
    }
}

fn task(name: &str, duration: u64, deadline: Option<u64>) -> TaskSpec {
    TaskSpec {
        module: module(name, vec![shape(2, 2), shape(4, 1)]),
        arrival: 0,
        duration,
        deadline,
        priority: 0,
    }
}

/// Drive one fresh daemon through the fixed sequence and collect the raw
/// response lines of every state-bearing read.
fn run_once() -> Vec<String> {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut client = RawClient::connect(handle.addr());

    let mut id = 0u64;
    let mut next_id = || {
        id += 1;
        id
    };

    // Session 1: placement churn — inserts with alternatives, a removal,
    // a fault targeting occupied tiles, a repair, then a defrag.
    client.roundtrip_raw(&Request::OpenSession {
        id: next_id(),
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 12,
                height: 8,
            },
            bounds: None,
            static_masks: vec![],
        },
    });
    for (name, shapes) in [
        ("a", vec![shape(3, 3), shape(5, 2)]),
        ("b", vec![shape(2, 4)]),
        ("c", vec![shape(4, 2), shape(2, 4)]),
        ("d", vec![shape(3, 2)]),
        ("e", vec![shape(2, 2)]),
    ] {
        client.roundtrip_raw(&Request::Insert {
            id: next_id(),
            session: 1,
            module: module(name, shapes),
        });
    }
    client.roundtrip_raw(&Request::Remove {
        id: next_id(),
        session: 1,
        slot: 1,
    });
    client.roundtrip_raw(&Request::InjectFault {
        id: next_id(),
        session: 1,
        fault: Fault::Tile { x: 1, y: 1 },
    });
    client.roundtrip_raw(&Request::Repair {
        id: next_id(),
        session: 1,
        budget_ms: Some(200),
    });
    client.roundtrip_raw(&Request::Defrag {
        id: next_id(),
        session: 1,
    });

    // Session 2: scheduler churn — submissions (one unschedulable), a
    // cancel, and clock advances.
    client.roundtrip_raw(&Request::OpenSession {
        id: next_id(),
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 8,
                height: 6,
            },
            bounds: None,
            static_masks: vec![],
        },
    });
    for (name, duration, deadline) in [
        ("t1", 10, None),
        ("t2", 5, Some(30)),
        ("t3", 7, Some(9)),
        ("t4", 12, None),
    ] {
        client.roundtrip_raw(&Request::SubmitTask {
            id: next_id(),
            session: 2,
            task: task(name, duration, deadline),
        });
    }
    client.roundtrip_raw(&Request::CancelTask {
        id: next_id(),
        session: 2,
        task: 2,
    });
    client.roundtrip_raw(&Request::ScheduleStatus {
        id: next_id(),
        session: 2,
        advance_to: Some(6),
    });

    // The state-bearing reads whose bytes must not vary run to run.
    let observed = vec![
        client.roundtrip_raw(&Request::DumpSession {
            id: 900,
            session: 1,
        }),
        client.roundtrip_raw(&Request::DumpSession {
            id: 901,
            session: 2,
        }),
        client.roundtrip_raw(&Request::ScheduleStatus {
            id: 902,
            session: 2,
            advance_to: None,
        }),
    ];

    handle.shutdown();
    observed
}

/// Drive a persisted daemon through a fixed `place` sequence and return
/// the response lines with the one timing-bearing field (`elapsed_ms`,
/// serialized last) stripped.
fn run_persisted(persist: &std::path::Path, shards: usize) -> Vec<String> {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_shards: shards,
        cache_persist_path: Some(persist.to_str().unwrap().to_string()),
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut client = RawClient::connect(handle.addr());

    let spec = |salt: i32| rrf_flow::FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 12,
                height: 6,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules: vec![
            module(
                &format!("m{salt}"),
                vec![shape(3 + salt % 2, 2), shape(2, 4)],
            ),
            module("ctl", vec![shape(2, 2)]),
        ],
        placer: rrf_flow::PlacerSettings::default(),
    };

    let mut observed = Vec::new();
    // Three distinct solves, then a repeat of the first (a cache hit —
    // its bytes must be deterministic too). Wall-time fields (the
    // response's `elapsed_ms` and the report's solver timings) are
    // scrubbed before comparison; everything else — placements, extent,
    // metrics, search counters — must match byte for byte.
    for (id, salt) in [(1, 0), (2, 1), (3, 2), (4, 0)] {
        let line = client.roundtrip_raw(&Request::Place {
            id,
            spec: spec(salt),
            deadline_ms: None,
        });
        let mut response: rrf_server::Response = serde_json::from_str(&line).expect("parse placed");
        match &mut response {
            rrf_server::Response::Placed {
                elapsed_ms, report, ..
            } => {
                *elapsed_ms = 0;
                report.stats.duration = Duration::ZERO;
                report.stats.time_to_best = Duration::ZERO;
            }
            other => panic!("expected placed, got {other:?}"),
        }
        observed.push(serde_json::to_string(&response).unwrap());
    }
    handle.shutdown();
    observed
}

#[test]
fn dump_and_schedule_bytes_identical_across_runs() {
    let first = run_once();
    let second = run_once();
    assert_eq!(
        first, second,
        "state-bearing response bytes differ between two identically \
         driven daemons — unordered iteration is leaking into output"
    );
    // Sanity: the dumps actually carry state (slots and a digest), so a
    // regression can't hide behind an empty response.
    assert!(first[0].contains("\"grid_digest\""));
    assert!(first[0].contains("\"slots\""));
    assert!(first[2].contains("\"schedule\"") || first[2].contains("\"ledger\""));
}

/// Two identically driven daemons with `--cache-persist` — and different
/// shard counts — must answer `place` with identical payload bytes and
/// write byte-identical cache snapshots on shutdown. This pins the whole
/// chain: canonical keys, deterministic solves, key-sorted export,
/// fixed-field-order records.
#[test]
fn cache_snapshots_byte_identical_across_runs_and_shard_counts() {
    let dir = std::env::temp_dir();
    let path_a = dir.join(format!("rrf_det_cache_a_{}.ndjson", std::process::id()));
    let path_b = dir.join(format!("rrf_det_cache_b_{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);

    let first = run_persisted(&path_a, 8);
    let second = run_persisted(&path_b, 3);
    assert_eq!(
        first, second,
        "place payload bytes differ between identically driven daemons"
    );
    assert!(first[3].contains("\"cache_hit\":true"));

    let snapshot_a = std::fs::read(&path_a).expect("snapshot A written");
    let snapshot_b = std::fs::read(&path_b).expect("snapshot B written");
    assert!(!snapshot_a.is_empty());
    assert_eq!(
        snapshot_a, snapshot_b,
        "cache snapshot bytes differ across runs/shard counts"
    );
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}
