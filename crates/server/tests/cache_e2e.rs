//! Cache concurrency end-to-end tests: single-flight coalescing under a
//! real duplicate burst, and the unified write-back (one guarded insert
//! site for both the feasible and infeasible solve paths).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use rrf_fabric::ResourceKind;
use rrf_flow::{DeviceSpec, FlowSpec, ModuleEntry, PlacerSettings, RegionSpec};
use rrf_geost::{ShapeDef, ShiftedBox};
use rrf_server::{start, PlaceMethod, Request, Response, ServerConfig};

/// A client that keeps the raw response line, so tests can compare the
/// exact bytes the daemon wrote.
struct RawClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawClient {
    fn connect(addr: std::net::SocketAddr) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        RawClient {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, request: &Request) {
        let mut line = serde_json::to_string(request).unwrap();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
    }

    fn recv_raw(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, request: &Request) -> Response {
        self.send(request);
        serde_json::from_str(&self.recv_raw()).expect("parse response")
    }
}

fn fetch_stats(client: &mut RawClient, id: u64) -> rrf_server::ServerStats {
    match client.roundtrip(&Request::Stats { id }) {
        Response::Stats { stats, .. } => stats,
        other => panic!("expected stats, got {other:?}"),
    }
}

fn fetch_detail(client: &mut RawClient, id: u64) -> rrf_server::DetailStats {
    match client.roundtrip(&Request::StatsDetail { id }) {
        Response::StatsDetail { detail, .. } => detail,
        other => panic!("expected stats_detail, got {other:?}"),
    }
}

/// A spec heavy enough that CP keeps solving until the deadline — the
/// coalescing window the burst threads aim into.
fn heavy_spec(seed: u64) -> FlowSpec {
    let workload = rrf_modgen::generate_workload(&rrf_modgen::WorkloadSpec::paper(seed));
    FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Columns {
                width: 240,
                height: 16,
                bram_period: 10,
                bram_offset: 4,
                dsp_period: 0,
                dsp_offset: 0,
                io_ring: 0,
                center_clock: false,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules: workload
            .modules
            .into_iter()
            .map(|m| ModuleEntry {
                name: m.name,
                shapes: m.shapes,
                netlist: None,
            })
            .collect(),
        placer: PlacerSettings::default(),
    }
}

/// Strip the `elapsed_ms` suffix — the only timing-bearing field of a
/// `placed` response, and (by declaration order) the last one serialized.
fn mask_elapsed(line: &str) -> &str {
    line.rsplit_once(",\"elapsed_ms\":")
        .expect("placed response carries elapsed_ms")
        .0
}

/// M identical `place` requests in flight at once: exactly one solve
/// runs (the leader's), the other M-1 requests join it, and all M
/// responses carry byte-identical payloads.
#[test]
fn duplicate_burst_coalesces_into_one_solve() {
    const FOLLOWERS: usize = 5;
    let handle = start(ServerConfig {
        workers: 8,
        queue_depth: 16,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let spec = heavy_spec(3);

    // The leader goes first with the roomiest deadline, so every
    // follower (same spec, less remaining budget) joins its flight
    // rather than solving solo.
    let mut leader = RawClient::connect(addr);
    leader.send(&Request::Place {
        id: 7,
        spec: spec.clone(),
        deadline_ms: Some(3_000),
    });
    // Let the leader's solve actually start (register the flight)
    // before the burst fires.
    std::thread::sleep(Duration::from_millis(500));

    let barrier = Arc::new(Barrier::new(FOLLOWERS));
    let mut joiners = Vec::new();
    for _ in 0..FOLLOWERS {
        let barrier = Arc::clone(&barrier);
        let spec = spec.clone();
        joiners.push(std::thread::spawn(move || {
            let mut client = RawClient::connect(addr);
            barrier.wait();
            client.send(&Request::Place {
                id: 7,
                spec,
                deadline_ms: Some(2_000),
            });
            client.recv_raw()
        }));
    }

    let leader_line = leader.recv_raw();
    let mut lines = vec![leader_line];
    for joiner in joiners {
        lines.push(joiner.join().expect("joiner thread"));
    }

    for line in &lines {
        match serde_json::from_str::<Response>(line).expect("parse placed") {
            Response::Placed {
                id,
                cache_hit,
                report,
                ..
            } => {
                assert_eq!(id, 7);
                assert!(!cache_hit, "a coalesced answer is a live solve, not a hit");
                assert!(report.feasible);
            }
            other => panic!("expected placed, got {other:?}"),
        }
    }
    // One solve, M answers: every payload is byte-identical up to
    // `elapsed_ms` (each request still reports its own wall time).
    let reference = mask_elapsed(&lines[0]);
    for line in &lines[1..] {
        assert_eq!(mask_elapsed(line), reference, "coalesced payloads diverge");
    }

    let mut observer = RawClient::connect(addr);
    let stats = fetch_stats(&mut observer, 100);
    let detail = fetch_detail(&mut observer, 101);
    assert_eq!(
        detail.cache.coalesced_leader_solves, 1,
        "exactly one solve served the burst"
    );
    assert_eq!(detail.cache.coalesced_joins, FOLLOWERS as u64);
    assert_eq!(detail.cache.coalesce_timeouts, 0);
    // Joiners are misses (they did not find a usable entry), so the
    // load-accounting invariant survives coalescing.
    assert_eq!(stats.place_requests, 1 + FOLLOWERS as u64);
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 1 + FOLLOWERS as u64);
    assert_eq!(stats.coalesced_joins, FOLLOWERS as u64);
    assert_eq!(stats.coalesced_leader_solves, 1);
    // Only the leader's solve entered the histogram.
    assert_eq!(stats.solves(), 1);
    // The entry it cached serves stragglers as a plain hit.
    match observer.roundtrip(&Request::Place {
        id: 102,
        spec,
        deadline_ms: Some(2_000),
    }) {
        Response::Placed { cache_hit, .. } => assert!(cache_hit),
        other => panic!("expected placed, got {other:?}"),
    }

    handle.shutdown();
}

/// Geometrically infeasible but not preflight-provable: two 2×2 modules
/// on a 3×3 region (area 8 ≤ 9 passes the counting bound; no packing
/// exists). Under a tight deadline the CP rung is skipped, so the
/// infeasible verdict is *unproven* — and must be cached with the budget
/// that produced it, through the same single write-back as feasible
/// results.
fn unprovable_pair() -> FlowSpec {
    let shape = ShapeDef::new(vec![ShiftedBox::new(0, 0, 2, 2, ResourceKind::Clb)]);
    FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 3,
                height: 3,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules: vec![
            ModuleEntry {
                name: "a".into(),
                shapes: vec![shape.clone()],
                netlist: None,
            },
            ModuleEntry {
                name: "b".into(),
                shapes: vec![shape],
                netlist: None,
            },
        ],
        placer: PlacerSettings::default(),
    }
}

/// Regression for the write-back unification: the infeasible path used
/// to have its own divergent insert site. Both paths now funnel through
/// one helper, so an unproven infeasible entry obeys the same
/// budget-upgrade ladder as a degraded floorplan — and each solve
/// inserts exactly once.
#[test]
fn unproven_infeasible_entries_ride_the_budget_upgrade_ladder() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut client = RawClient::connect(handle.addr());
    let spec = unprovable_pair();

    let place = |client: &mut RawClient, id: u64, deadline_ms: u64| match client.roundtrip(
        &Request::Place {
            id,
            spec: spec.clone(),
            deadline_ms: Some(deadline_ms),
        },
    ) {
        Response::Placed {
            method,
            cache_hit,
            report,
            ..
        } => {
            assert_eq!(method, PlaceMethod::Infeasible);
            assert!(!report.feasible);
            (cache_hit, report.proven)
        }
        other => panic!("expected placed, got {other:?}"),
    };

    // 120 ms is under the tight-budget bar: CP never runs, greedy fails,
    // and the unproven verdict is cached with a ~120 ms budget.
    assert_eq!(place(&mut client, 1, 120), (false, false));
    // An even more starved request reuses it...
    assert_eq!(place(&mut client, 2, 100), (true, false));
    // ...but real budget must not inherit an unproven verdict: the entry
    // is bypassed, CP runs, and proves infeasibility.
    assert_eq!(place(&mut client, 3, 5_000), (false, true));
    // The proven verdict now serves any budget.
    assert_eq!(place(&mut client, 4, 50), (true, true));
    assert_eq!(place(&mut client, 5, 30_000), (true, true));

    let stats = fetch_stats(&mut client, 6);
    let detail = fetch_detail(&mut client, 7);
    assert_eq!(stats.place_requests, 5);
    assert_eq!(stats.cache_hits, 3);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.cache_bypass_degraded, 1);
    assert_eq!(stats.infeasible, 2);
    assert_eq!(stats.place_requests, stats.cache_hits + stats.cache_misses);
    // One insert per solve — the second overwrites (upgrades) the first,
    // never duplicates it.
    assert_eq!(detail.cache.insertions, 2);
    assert_eq!(detail.cache.entries, 1);

    handle.shutdown();
}
