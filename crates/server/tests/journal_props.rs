//! Journal torn-tail robustness: build a real journal by driving an
//! in-process daemon through every record-producing operation, then
//! prove that **every byte-offset prefix** of that file loads without a
//! panic and replays to a bit-identical prefix of the original history
//! (with zero recovery errors — a clean prefix of valid history is
//! valid history). A proptest then flips arbitrary bytes anywhere in
//! the file and demands load + replay still never panic: corruption may
//! cost records past the damage, never the process.

use std::io::Write as _;

use proptest::prelude::*;
use rrf_fabric::{Fault, ResourceKind};
use rrf_flow::{DeviceSpec, ModuleEntry, RegionSpec};
use rrf_geost::{ShapeDef, ShiftedBox};
use rrf_sched::TaskSpec;
use rrf_server::journal::Journal;
use rrf_server::{replay_summary, start, Request, Response, ServerConfig};

use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::time::Duration;

fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &Request,
) -> Response {
    let mut line = serde_json::to_string(request).unwrap();
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read response");
    serde_json::from_str(reply.trim()).expect("parse response")
}

fn clb_module(name: &str, w: i32, h: i32) -> ModuleEntry {
    ModuleEntry {
        name: name.into(),
        shapes: vec![ShapeDef::new(vec![ShiftedBox::new(
            0,
            0,
            w,
            h,
            ResourceKind::Clb,
        )])],
        netlist: None,
    }
}

/// Drive an in-process journaled daemon through opens, inserts, a
/// removal, a defrag, fault + repair, a scheduler submit, and a session
/// close — one of every journal record type except `Snapshot` (which
/// only the graceful-shutdown compactor writes) — and return the raw
/// journal bytes as they sat on disk mid-flight. Built once and shared:
/// both tests (and every proptest case) mutilate copies of the same
/// history.
fn journal_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(build_journal_bytes)
}

fn build_journal_bytes() -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("rrf_journal_props_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("build.journal");
    let _ = std::fs::remove_file(&path);

    let handle = start(ServerConfig {
        workers: 1,
        journal_path: Some(path.to_str().unwrap().to_string()),
        journal_fsync_every: 1,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut rt = |request: &Request| roundtrip(&mut reader, &mut writer, request);

    let region = RegionSpec {
        device: DeviceSpec::Homogeneous {
            width: 10,
            height: 4,
        },
        bounds: None,
        static_masks: vec![],
    };
    let open = |rt: &mut dyn FnMut(&Request) -> Response, id: u64, region: RegionSpec| match rt(
        &Request::OpenSession { id, region },
    ) {
        Response::SessionOpened { session, .. } => session,
        other => panic!("expected session, got {other:?}"),
    };
    let s1 = open(&mut rt, 1, region.clone());
    let s2 = open(&mut rt, 2, region);

    let mut slots = Vec::new();
    for (i, (w, h)) in [(4, 2), (2, 2), (3, 2)].into_iter().enumerate() {
        match rt(&Request::Insert {
            id: 10 + i as u64,
            session: s1,
            module: clb_module(&format!("m{i}"), w, h),
        }) {
            Response::Inserted {
                slot: Some(slot), ..
            } => slots.push(slot),
            other => panic!("expected accepted insert, got {other:?}"),
        }
    }
    assert!(matches!(
        rt(&Request::Remove {
            id: 20,
            session: s1,
            slot: slots[1],
        }),
        Response::Removed { removed: true, .. }
    ));
    assert!(matches!(
        rt(&Request::Defrag {
            id: 21,
            session: s1
        }),
        Response::Defragged { .. }
    ));
    let fault = Fault::Rect {
        x: 0,
        y: 0,
        w: 1,
        h: 2,
    };
    assert!(matches!(
        rt(&Request::InjectFault {
            id: 22,
            session: s1,
            fault,
        }),
        Response::FaultInjected { .. }
    ));
    assert!(matches!(
        rt(&Request::Repair {
            id: 23,
            session: s1,
            budget_ms: Some(200),
        }),
        Response::Repaired { .. }
    ));
    assert!(matches!(
        rt(&Request::ClearFault {
            id: 24,
            session: s1,
            fault,
        }),
        Response::FaultCleared { .. }
    ));
    assert!(matches!(
        rt(&Request::SubmitTask {
            id: 25,
            session: s2,
            task: TaskSpec {
                module: clb_module("job", 2, 2),
                arrival: 0,
                duration: 8,
                deadline: Some(100),
                priority: 1,
            },
        }),
        Response::TaskSubmitted { task: Some(_), .. }
    ));
    assert!(matches!(
        rt(&Request::CloseSession {
            id: 26,
            session: s2
        }),
        Response::SessionClosed { .. }
    ));

    // fsync-every=1: every answered request above is already durable.
    // Read the bytes *before* shutdown — the graceful path would compact
    // the whole history down to one snapshot line.
    let bytes = std::fs::read(&path).expect("read journal");
    handle.shutdown();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
    assert!(!bytes.is_empty(), "journal must have content");
    bytes
}

fn load_from_bytes(scratch: &std::path::Path, bytes: &[u8]) -> rrf_server::journal::LoadedJournal {
    let mut file = std::fs::File::create(scratch).expect("create scratch journal");
    file.write_all(bytes).expect("write scratch journal");
    drop(file);
    Journal::load(scratch).expect("load never errors on existing file")
}

/// Exhaustive torn-tail sweep: truncate the journal at *every* byte
/// offset. Load must succeed, the recovered records must be exactly a
/// prefix of the untruncated history, the reported `valid_len` must sit
/// on a line boundary within the cut, and replay must be panic-free with
/// zero recovery errors.
#[test]
fn every_byte_truncation_recovers_a_clean_prefix() {
    let bytes = journal_bytes();
    let scratch = std::env::temp_dir().join(format!(
        "rrf_journal_props_trunc_{}.journal",
        std::process::id()
    ));

    let full = load_from_bytes(&scratch, bytes);
    assert!(!full.truncated, "pristine journal must load in full");
    assert_eq!(full.valid_len, bytes.len() as u64);
    let baseline = replay_summary(&full.records);
    assert_eq!(baseline.recovery_errors, 0);
    assert!(!baseline.sessions.is_empty());

    for cut in 0..=bytes.len() {
        let loaded = load_from_bytes(&scratch, &bytes[..cut]);
        let n = loaded.records.len();
        assert!(
            n <= full.records.len() && loaded.records[..] == full.records[..n],
            "offset {cut}: recovered records are not a prefix"
        );
        assert!(
            loaded.valid_len <= cut as u64,
            "offset {cut}: valid_len past the cut"
        );
        assert!(
            loaded.valid_len == 0 || bytes[loaded.valid_len as usize - 1] == b'\n',
            "offset {cut}: valid_len not on a line boundary"
        );
        assert_eq!(
            loaded.truncated,
            loaded.valid_len < cut as u64,
            "offset {cut}: truncation flag disagrees with dropped bytes"
        );
        let summary = replay_summary(&loaded.records);
        assert_eq!(
            summary.recovery_errors, 0,
            "offset {cut}: a clean prefix of valid history replayed with errors"
        );
        // Replay is deterministic: the same prefix summarizes identically.
        assert_eq!(summary, replay_summary(&loaded.records));
        if cut == bytes.len() {
            assert_eq!(summary, baseline);
        }
    }
    let _ = std::fs::remove_file(&scratch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary single-byte corruption anywhere in the journal: load
    /// and replay must never panic. Records strictly before the damaged
    /// line must survive verbatim; whatever parses past it may be
    /// garbage history, which replay absorbs as `recovery_errors`.
    #[test]
    fn byte_flips_never_panic_load_or_replay(offset_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let bytes = journal_bytes();
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        let mut damaged = bytes.to_vec();
        damaged[offset] ^= flip;

        let scratch = std::env::temp_dir().join(format!(
            "rrf_journal_props_flip_{}_{offset}.journal",
            std::process::id()
        ));
        let full = load_from_bytes(&scratch, bytes);
        let damaged_loaded = load_from_bytes(&scratch, &damaged);
        let _ = std::fs::remove_file(&scratch);

        // Records on lines wholly before the damaged byte are intact.
        let intact_lines = bytes[..offset].iter().filter(|&&b| b == b'\n').count();
        prop_assert!(damaged_loaded.records.len() >= intact_lines.min(full.records.len()));
        for (a, b) in damaged_loaded.records.iter().take(intact_lines).zip(&full.records) {
            prop_assert_eq!(a, b);
        }
        // Replay of whatever loaded must be panic-free; divergent history
        // surfaces as counted errors, not a crash.
        let _ = replay_summary(&damaged_loaded.records);
    }
}
