//! Loopback end-to-end tests: start the daemon, speak the NDJSON protocol
//! over a real TCP socket, and verify every returned floorplan
//! independently with `rrf_core::verify`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use rrf_fabric::ResourceKind;
use rrf_flow::{
    resolve_module, DeviceSpec, FlowReport, FlowSpec, ModuleEntry, PlacerSettings, RegionSpec,
};
use rrf_geost::{ShapeDef, ShiftedBox};
use rrf_server::{start, PlaceMethod, Request, Response, ServerConfig};

/// A blocking NDJSON client over one TCP connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, request: &Request) {
        let mut line = serde_json::to_string(request).unwrap();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
    }

    fn send_raw(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        serde_json::from_str(line.trim()).expect("parse response")
    }

    fn roundtrip(&mut self, request: &Request) -> Response {
        self.send(request);
        self.recv()
    }
}

fn clb_shape(w: i32, h: i32) -> ShapeDef {
    ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
}

fn entry(name: &str, shapes: Vec<ShapeDef>) -> ModuleEntry {
    ModuleEntry {
        name: name.into(),
        shapes,
        netlist: None,
    }
}

fn small_spec(modules: Vec<ModuleEntry>) -> FlowSpec {
    FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 10,
                height: 4,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules,
        placer: PlacerSettings::default(),
    }
}

/// Re-verify a returned floorplan against the *request's* spec (the daemon
/// remaps canonical indices back to request order, so this checks the
/// remapping too).
fn assert_verified(spec: &FlowSpec, report: &FlowReport) {
    assert!(report.feasible, "report not feasible");
    let region = spec.region.build().unwrap();
    let modules: Vec<_> = spec
        .modules
        .iter()
        .map(|e| resolve_module(e).unwrap())
        .collect();
    let plan = report.floorplan.as_ref().expect("feasible => floorplan");
    let violations = rrf_core::verify::verify(&region, &modules, plan);
    assert!(violations.is_empty(), "violations: {violations:?}");
    assert_eq!(report.placements.len(), spec.modules.len());
    for (i, placement) in report.placements.iter().enumerate() {
        assert_eq!(placement.name, spec.modules[i].name, "placement order");
    }
}

fn fetch_stats(client: &mut Client, id: u64) -> rrf_server::ServerStats {
    match client.roundtrip(&Request::Stats { id }) {
        Response::Stats { stats, .. } => stats,
        other => panic!("expected stats, got {other:?}"),
    }
}

#[test]
fn place_verifies_caches_and_remaps_reordered_requests() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());

    match client.roundtrip(&Request::Ping { id: 1 }) {
        Response::Pong { id } => assert_eq!(id, 1),
        other => panic!("expected pong, got {other:?}"),
    }

    let spec = small_spec(vec![
        entry("alu", vec![clb_shape(4, 2), clb_shape(2, 4)]),
        entry("fir", vec![clb_shape(3, 2)]),
        entry("ctl", vec![clb_shape(2, 2)]),
    ]);
    let placed = client.roundtrip(&Request::Place {
        id: 2,
        spec: spec.clone(),
        deadline_ms: None,
    });
    match &placed {
        Response::Placed {
            id,
            method,
            cache_hit,
            report,
            ..
        } => {
            assert_eq!(*id, 2);
            assert_eq!(*method, PlaceMethod::Optimal);
            assert!(!cache_hit);
            assert!(report.proven);
            assert_verified(&spec, report);
        }
        other => panic!("expected placed, got {other:?}"),
    }

    // The identical spec hits the cache.
    match client.roundtrip(&Request::Place {
        id: 3,
        spec: spec.clone(),
        deadline_ms: None,
    }) {
        Response::Placed {
            cache_hit, report, ..
        } => {
            assert!(cache_hit, "identical spec must hit the cache");
            assert_verified(&spec, &report);
        }
        other => panic!("expected placed, got {other:?}"),
    }

    // A logically identical spec with modules and shapes reordered also
    // hits — and its report must come back in *its* ordering.
    let reordered = small_spec(vec![
        entry("fir", vec![clb_shape(3, 2)]),
        entry("ctl", vec![clb_shape(2, 2)]),
        entry("alu", vec![clb_shape(2, 4), clb_shape(4, 2)]),
    ]);
    match client.roundtrip(&Request::Place {
        id: 4,
        spec: reordered.clone(),
        deadline_ms: None,
    }) {
        Response::Placed {
            cache_hit, report, ..
        } => {
            assert!(cache_hit, "reordered spec must hit the same cache entry");
            assert_verified(&reordered, &report);
        }
        other => panic!("expected placed, got {other:?}"),
    }

    let stats = fetch_stats(&mut client, 5);
    assert_eq!(stats.place_requests, 3);
    assert_eq!(stats.cache_hits, 2);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.placed_optimal, 1);
    assert_eq!(stats.place_requests, stats.cache_hits + stats.cache_misses);
    assert_eq!(stats.solves(), stats.cache_misses);

    handle.shutdown();
}

#[test]
fn expired_deadline_degrades_to_verified_greedy_floorplan() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());

    let spec = small_spec(vec![
        entry("a", vec![clb_shape(4, 2), clb_shape(2, 4)]),
        entry("b", vec![clb_shape(3, 2)]),
        entry("c", vec![clb_shape(2, 2)]),
    ]);
    // A zero deadline is already expired when the worker picks the job up:
    // the CP and LNS rungs are skipped and the raw greedy seed comes back —
    // degraded, but still verified.
    match client.roundtrip(&Request::Place {
        id: 1,
        spec: spec.clone(),
        deadline_ms: Some(0),
    }) {
        Response::Placed {
            method,
            cache_hit,
            report,
            ..
        } => {
            assert_eq!(method, PlaceMethod::BottomLeft);
            assert!(!cache_hit);
            assert!(!report.proven, "degraded result can not claim optimality");
            assert_verified(&spec, &report);
        }
        other => panic!("expected placed, got {other:?}"),
    }

    let stats = fetch_stats(&mut client, 2);
    assert_eq!(stats.placed_bottom_left, 1);
    assert_eq!(stats.fallbacks(), 1);

    handle.shutdown();
}

#[test]
fn degraded_cache_entries_upgrade_when_budget_allows() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());

    let spec = small_spec(vec![
        entry("a", vec![clb_shape(4, 2), clb_shape(2, 4)]),
        entry("b", vec![clb_shape(3, 2)]),
        entry("c", vec![clb_shape(2, 2)]),
    ]);
    let place = |client: &mut Client, id: u64, deadline_ms: Option<u64>| match client.roundtrip(
        &Request::Place {
            id,
            spec: spec.clone(),
            deadline_ms,
        },
    ) {
        Response::Placed {
            method, cache_hit, ..
        } => (method, cache_hit),
        other => panic!("expected placed, got {other:?}"),
    };

    // An expired deadline produces (and caches) a degraded greedy result.
    assert_eq!(
        place(&mut client, 1, Some(0)),
        (PlaceMethod::BottomLeft, false)
    );
    // An equally deadline-starved request may reuse it...
    assert_eq!(
        place(&mut client, 2, Some(0)),
        (PlaceMethod::BottomLeft, true)
    );
    // ...but a request with real budget must NOT inherit the degraded
    // answer: it recomputes at the top of the ladder and upgrades the
    // entry.
    assert_eq!(place(&mut client, 3, None), (PlaceMethod::Optimal, false));
    // The upgraded (proven) entry now serves everyone — even tight
    // deadlines, since a proven result is deadline-independent.
    assert_eq!(place(&mut client, 4, None), (PlaceMethod::Optimal, true));
    assert_eq!(place(&mut client, 5, Some(0)), (PlaceMethod::Optimal, true));

    let stats = fetch_stats(&mut client, 6);
    assert_eq!(stats.place_requests, 5);
    assert_eq!(stats.cache_hits, 3);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.cache_bypass_degraded, 1);
    assert_eq!(stats.place_requests, stats.cache_hits + stats.cache_misses);

    handle.shutdown();
}

#[test]
fn online_session_lifecycle_over_the_wire() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());

    let session = match client.roundtrip(&Request::OpenSession {
        id: 1,
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 8,
                height: 2,
            },
            bounds: None,
            static_masks: vec![],
        },
    }) {
        Response::SessionOpened { session, .. } => session,
        other => panic!("expected session, got {other:?}"),
    };

    // Four 2x2 modules fill the 8x2 region exactly.
    let mut slots = Vec::new();
    for i in 0..4 {
        match client.roundtrip(&Request::Insert {
            id: 10 + i,
            session,
            module: entry(&format!("m{i}"), vec![clb_shape(2, 2)]),
        }) {
            Response::Inserted {
                slot: Some(slot),
                placement: Some(placement),
                utilization,
                ..
            } => {
                assert_eq!(placement.x, i as i32 * 2, "first-fit packs left to right");
                assert!((utilization - (i as f64 + 1.0) / 4.0).abs() < 1e-9);
                slots.push(slot);
            }
            other => panic!("expected accepted insert, got {other:?}"),
        }
    }

    // A fifth module does not fit: a rejection, not an error.
    match client.roundtrip(&Request::Insert {
        id: 14,
        session,
        module: entry("extra", vec![clb_shape(2, 2)]),
    }) {
        Response::Inserted { slot: None, .. } => {}
        other => panic!("expected rejection, got {other:?}"),
    }

    // Free the second slot, leaving a hole at x=2; defrag repacks the
    // remaining modules flush left.
    match client.roundtrip(&Request::Remove {
        id: 15,
        session,
        slot: slots[1],
    }) {
        Response::Removed {
            removed,
            utilization,
            ..
        } => {
            assert!(removed);
            assert!((utilization - 0.75).abs() < 1e-9);
        }
        other => panic!("expected removed, got {other:?}"),
    }
    match client.roundtrip(&Request::Defrag { id: 16, session }) {
        // Both modules to the right of the hole slide left.
        Response::Defragged { moved, .. } => assert_eq!(moved, 2),
        other => panic!("expected defragged, got {other:?}"),
    }

    // After the repack the freed tail fits a new module again.
    match client.roundtrip(&Request::Insert {
        id: 17,
        session,
        module: entry("late", vec![clb_shape(2, 2)]),
    }) {
        Response::Inserted { slot: Some(_), .. } => {}
        other => panic!("expected accepted insert, got {other:?}"),
    }

    match client.roundtrip(&Request::CloseSession { id: 18, session }) {
        Response::SessionClosed { closed: true, .. } => {}
        other => panic!("expected close, got {other:?}"),
    }
    // Operations on a closed (or unknown) session are errors.
    match client.roundtrip(&Request::Defrag { id: 19, session }) {
        Response::Error { id, message } => {
            assert_eq!(id, 19);
            assert!(message.contains("unknown session"), "message: {message}");
        }
        other => panic!("expected error, got {other:?}"),
    }

    let stats = fetch_stats(&mut client, 20);
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_closed, 1);
    assert_eq!(stats.online_inserts, 6);
    assert_eq!(stats.online_accepted, 5);
    assert_eq!(stats.online_rejected, 1);
    assert_eq!(
        stats.online_inserts,
        stats.online_accepted + stats.online_rejected
    );
    assert_eq!(stats.online_removals, 1);
    assert_eq!(stats.online_defrags, 1, "the post-close defrag errored");

    handle.shutdown();
}

#[test]
fn malformed_lines_report_protocol_errors_without_killing_the_connection() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());

    client.send_raw("this is not json\n");
    match client.recv() {
        Response::Error { id, message } => {
            assert_eq!(id, 0, "unrecoverable lines use the reserved id 0");
            assert!(message.contains("unparseable"), "message: {message}");
        }
        other => panic!("expected error, got {other:?}"),
    }

    // Valid JSON that is not a valid request still gets its own id echoed
    // back, so pipelining clients can tell which request failed.
    client.send_raw("{\"type\":\"place\",\"id\":42}\n");
    match client.recv() {
        Response::Error { id, message } => {
            assert_eq!(id, 42, "id recovered best-effort from malformed request");
            assert!(message.contains("unparseable"), "message: {message}");
        }
        other => panic!("expected error, got {other:?}"),
    }

    // The connection survives and keeps serving.
    match client.roundtrip(&Request::Ping { id: 7 }) {
        Response::Pong { id } => assert_eq!(id, 7),
        other => panic!("expected pong, got {other:?}"),
    }

    let stats = fetch_stats(&mut client, 8);
    assert_eq!(stats.protocol_errors, 2);

    handle.shutdown();
}

/// The paper's §V workload as a `place` spec — large enough that exact CP
/// keeps a worker busy until its deadline trips.
fn paper_spec(seed: u64, deadline_headroom: Option<u64>) -> FlowSpec {
    let workload = rrf_modgen::generate_workload(&rrf_modgen::WorkloadSpec::paper(seed));
    FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Columns {
                width: 240,
                height: 16,
                bram_period: 10,
                bram_offset: 4,
                dsp_period: 0,
                dsp_offset: 0,
                io_ring: 0,
                center_clock: false,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules: workload
            .modules
            .into_iter()
            .map(|m| ModuleEntry {
                name: m.name,
                shapes: m.shapes,
                netlist: None,
            })
            .collect(),
        placer: PlacerSettings {
            time_limit_ms: deadline_headroom,
            ..PlacerSettings::default()
        },
    }
}

#[test]
fn full_queue_rejects_with_backpressure_and_queued_work_still_verifies() {
    // One worker, one queue slot: with a slow solve in flight and a second
    // request queued, a third request must be rejected immediately.
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .unwrap();

    let spec_a = paper_spec(0, None);
    let spec_b = paper_spec(1, None);

    let mut conn_a = Client::connect(handle.addr());
    let mut conn_b = Client::connect(handle.addr());
    let mut conn_c = Client::connect(handle.addr());

    conn_a.send(&Request::Place {
        id: 1,
        spec: spec_a.clone(),
        deadline_ms: Some(2_500),
    });
    // Wait until A has moved from the queue into the worker before sending
    // B, and until B occupies the queue slot before sending C — back-to-back
    // sends could race each other for the single slot.
    std::thread::sleep(Duration::from_millis(300));
    conn_b.send(&Request::Place {
        id: 2,
        spec: spec_b.clone(),
        deadline_ms: Some(2_500),
    });
    std::thread::sleep(Duration::from_millis(300));
    match conn_c.roundtrip(&Request::Ping { id: 3 }) {
        Response::Overloaded {
            id,
            message,
            retry_after_ms,
        } => {
            assert_eq!(id, 3);
            assert!(message.contains("overloaded"), "message: {message}");
            assert!(
                (25..=10_000).contains(&retry_after_ms),
                "retry hint must stay within its clamp: {retry_after_ms}"
            );
        }
        other => panic!("expected backpressure rejection, got {other:?}"),
    }

    // Both heavy requests complete within their deadlines with verified
    // floorplans; B spent most of its budget waiting in the queue (the
    // deadline covers queue wait), so it must not claim optimality.
    match conn_a.recv() {
        Response::Placed { id, report, .. } => {
            assert_eq!(id, 1);
            assert_verified(&spec_a, &report);
        }
        other => panic!("expected placed, got {other:?}"),
    }
    match conn_b.recv() {
        Response::Placed {
            id, method, report, ..
        } => {
            assert_eq!(id, 2);
            assert_ne!(method, PlaceMethod::Optimal, "B had no time to prove");
            assert!(!report.proven);
            assert_verified(&spec_b, &report);
        }
        other => panic!("expected placed, got {other:?}"),
    }

    let stats = fetch_stats(&mut conn_c, 4);
    assert!(stats.rejected_backpressure >= 1);
    assert_eq!(stats.place_requests, 2);
    assert_eq!(stats.fallbacks() + stats.placed_optimal, 2);

    handle.shutdown();
}

#[test]
fn analyze_request_and_preflight_rejection() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());

    // A clean spec analyzes clean.
    let clean = small_spec(vec![
        entry("alu", vec![clb_shape(4, 2), clb_shape(2, 4)]),
        entry("fir", vec![clb_shape(3, 2)]),
    ]);
    match client.roundtrip(&Request::Analyze {
        id: 1,
        spec: clean.clone(),
    }) {
        Response::Analysis {
            id,
            diagnostics,
            proven_infeasible,
            shapes_total,
            shapes_prunable,
            ..
        } => {
            assert_eq!(id, 1);
            assert!(diagnostics.is_empty(), "{diagnostics:?}");
            assert!(!proven_infeasible);
            assert_eq!(shapes_total, 3);
            assert_eq!(shapes_prunable, 0);
        }
        other => panic!("expected analysis, got {other:?}"),
    }

    // A module too wide for the 10x4 region is a dead module: the
    // analyzer proves it, and the preflight rejects the place request
    // without consuming any solver budget.
    let doomed = small_spec(vec![
        entry("alu", vec![clb_shape(4, 2)]),
        entry("wide", vec![clb_shape(20, 1)]),
    ]);
    match client.roundtrip(&Request::Analyze {
        id: 2,
        spec: doomed.clone(),
    }) {
        Response::Analysis {
            diagnostics,
            proven_infeasible,
            ..
        } => {
            assert!(proven_infeasible);
            assert!(!diagnostics.is_empty());
        }
        other => panic!("expected analysis, got {other:?}"),
    }

    let solves_before = fetch_stats(&mut client, 3).solves();
    match client.roundtrip(&Request::Place {
        id: 4,
        spec: doomed,
        deadline_ms: Some(30_000),
    }) {
        Response::Error { id, message } => {
            assert_eq!(id, 4);
            assert!(message.contains("preflight"), "message: {message}");
            assert!(message.contains("RRF004"), "message: {message}");
        }
        other => panic!("expected preflight error, got {other:?}"),
    }

    // A spec whose module carries duplicate alternatives places fine,
    // with the duplicates stripped from the model by the solver prune.
    let dupes = small_spec(vec![entry(
        "twin",
        vec![clb_shape(4, 2), clb_shape(4, 2), clb_shape(2, 4)],
    )]);
    match client.roundtrip(&Request::Place {
        id: 5,
        spec: dupes.clone(),
        deadline_ms: None,
    }) {
        Response::Placed { report, .. } => {
            assert_verified(&dupes, &report);
            assert_eq!(report.stats.shapes_pruned, 1);
        }
        other => panic!("expected placed, got {other:?}"),
    }

    let stats = fetch_stats(&mut client, 6);
    assert_eq!(stats.analyze_requests, 2);
    assert!(stats.analyze_us_total >= 1, "analyzer wall time recorded");
    assert_eq!(stats.preflight_rejects, 1);
    assert_eq!(stats.shapes_pruned, 1);
    // The rejected request never reached the solver: only the duplicate
    // place added a histogram entry.
    assert_eq!(stats.solves(), solves_before + 1);
    assert_eq!(stats.infeasible, 0);

    handle.shutdown();
}
