//! End-to-end observability tests: drive the daemon over a real socket
//! and assert that the `stats_detail` reply and the `--trace` stream
//! describe what actually happened — which degradation-ladder rung ran,
//! and phase timings that tile the end-to-end total.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use rrf_fabric::ResourceKind;
use rrf_flow::{DeviceSpec, FlowSpec, ModuleEntry, PlacerSettings, RegionSpec};
use rrf_geost::{ShapeDef, ShiftedBox};
use rrf_server::{start, DetailStats, PlaceMethod, Request, Response, ServerConfig};

/// A blocking NDJSON client over one TCP connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Response {
        let mut line = serde_json::to_string(request).unwrap();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read response");
        serde_json::from_str(reply.trim()).expect("parse response")
    }
}

fn clb_shape(w: i32, h: i32) -> ShapeDef {
    ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
}

fn entry(name: &str, shapes: Vec<ShapeDef>) -> ModuleEntry {
    ModuleEntry {
        name: name.into(),
        shapes,
        netlist: None,
    }
}

/// A distinct spec per `salt` (different module geometry, so no two
/// requests share a cache key).
fn spec(salt: i32) -> FlowSpec {
    FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 12,
                height: 4,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules: vec![
            entry("a", vec![clb_shape(2 + salt % 2, 2), clb_shape(2, 3)]),
            entry("b", vec![clb_shape(3, 2), clb_shape(2, 2 + salt % 3)]),
        ],
        placer: PlacerSettings::default(),
    }
}

fn place(client: &mut Client, id: u64, spec: FlowSpec, deadline_ms: Option<u64>) -> PlaceMethod {
    match client.roundtrip(&Request::Place {
        id,
        spec,
        deadline_ms,
    }) {
        Response::Placed { method, .. } => method,
        other => panic!("expected placed, got {other:?}"),
    }
}

fn fetch_detail(client: &mut Client, id: u64) -> DetailStats {
    match client.roundtrip(&Request::StatsDetail { id }) {
        Response::StatsDetail { detail, .. } => detail,
        other => panic!("expected stats_detail, got {other:?}"),
    }
}

/// Starve or feed the deadline and check, via `stats_detail`, which rung
/// of the degradation ladder actually ran.
#[test]
fn stats_detail_reports_ladder_rung_and_tiling_phases() {
    let handle = start(ServerConfig {
        workers: 1, // sequential handling: phase accounting is exact
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr());

    // 5 ms is below both the CP threshold (200 ms) and the LNS threshold
    // (20 ms): the ladder must bottom out at the greedy rung.
    let m1 = place(&mut client, 1, spec(0), Some(5));
    assert_eq!(m1, PlaceMethod::BottomLeft);

    // 150 ms skips CP (threshold 200 ms) but leaves LNS worthwhile.
    let m2 = place(&mut client, 2, spec(1), Some(150));
    assert_eq!(m2, PlaceMethod::Lns);

    // The default deadline (10 s) lets CP prove optimality on this size.
    let m3 = place(&mut client, 3, spec(2), None);
    assert_eq!(m3, PlaceMethod::Optimal);

    let detail = fetch_detail(&mut client, 4);
    assert_eq!(detail.ladder.bottom_left, 1);
    assert_eq!(detail.ladder.lns, 1);
    assert_eq!(detail.ladder.optimal, 1);
    assert_eq!(detail.ladder.cp_incumbent, 0);
    assert_eq!(detail.ladder.infeasible, 0);
    // The two deadline-starved requests skipped the CP rung outright.
    assert_eq!(detail.ladder.cp_skipped_tight_budget, 2);

    // Every instrumented request contributes one `total` observation and
    // one observation per phase it passed through.
    assert_eq!(detail.total.count, 3);
    for phase in ["queue_wait", "cache_probe", "preflight", "other"] {
        assert_eq!(detail.phases[phase].count, 3, "phase {phase}");
    }
    assert_eq!(detail.phases["bottom_left"].count, 1);
    assert_eq!(detail.phases["lns"].count, 1);
    assert_eq!(detail.phases["cp"].count, 1);
    assert_eq!(detail.phases["verify"].count, 3);

    // The acceptance criterion: the per-phase breakdown sums to the
    // total solve time within 1% — here it tiles exactly by
    // construction.
    let phase_sum: u64 = detail.phases.values().map(|s| s.total_us).sum();
    let total = detail.total.total_us;
    assert!(
        phase_sum.abs_diff(total) <= total / 100,
        "phase sum {phase_sum}µs drifts more than 1% from total {total}µs"
    );
    assert_eq!(phase_sum, total, "phases must tile the total exactly");

    // The LNS rung ran and was measured. Its duration is *not*
    // budget-bound: the inner solve uses `stop_after: Some(1)` with the
    // request's shared stop flag, so the first improvement trips the flag
    // and the LNS loop exits well before the ~150 ms deadline.
    assert!(detail.phases["lns"].total_us > 0);

    handle.shutdown();
}

/// Analyzer diagnostics — from `analyze` requests and from `place`
/// preflights — are counted by code in the detail reply.
#[test]
fn stats_detail_counts_diagnostics_by_code() {
    let handle = start(ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr());

    // A duplicate alternative plus a dead (oversized) one: the analyzer
    // must report at least those two diagnostics.
    let mut bad = spec(0);
    let dup = bad.modules[0].shapes[0].clone();
    bad.modules[0].shapes.push(dup);
    bad.modules[1].shapes.push(clb_shape(20, 20));
    match client.roundtrip(&Request::Analyze { id: 1, spec: bad }) {
        Response::Analysis { diagnostics, .. } => assert!(!diagnostics.is_empty()),
        other => panic!("expected analysis, got {other:?}"),
    }

    let detail = fetch_detail(&mut client, 2);
    assert!(
        !detail.diagnostics_by_code.is_empty(),
        "analyze must feed diagnostics_by_code"
    );
    let total: u64 = detail.diagnostics_by_code.values().sum();
    assert!(total >= 2, "expected at least 2 diagnostics, got {total}");

    handle.shutdown();
}

/// `trace_path` writes a parseable, well-parenthesized NDJSON stream in
/// which the `solve.*` phase wall records tile the request's `solve`
/// root span exactly, with the solver's own spans nested inside.
#[test]
fn trace_file_is_balanced_and_phases_tile_the_root_span() {
    let path = std::env::temp_dir().join(format!("rrf_trace_e2e_{}.ndjson", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();

    let handle = start(ServerConfig {
        workers: 1,
        trace_path: Some(path_str.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr());
    let method = place(&mut client, 1, spec(0), None);
    assert_eq!(method, PlaceMethod::Optimal);
    handle.shutdown(); // flushes the trace sink

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let lines = rrf_trace::parse_text(&text).expect("trace parses");
    rrf_trace::check_balanced(&lines).expect("trace is well-parenthesized");

    let mut root_us = None;
    let mut phase_sum = 0u64;
    let mut saw_solver_span = false;
    for line in &lines {
        let name = line.name().unwrap_or("");
        if line.ev() == Some("wall") {
            let us = line.get("us").and_then(|v| v.as_u64()).unwrap();
            if name == "solve" {
                assert!(root_us.is_none(), "exactly one place request traced");
                root_us = Some(us);
            } else if name.starts_with("solve.") {
                phase_sum += us;
            }
        }
        if line.ev() == Some("open") && name == "place" {
            saw_solver_span = true;
        }
    }
    let root_us = root_us.expect("root solve span present");
    assert_eq!(
        phase_sum, root_us,
        "solve.* wall records must tile the solve root exactly"
    );
    assert!(
        saw_solver_span,
        "the CP placer's own `place` span must appear in the server trace"
    );
    // The request's summary point carries the rung that answered it.
    assert!(lines.iter().any(|l| {
        l.ev() == Some("point")
            && l.name() == Some("solve.result")
            && l.get("method").and_then(|v| v.as_str()) == Some("optimal")
    }));
}
