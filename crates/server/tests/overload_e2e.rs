//! Overload end-to-end tests: the request-line byte cap and the
//! backpressure → `rrf-client` retry loop, both against an in-process
//! daemon over real TCP.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rrf_bench::workload::{paper_region_spec, small_region_spec};
use rrf_client::{Client, ClientConfig};
use rrf_flow::{FlowSpec, ModuleEntry, PlacerSettings};
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_server::{start, Request, Response, ServerConfig, ServerStats};

fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &[u8]) -> Response {
    writer.write_all(line).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read response");
    serde_json::from_str(reply.trim()).expect("parse response")
}

fn request_line(request: &Request) -> Vec<u8> {
    let mut line = serde_json::to_string(request).unwrap();
    line.push('\n');
    line.into_bytes()
}

/// A `place` whose CP rung is pinned to `time_limit_ms`, unique per
/// `seed` so the daemon's cache never short-circuits the queue.
fn place_spec(modules: usize, seed: u64, time_limit_ms: u64) -> FlowSpec {
    let workload = generate_workload(&WorkloadSpec::small(modules, seed));
    FlowSpec {
        region: small_region_spec(),
        modules: workload
            .modules
            .into_iter()
            .map(|m| ModuleEntry {
                name: m.name,
                shapes: m.shapes,
                netlist: None,
            })
            .collect(),
        placer: PlacerSettings {
            time_limit_ms: Some(time_limit_ms),
            ..PlacerSettings::default()
        },
    }
}

fn fetch_stats(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream) -> ServerStats {
    match roundtrip(reader, writer, &request_line(&Request::Stats { id: 9_999 })) {
        Response::Stats { stats, .. } => stats,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// An oversized request line draws one structured error echoing the id
/// scanned from the capped prefix — and the connection stays usable for
/// well-behaved requests afterwards.
#[test]
fn oversized_line_gets_structured_error_and_connection_survives() {
    let handle = start(ServerConfig {
        workers: 1,
        max_line_bytes: 4_096,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // A syntactically hopeless 64 KiB line whose id is visible in the
    // first capped bytes; the server must not buffer past the cap.
    let mut line = br#"{"op":"place","id":4242,"pad":""#.to_vec();
    line.resize(64 * 1024, b'x');
    line.push(b'\n');
    match roundtrip(&mut reader, &mut writer, &line) {
        Response::Error { id, message } => {
            assert_eq!(id, 4242, "error must echo the id scanned from the prefix");
            assert!(
                message.contains("4096 byte cap"),
                "message must name the cap: {message}"
            );
        }
        other => panic!("expected structured error, got {other:?}"),
    }

    // Same connection, next line: business as usual.
    match roundtrip(
        &mut reader,
        &mut writer,
        &request_line(&Request::Ping { id: 7 }),
    ) {
        Response::Pong { id } => assert_eq!(id, 7),
        other => panic!("expected pong after oversized line, got {other:?}"),
    }
    let stats = fetch_stats(&mut reader, &mut writer);
    assert_eq!(stats.oversized_lines, 1);
    handle.shutdown();
}

/// Saturate a one-worker, one-slot daemon with slow CP work — one
/// in-flight, one queued, the same stagger the `server_end_to_end`
/// suite uses — then let the retrying `rrf-client` push an idempotent
/// `place` through: its first attempt is shed with `overloaded` +
/// `retry_after_ms`, and the backoff loop (honoring the hint) must land
/// the request once the hogs drain.
#[test]
fn backpressure_sheds_then_retrying_client_eventually_succeeds() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();

    // Two hog connections each park one paper-sized placement in the
    // daemon (30 modules: CP never proves inside the 1.2s pin). The
    // stagger lets A reach the worker before B takes the queue slot.
    let hog_spec = |seed: u64| {
        let workload = generate_workload(&WorkloadSpec::paper(seed));
        FlowSpec {
            region: paper_region_spec(),
            modules: workload
                .modules
                .into_iter()
                .map(|m| ModuleEntry {
                    name: m.name,
                    shapes: m.shapes,
                    netlist: None,
                })
                .collect(),
            placer: PlacerSettings {
                time_limit_ms: Some(1_200),
                ..PlacerSettings::default()
            },
        }
    };
    let mut hogs = Vec::new();
    for (i, seed) in [(0u64, 10u64), (1, 11)] {
        let stream = TcpStream::connect(&addr).expect("connect hog");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let request = Request::Place {
            id: 100 + i,
            spec: hog_spec(seed),
            deadline_ms: None,
        };
        writer.write_all(&request_line(&request)).unwrap();
        hogs.push(stream);
        std::thread::sleep(Duration::from_millis(300));
    }

    // Worker busy + queue full: the retrying client's first attempt is
    // shed, and the loop must succeed once the hogs drain (~1.2s each).
    let mut client = Client::new(ClientConfig {
        addr: addr.clone(),
        max_retries: 12,
        backoff_base: Duration::from_millis(25),
        backoff_cap: Duration::from_secs(1),
        ..ClientConfig::default()
    });
    let request = Request::Place {
        id: 300,
        spec: place_spec(4, 9_001, 50),
        deadline_ms: None,
    };
    let started = Instant::now();
    match client.call(&request).expect("retry loop must succeed") {
        Response::Placed { id, report, .. } => {
            assert_eq!(id, 300);
            assert!(report.feasible, "placement must be feasible");
        }
        other => panic!("expected placed, got {other:?}"),
    }
    assert!(
        started.elapsed() >= Duration::from_millis(200),
        "the client cannot have succeeded while the daemon was saturated"
    );

    let stats_conn = TcpStream::connect(&addr).expect("connect stats");
    stats_conn
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut stats_reader = BufReader::new(stats_conn.try_clone().unwrap());
    let mut stats_writer = stats_conn;
    let stats = fetch_stats(&mut stats_reader, &mut stats_writer);
    assert!(
        stats.rejected_backpressure >= 1,
        "the client's shed first attempt must be counted"
    );
    drop(hogs);
    handle.shutdown();
}
