//! Crash-recovery test against the real `rrf-serve` binary: build up
//! journaled session state, SIGKILL the daemon mid-session (no shutdown,
//! no snapshot), restart it on the same journal, and demand bit-identical
//! state. A second phase SIGTERMs the recovered daemon and checks the
//! graceful path compacts the journal to a single snapshot line.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rrf_fabric::{Fault, ResourceKind};
use rrf_flow::{DeviceSpec, ModuleEntry, RegionSpec};
use rrf_geost::{ShapeDef, ShiftedBox};
use rrf_server::{Request, Response};

struct Daemon {
    child: Child,
    addr: std::net::SocketAddr,
}

/// Spawn `rrf-serve --journal <path>` on an ephemeral port and parse the
/// bound address from its startup line.
fn spawn_daemon(journal: &std::path::Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rrf-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--journal",
            journal.to_str().unwrap(),
            "--journal-fsync-every",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rrf-serve");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read startup line");
    let addr = line
        .trim()
        .strip_prefix("rrf-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .parse()
        .expect("parse bound address");
    Daemon { child, addr }
}

fn wait_for_exit(child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        assert!(Instant::now() < deadline, "daemon did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Response {
        let mut line = serde_json::to_string(request).unwrap();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read response");
        serde_json::from_str(reply.trim()).expect("parse response")
    }
}

fn clb_module(name: &str, w: i32, h: i32) -> ModuleEntry {
    ModuleEntry {
        name: name.into(),
        shapes: vec![ShapeDef::new(vec![ShiftedBox::new(
            0,
            0,
            w,
            h,
            ResourceKind::Clb,
        )])],
        netlist: None,
    }
}

fn dump(client: &mut Client, id: u64, session: u64) -> String {
    match client.roundtrip(&Request::DumpSession { id, session }) {
        Response::SessionState {
            next_slot,
            grid_digest,
            total_faults,
            slots,
            ..
        } => format!("next={next_slot} digest={grid_digest} faults={total_faults} slots={slots:?}"),
        other => panic!("expected session state, got {other:?}"),
    }
}

#[test]
fn sigkill_then_restart_replays_bit_identical_sessions() {
    let journal =
        std::env::temp_dir().join(format!("rrf_kill_recover_{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&journal);

    // Life 1: two sessions with inserts, a removal, a fault, and a repair —
    // then SIGKILL with no warning. fsync-every=1 makes each answered
    // request durable.
    let mut daemon = spawn_daemon(&journal);
    let mut client = Client::connect(daemon.addr);
    let open = |client: &mut Client, id: u64| match client.roundtrip(&Request::OpenSession {
        id,
        region: RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 10,
                height: 4,
            },
            bounds: None,
            static_masks: vec![],
        },
    }) {
        Response::SessionOpened { session, .. } => session,
        other => panic!("expected session, got {other:?}"),
    };
    let s1 = open(&mut client, 1);
    let s2 = open(&mut client, 2);
    let mut slots = Vec::new();
    for (i, (w, h)) in [(4, 2), (2, 2), (3, 2), (2, 4)].into_iter().enumerate() {
        match client.roundtrip(&Request::Insert {
            id: 10 + i as u64,
            session: s1,
            module: clb_module(&format!("m{i}"), w, h),
        }) {
            Response::Inserted {
                slot: Some(slot), ..
            } => slots.push(slot),
            other => panic!("expected accepted insert, got {other:?}"),
        }
    }
    match client.roundtrip(&Request::Insert {
        id: 20,
        session: s2,
        module: clb_module("other", 3, 3),
    }) {
        Response::Inserted { slot: Some(_), .. } => {}
        other => panic!("expected accepted insert, got {other:?}"),
    }
    match client.roundtrip(&Request::Remove {
        id: 21,
        session: s1,
        slot: slots[1],
    }) {
        Response::Removed { removed: true, .. } => {}
        other => panic!("expected removed, got {other:?}"),
    }
    match client.roundtrip(&Request::InjectFault {
        id: 22,
        session: s1,
        fault: Fault::Rect {
            x: 0,
            y: 0,
            w: 1,
            h: 2,
        },
    }) {
        Response::FaultInjected { .. } => {}
        other => panic!("expected fault injected, got {other:?}"),
    }
    match client.roundtrip(&Request::Repair {
        id: 23,
        session: s1,
        budget_ms: Some(200),
    }) {
        Response::Repaired { .. } => {}
        other => panic!("expected repaired, got {other:?}"),
    }
    let before_s1 = dump(&mut client, 24, s1);
    let before_s2 = dump(&mut client, 25, s2);

    daemon.child.kill().expect("SIGKILL the daemon");
    wait_for_exit(&mut daemon.child);

    // Life 2: replay must rebuild both sessions exactly — same slots, same
    // occupancy digest, same live faults.
    let mut daemon = spawn_daemon(&journal);
    let mut client = Client::connect(daemon.addr);
    assert_eq!(dump(&mut client, 30, s1), before_s1);
    assert_eq!(dump(&mut client, 31, s2), before_s2);
    match client.roundtrip(&Request::Stats { id: 32 }) {
        Response::Stats { stats, .. } => {
            assert_eq!(stats.recovered_sessions, 2);
            assert_eq!(stats.recovery_errors, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Phase 2: SIGTERM the recovered daemon — the graceful path must
    // compact the journal to exactly one snapshot line...
    let pid = daemon.child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    wait_for_exit(&mut daemon.child);
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(text.lines().count(), 1, "journal: {text}");
    assert!(text.starts_with(r#"{"op":"snapshot""#));

    // ...and a third life recovers from that snapshot alone.
    let mut daemon = spawn_daemon(&journal);
    let mut client = Client::connect(daemon.addr);
    assert_eq!(dump(&mut client, 40, s1), before_s1);
    assert_eq!(dump(&mut client, 41, s2), before_s2);
    daemon.child.kill().expect("kill final daemon");
    wait_for_exit(&mut daemon.child);
    let _ = std::fs::remove_file(&journal);
}
