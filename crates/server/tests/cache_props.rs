//! Reference-model property test for the sharded cache: drive a random
//! op sequence (inserts with proven/degraded entries and varying
//! budgets, probes with varying remaining budgets) through
//! [`ShardedCache`] and through a deliberately naive single-map model
//! that re-implements the documented semantics — FNV-1a shard labels,
//! per-shard LRU with per-shard capacity `ceil(capacity / shards)`,
//! overwrite-never-evicts, served-probes-bump-recency,
//! degraded-probes-don't — and demand identical outcomes: every probe
//! classification, every eviction victim, every counter, and the final
//! key-sorted export.
//!
//! The model keys everything off the *pinned* FNV-1a function (the
//! `fnv1a_is_pinned` unit test guards the constant), so a change to
//! shard selection, tick bookkeeping, or the eviction rule shows up as
//! a divergence here rather than as a silent behavior shift.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use rrf_flow::FlowReport;
use rrf_server::cache::{CacheEntry, Probe, ShardedCache};
use rrf_server::PlaceMethod;

/// The same FNV-1a the cache uses, re-implemented rather than imported:
/// the test must fail if the cache's function changes.
fn fnv1a(key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in key.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn entry(proven: bool, budget_ms: u64) -> CacheEntry {
    CacheEntry {
        method: if proven {
            PlaceMethod::Optimal
        } else {
            PlaceMethod::BottomLeft
        },
        report: FlowReport {
            feasible: true,
            proven,
            extent: None,
            placements: vec![],
            metrics: None,
            stats: rrf_core::SolveStats::default(),
            floorplan: None,
        },
        budget: Duration::from_millis(budget_ms),
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert {
        key: usize,
        proven: bool,
        budget_ms: u64,
    },
    Probe {
        key: usize,
        remaining_ms: u64,
    },
}

/// Single ordered map, no striping, no locks: shard membership is just a
/// label on each slot, and ticks are tracked per label exactly like each
/// real shard's own counter.
struct Model {
    shards: usize,
    per_shard_capacity: usize,
    slots: BTreeMap<String, ModelSlot>,
    ticks: Vec<u64>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

struct ModelSlot {
    proven: bool,
    budget_ms: u64,
    last_used: u64,
    shard: usize,
}

impl Model {
    fn new(capacity: usize, shards: usize) -> Model {
        let shards = shards.max(1);
        Model {
            shards,
            per_shard_capacity: capacity.max(1).div_ceil(shards),
            slots: BTreeMap::new(),
            ticks: vec![0; shards],
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    fn shard_of(&self, key: &str) -> usize {
        (fnv1a(key) % self.shards as u64) as usize
    }

    /// Returns "served" / "degraded" / "miss" for comparison.
    fn probe(&mut self, key: &str, remaining_ms: u64) -> &'static str {
        let shard = self.shard_of(key);
        self.ticks[shard] += 1;
        let tick = self.ticks[shard];
        match self.slots.get_mut(key) {
            Some(slot) if slot.proven || remaining_ms <= slot.budget_ms => {
                slot.last_used = tick;
                self.hits += 1;
                "served"
            }
            Some(_) => {
                self.misses += 1;
                "degraded"
            }
            None => {
                self.misses += 1;
                "miss"
            }
        }
    }

    /// Returns the evicted key, if the insert overflowed its shard.
    fn insert(&mut self, key: &str, proven: bool, budget_ms: u64) -> Option<String> {
        let shard = self.shard_of(key);
        self.ticks[shard] += 1;
        let tick = self.ticks[shard];
        let existed = self
            .slots
            .insert(
                key.to_string(),
                ModelSlot {
                    proven,
                    budget_ms,
                    last_used: tick,
                    shard,
                },
            )
            .is_some();
        self.insertions += 1;
        let resident = self.slots.values().filter(|s| s.shard == shard).count();
        if !existed && resident > self.per_shard_capacity {
            let victim = self
                .slots
                .iter()
                .filter(|(_, s)| s.shard == shard)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
                .expect("overfull shard has a victim");
            self.slots.remove(&victim);
            self.evictions += 1;
            return Some(victim);
        }
        None
    }

    fn export_keys(&self) -> Vec<String> {
        self.slots.keys().cloned().collect()
    }
}

fn probe_name(probe: &Probe) -> &'static str {
    match probe {
        Probe::Served(_) => "served",
        Probe::Degraded => "degraded",
        Probe::Miss => "miss",
    }
}

fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (0usize..12, prop_oneof![Just(false), Just(true)], 0u64..500).prop_map(
            |(key, proven, budget_ms)| Op::Insert {
                key,
                proven,
                budget_ms,
            }
        ),
        (0usize..12, 0u64..500).prop_map(|(key, remaining_ms)| Op::Probe { key, remaining_ms }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every probe outcome, eviction victim, counter, and the final
    /// export agree between the sharded cache and the single-map model —
    /// across shard counts including the degenerate single-shard config
    /// (which is the old global-map cache).
    #[test]
    fn sharded_cache_matches_single_map_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        capacity in 1usize..16,
        shards in 1usize..8,
    ) {
        let cache = ShardedCache::new(capacity, shards);
        let mut model = Model::new(capacity, shards);

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert { key, proven, budget_ms } => {
                    let key = format!("key-{key:02}");
                    let evicted = cache.insert(key.clone(), entry(proven, budget_ms));
                    let expected = model.insert(&key, proven, budget_ms);
                    prop_assert_eq!(
                        evicted, expected,
                        "step {}: eviction victims diverge", step
                    );
                }
                Op::Probe { key, remaining_ms } => {
                    let key = format!("key-{key:02}");
                    let got = cache.probe(&key, Duration::from_millis(remaining_ms));
                    let expected = model.probe(&key, remaining_ms);
                    prop_assert_eq!(
                        probe_name(&got), expected,
                        "step {}: probe outcomes diverge on {}", step, key
                    );
                    // A served entry is byte-equal to what the model
                    // says was inserted (proven flag and budget).
                    if let Probe::Served(served) = got {
                        let slot = &model.slots[&key];
                        prop_assert_eq!(served.report.proven, slot.proven);
                        prop_assert_eq!(
                            served.budget,
                            Duration::from_millis(slot.budget_ms)
                        );
                    }
                }
            }
        }

        let exported: Vec<String> = cache.export().into_iter().map(|(k, _)| k).collect();
        prop_assert_eq!(exported, model.export_keys(), "final resident sets diverge");
        let detail = cache.detail();
        prop_assert_eq!(detail.hits, model.hits);
        prop_assert_eq!(detail.misses, model.misses);
        prop_assert_eq!(detail.insertions, model.insertions);
        prop_assert_eq!(detail.evictions, model.evictions);
        prop_assert_eq!(detail.entries, model.slots.len() as u64);
    }
}
