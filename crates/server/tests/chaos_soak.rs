//! Chaos soak: drive the real `rrf-serve` binary through the `rrf-chaos`
//! proxy under Poisson load — seeded disconnects, request corruption,
//! torn writes, stalls, delays — and demand zero invariant violations:
//!
//! * every placement the daemon accepts verifies against the spec the
//!   client sent (transit-corrupted requests are re-checked over a clean
//!   connection before being attributed to the proxy, not the server);
//! * no worker dies (`workers_alive` full, `worker_panics == 0`);
//! * journal replay after a SIGKILL is bit-identical — the session
//!   digest after restart equals the digest before the crash;
//! * goodput stays bounded: under this load profile most requests must
//!   still succeed once the retrying client has done its job.
//!
//! Everything is seeded (`RRF_CHAOS_SEED` overrides) so a failing run
//! can be replayed with the same injection sequence.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rrf_bench::workload::{small_region_spec, stream_rng, PoissonArrivals};
use rrf_chaos::ChaosConfig;
use rrf_client::{Client, ClientConfig, MutationOutcome};
use rrf_flow::{resolve_module, FlowReport, FlowSpec, ModuleEntry, PlacerSettings};
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_server::{Request, Response};

const WORKERS: usize = 2;
const CLIENTS: u64 = 3;
const REQUESTS_PER_CLIENT: u64 = 18;
const PLACE_SPECS: u64 = 5;
const DEADLINE_MS: u64 = 2_000;

fn soak_seed() -> u64 {
    std::env::var("RRF_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

struct Daemon {
    child: Child,
    addr: std::net::SocketAddr,
}

/// Spawn `rrf-serve` on an ephemeral port with a journal and parse the
/// bound address from its startup line.
fn spawn_daemon(journal: &std::path::Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rrf-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &WORKERS.to_string(),
            "--queue",
            "8",
            "--deadline-ms",
            &DEADLINE_MS.to_string(),
            "--journal",
            journal.to_str().unwrap(),
            "--journal-fsync-every",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rrf-serve");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read startup line");
    let addr = line
        .trim()
        .strip_prefix("rrf-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .parse()
        .expect("parse bound address");
    Daemon { child, addr }
}

fn wait_for_exit(child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        assert!(Instant::now() < deadline, "daemon did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn place_spec(seed: u64) -> FlowSpec {
    let workload = generate_workload(&WorkloadSpec::small(4, seed));
    FlowSpec {
        region: small_region_spec(),
        modules: workload
            .modules
            .into_iter()
            .map(|m| ModuleEntry {
                name: m.name,
                shapes: m.shapes,
                netlist: None,
            })
            .collect(),
        placer: PlacerSettings::default(),
    }
}

/// Does the report satisfy the spec? (Same checks as the e2e suite's
/// `assert_verified`, as a predicate.)
fn verifies(spec: &FlowSpec, report: &FlowReport) -> bool {
    if !report.feasible {
        return false;
    }
    let Ok(region) = spec.region.build() else {
        return false;
    };
    let modules: Vec<_> = match spec.modules.iter().map(resolve_module).collect() {
        Ok(modules) => modules,
        Err(_) => return false,
    };
    let Some(plan) = report.floorplan.as_ref() else {
        return false;
    };
    rrf_core::verify::verify(&region, &modules, plan).is_empty()
        && report.placements.len() == spec.modules.len()
        && report
            .placements
            .iter()
            .zip(&spec.modules)
            .all(|(p, m)| p.name == m.name)
}

#[derive(Default)]
struct LoadOutcome {
    placed_ok: u64,
    /// Responses attributable to transit corruption of the request
    /// (error echo, id mismatch, or a placement for a mutated spec that
    /// re-verified clean over a direct connection).
    corruption_artifacts: u64,
    /// `call` gave up: retries exhausted on overload or transport.
    gave_up: u64,
    attempts: u64,
}

/// One closed-loop client: Poisson-gapped `place` requests through the
/// chaos proxy, re-checking any suspicious response over `direct_addr`.
fn run_load_client(
    proxy_addr: String,
    direct_addr: String,
    client_idx: u64,
    seed: u64,
) -> LoadOutcome {
    let mut out = LoadOutcome::default();
    let mut client = Client::new(ClientConfig {
        addr: proxy_addr,
        request_timeout: Duration::from_secs(10),
        max_retries: 8,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_secs(2),
        seed: seed ^ client_idx,
        ..ClientConfig::default()
    });
    let mut rng = stream_rng(seed.wrapping_add(client_idx));
    let arrivals = PoissonArrivals { mean_gap: 15.0 };
    for i in 0..REQUESTS_PER_CLIENT {
        std::thread::sleep(Duration::from_millis(arrivals.next_gap(&mut rng)));
        out.attempts += 1;
        let id = client_idx * 1_000_000 + i + 1;
        let spec = place_spec((client_idx + i) % PLACE_SPECS);
        let request = Request::Place {
            id,
            spec: spec.clone(),
            deadline_ms: Some(DEADLINE_MS),
        };
        match client.call(&request) {
            Ok(Response::Placed {
                id: got, report, ..
            }) if got == id && verifies(&spec, &report) => out.placed_ok += 1,
            Ok(other) => {
                // Corruption can mutate the request in transit and still
                // parse: the daemon honestly serves a spec the client
                // never sent (error echo, id change, or a "wrong"
                // placement). Before blaming the server, replay the
                // *identical* request over a clean connection — that one
                // must verify, or it is a real invariant violation.
                let mut direct = Client::connect(direct_addr.clone());
                match direct.call(&request) {
                    Ok(Response::Placed {
                        id: got, report, ..
                    }) if got == id && verifies(&spec, &report) => {
                        out.corruption_artifacts += 1;
                    }
                    Ok(clean) => panic!(
                        "invariant violation: direct replay of request {id} \
                         did not produce a verified placement; chaos path gave \
                         {other:?}, clean path gave {clean:?}"
                    ),
                    Err(e) => panic!("direct replay of request {id} failed: {e}"),
                }
            }
            Err(_) => out.gave_up += 1,
        }
    }
    out
}

#[test]
fn chaos_soak_zero_invariant_violations() {
    let seed = soak_seed();
    let dir = std::env::temp_dir().join(format!("rrf-chaos-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.ndjson");
    let _ = std::fs::remove_file(&journal);

    let mut daemon = spawn_daemon(&journal);
    let mut proxy = rrf_chaos::start(ChaosConfig {
        upstream: daemon.addr.to_string(),
        seed,
        disconnect_prob: 0.01,
        corrupt_prob: 0.02,
        torn_write_prob: 0.08,
        stall_prob: 0.02,
        stall_ms: 120,
        delay_prob: 0.10,
        delay_ms_max: 8,
        ..ChaosConfig::default()
    })
    .expect("start chaos proxy");
    let proxy_addr = proxy.addr().to_string();
    let direct_addr = daemon.addr.to_string();

    // A journaled session, opened over a clean connection; its mutating
    // traffic goes through the proxy via digest-compare resume.
    let mut direct = Client::connect(direct_addr.clone());
    let session = match direct.call(&Request::OpenSession {
        id: 1,
        region: small_region_spec(),
    }) {
        Ok(Response::SessionOpened { session, .. }) => session,
        other => panic!("open_session failed: {other:?}"),
    };

    // Load phase: place clients through the proxy, plus one mutating
    // client inserting into the session through the proxy.
    let mut handles = Vec::new();
    for client_idx in 0..CLIENTS {
        let proxy_addr = proxy_addr.clone();
        let direct_addr = direct_addr.clone();
        handles.push(std::thread::spawn(move || {
            run_load_client(proxy_addr, direct_addr, client_idx, seed)
        }));
    }
    let mutator = {
        let proxy_addr = proxy_addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::new(ClientConfig {
                addr: proxy_addr,
                request_timeout: Duration::from_secs(10),
                max_retries: 8,
                seed,
                ..ClientConfig::default()
            });
            let mut applied = 0u64;
            for i in 0..12u64 {
                let request = Request::Insert {
                    id: 10_000 + i,
                    session,
                    module: rrf_bench::workload::small_online_module(i),
                };
                match client.call_mutating(session, &request) {
                    Ok(MutationOutcome::Responded(response)) => match *response {
                        Response::Inserted { slot, .. } => applied += u64::from(slot.is_some()),
                        other => panic!("unexpected insert reply: {other:?}"),
                    },
                    // Applied-but-response-lost is exactly what the
                    // digest compare is for; it still counts as applied.
                    Ok(MutationOutcome::AppliedNoResponse { .. }) => applied += 1,
                    Err(e) => panic!("mutating insert {i} failed terminally: {e}"),
                }
            }
            applied
        })
    };

    let mut totals = LoadOutcome::default();
    for handle in handles {
        let out = handle.join().expect("load client panicked");
        totals.placed_ok += out.placed_ok;
        totals.corruption_artifacts += out.corruption_artifacts;
        totals.gave_up += out.gave_up;
        totals.attempts += out.attempts;
    }
    let inserts_applied = mutator.join().expect("mutator panicked");
    proxy.stop();

    // Bounded shed/goodput: the retrying client must convert chaos into
    // mostly-successful calls — demand at least half the attempts landed
    // as verified placements, and that the harness actually injected.
    let stats = proxy.stats();
    assert!(
        stats.disconnects + stats.corrupted_bytes + stats.torn_writes + stats.stalls > 0,
        "chaos proxy injected nothing — soak is vacuous: {stats:?}"
    );
    assert!(
        totals.placed_ok * 2 >= totals.attempts,
        "goodput collapsed under chaos: {} verified of {} attempts \
         ({} gave up, {} corruption artifacts)",
        totals.placed_ok,
        totals.attempts,
        totals.gave_up,
        totals.corruption_artifacts
    );
    assert!(inserts_applied > 0, "no mutating op survived the proxy");

    // Worker invariants, straight from the daemon.
    let server_stats = match direct.call(&Request::Stats { id: 2 }) {
        Ok(Response::Stats { stats, .. }) => stats,
        other => panic!("stats failed: {other:?}"),
    };
    assert_eq!(server_stats.worker_panics, 0, "a worker panicked");
    assert_eq!(
        server_stats.workers_alive, WORKERS as u64,
        "worker pool not full"
    );

    // Crash-recovery invariant: SIGKILL (no snapshot, no graceful path),
    // restart on the same journal, demand a bit-identical session.
    let digest_before = direct.session_digest(session).expect("digest before kill");
    daemon.child.kill().expect("kill daemon");
    wait_for_exit(&mut daemon.child);

    let mut recovered = spawn_daemon(&journal);
    let mut direct = Client::connect(recovered.addr.to_string());
    let digest_after = direct
        .session_digest(session)
        .expect("digest after recover");
    assert_eq!(
        digest_before, digest_after,
        "journal replay diverged from pre-crash state"
    );

    recovered.child.kill().expect("kill recovered daemon");
    wait_for_exit(&mut recovered.child);
    let _ = std::fs::remove_dir_all(&dir);
}
