//! The daemon's wire protocol: newline-delimited JSON, one request or
//! response object per line.
//!
//! Every request carries a client-chosen `id` echoed in the response, so
//! clients may correlate replies however they like (the daemon itself
//! answers each connection's requests in order). **Id 0 is reserved**:
//! when a line is so malformed that no id can be recovered from it, the
//! error response carries id 0 — clients that correlate by id must number
//! their requests from 1. For lines that parse as JSON but not as a
//! request, the daemon extracts the `id` field best-effort and echoes it
//! in the error. The payload types are the
//! flow's own job/result types ([`rrf_flow::spec`], [`rrf_flow::report`]),
//! so a job file accepted by the `rrf-flow` batch CLI is exactly the
//! `spec` of a `place` request.

use rrf_core::RepairReport;
use rrf_fabric::Fault;
use rrf_flow::{FlowReport, FlowSpec, ModuleEntry, PlacedModuleReport, RegionSpec};
use rrf_sched::{Reservation, SchedStats, TaskSpec};
use serde::{Deserialize, Serialize};

use crate::stats::{DetailStats, ServerStats};

/// A client request. On the wire: `{"type": "place", "id": 1, ...}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Request {
    /// One-shot placement of a full job spec, subject to a deadline.
    Place {
        id: u64,
        spec: FlowSpec,
        /// Wall-clock deadline in milliseconds, measured from the moment
        /// the daemon accepts the request (queue wait counts). `None` =
        /// the daemon's default.
        #[serde(default)]
        deadline_ms: Option<u64>,
    },
    /// Static analysis of a full job spec — dead/duplicate/dominated
    /// alternatives, capacity bounds, well-formedness — with zero solving
    /// (see `rrf-analyze`). Never consumes solver budget.
    Analyze { id: u64, spec: FlowSpec },
    /// Open a stateful online session over a live region.
    OpenSession { id: u64, region: RegionSpec },
    /// Insert a module into a session (online first fit).
    Insert {
        id: u64,
        session: u64,
        module: ModuleEntry,
    },
    /// Remove a live module from a session.
    Remove { id: u64, session: u64, slot: u64 },
    /// Defragment a session's region (no-break repack).
    Defrag { id: u64, session: u64 },
    /// Close a session and free its region state.
    CloseSession { id: u64, session: u64 },
    /// Mark fabric tiles of a session's region defective. Modules whose
    /// placement overlaps the fault stay resident (broken) until a
    /// `repair` relocates or evicts them.
    InjectFault { id: u64, session: u64, fault: Fault },
    /// Restore previously faulted tiles to their healthy resource kinds.
    ClearFault { id: u64, session: u64, fault: Fault },
    /// Relocate every fault-displaced module (greedy first, then a full
    /// repack under the budget), evicting whatever cannot be saved.
    Repair {
        id: u64,
        session: u64,
        /// Wall-clock budget for the escalation phase; `None` = the
        /// daemon's default deadline.
        #[serde(default)]
        budget_ms: Option<u64>,
    },
    /// Submit a task — a module with design alternatives plus
    /// duration/deadline/priority — to the session's spatio-temporal
    /// scheduler (deadline-aware admission; see `rrf-sched`). The
    /// scheduler runs on logical time driven by `schedule_status`.
    SubmitTask {
        id: u64,
        session: u64,
        task: TaskSpec,
    },
    /// Cancel a scheduled task by the id `task_submitted` returned.
    CancelTask { id: u64, session: u64, task: u64 },
    /// Fetch the session's schedule (ledger, queue, counters), optionally
    /// advancing its logical clock first. Clock advances are journaled;
    /// pure reads are not.
    ScheduleStatus {
        id: u64,
        session: u64,
        #[serde(default)]
        advance_to: Option<u64>,
    },
    /// Dump a session's durable state — slots, placements, and an
    /// occupancy-grid digest — for operators and recovery tests.
    DumpSession { id: u64, session: u64 },
    /// Adopt a dead peer's journal: load the file at `path`, replay it
    /// through the standard recovery path, and graft the recovered
    /// sessions into this daemon under fresh session ids. The response
    /// maps each journal session id to its adopted local id. Used by
    /// `rrf-router` to fail pinned sessions over to a standby backend;
    /// the caller is responsible for ensuring the journal's owner is
    /// actually dead (adopting a live backend's journal forks state).
    AdoptJournal { id: u64, path: String },
    /// Deliberately panic the handling worker (panic-isolation testing;
    /// the worker must survive and answer with an internal error).
    DebugPanic { id: u64 },
    /// Fetch the daemon's counters and latency summary.
    Stats { id: u64 },
    /// Fetch the place pipeline's per-phase latency histograms, ladder
    /// outcomes, and analyzer diagnostic counts (see
    /// [`crate::stats::DetailStats`]).
    StatsDetail { id: u64 },
    /// Liveness check.
    Ping { id: u64 },
}

impl Request {
    /// The client-chosen correlation id.
    pub fn id(&self) -> u64 {
        match *self {
            Request::Place { id, .. }
            | Request::Analyze { id, .. }
            | Request::OpenSession { id, .. }
            | Request::Insert { id, .. }
            | Request::Remove { id, .. }
            | Request::Defrag { id, .. }
            | Request::CloseSession { id, .. }
            | Request::InjectFault { id, .. }
            | Request::ClearFault { id, .. }
            | Request::Repair { id, .. }
            | Request::SubmitTask { id, .. }
            | Request::CancelTask { id, .. }
            | Request::ScheduleStatus { id, .. }
            | Request::DumpSession { id, .. }
            | Request::AdoptJournal { id, .. }
            | Request::DebugPanic { id }
            | Request::Stats { id }
            | Request::StatsDetail { id }
            | Request::Ping { id } => id,
        }
    }
}

/// How a returned floorplan was produced — the degradation ladder's rungs,
/// best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PlaceMethod {
    /// CP search finished and proved optimality within the deadline.
    Optimal,
    /// CP search hit the deadline; its best incumbent is returned.
    CpIncumbent,
    /// Budget was tight: LNS-improved greedy seed.
    Lns,
    /// Budget was exhausted: raw bottom-left greedy floorplan.
    BottomLeft,
    /// No floorplan exists (or none was found): `report.feasible` is
    /// false, and `report.proven` says whether infeasibility was proved.
    Infeasible,
}

/// One recovered session in a [`Response::JournalAdopted`] reply: the
/// session id the journal knew (`from`) and the fresh id the adopting
/// daemon assigned (`to`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdoptedSession {
    pub from: u64,
    pub to: u64,
}

/// One live slot in a [`Response::SessionState`] dump.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotState {
    pub slot: u64,
    pub name: String,
    pub shape: usize,
    pub x: i32,
    pub y: i32,
}

/// A daemon response. On the wire: `{"type": "placed", "id": 1, ...}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Response {
    /// Answer to [`Request::Place`]: always a verified floorplan (or an
    /// infeasibility report) — deadline pressure degrades the method, not
    /// the contract.
    Placed {
        id: u64,
        method: PlaceMethod,
        /// Whether the result came from the placement cache.
        cache_hit: bool,
        report: FlowReport,
        /// Wall-clock latency of this request, queue wait included.
        elapsed_ms: u64,
    },
    /// Answer to [`Request::Analyze`]: every diagnostic the static
    /// analyzer found, in its deterministic order, plus the summary
    /// counts. `proven_infeasible` means a `place` of the same spec would
    /// be rejected by the preflight.
    Analysis {
        id: u64,
        diagnostics: Vec<rrf_analyze::Diagnostic>,
        proven_infeasible: bool,
        shapes_total: u64,
        shapes_prunable: u64,
        elapsed_ms: u64,
    },
    SessionOpened {
        id: u64,
        session: u64,
    },
    /// Answer to [`Request::Insert`]; `slot` is `None` when the region
    /// cannot currently fit the module (a rejection, not an error).
    Inserted {
        id: u64,
        session: u64,
        slot: Option<u64>,
        placement: Option<PlacedModuleReport>,
        /// Live utilization of the session's region after the operation.
        utilization: f64,
    },
    Removed {
        id: u64,
        session: u64,
        removed: bool,
        utilization: f64,
    },
    Defragged {
        id: u64,
        session: u64,
        /// Modules whose placement changed (0 = repack failed or no-op).
        moved: u64,
        utilization: f64,
    },
    SessionClosed {
        id: u64,
        session: u64,
        closed: bool,
    },
    /// Answer to [`Request::InjectFault`].
    FaultInjected {
        id: u64,
        session: u64,
        /// Tiles that newly lost a placeable resource.
        tiles: u64,
        /// Live slots whose placement now overlaps a faulted tile; they
        /// need a `repair` to become healthy again.
        displaced: Vec<u64>,
        /// Total defective tiles in the session's region.
        total_faults: u64,
    },
    /// Answer to [`Request::ClearFault`].
    FaultCleared {
        id: u64,
        session: u64,
        /// Tiles restored to their healthy resource kinds.
        tiles: u64,
        total_faults: u64,
    },
    /// Answer to [`Request::Repair`]: the full per-module outcome.
    Repaired {
        id: u64,
        session: u64,
        report: RepairReport,
        utilization: f64,
    },
    /// Answer to [`Request::SubmitTask`]; `task` is `None` when admission
    /// rejected it (`outcome` names the reason — a rejection, not an
    /// error).
    TaskSubmitted {
        id: u64,
        session: u64,
        task: Option<u64>,
        outcome: String,
        queue_depth: u64,
        /// The session scheduler's logical clock.
        now: u64,
    },
    /// Answer to [`Request::CancelTask`].
    TaskCancelled {
        id: u64,
        session: u64,
        /// What the cancel hit: `queued`, `reserved`, `active`, `unknown`.
        outcome: String,
        now: u64,
    },
    /// Answer to [`Request::ScheduleStatus`]: the committed schedule.
    Schedule {
        id: u64,
        session: u64,
        now: u64,
        queue_depth: u64,
        /// Hex digest of clock + queue + ledger — equal digests mean
        /// bit-identical schedules (the recovery tests' currency).
        digest: String,
        reservations: Vec<Reservation>,
        stats: SchedStats,
    },
    /// Answer to [`Request::DumpSession`].
    SessionState {
        id: u64,
        session: u64,
        next_slot: u64,
        /// Hex digest of the occupancy grid — equal digests mean
        /// bit-identical per-tile occupation (hex, because JSON numbers
        /// cannot carry a full u64).
        grid_digest: String,
        /// Defective tiles currently in the region.
        total_faults: u64,
        slots: Vec<SlotState>,
    },
    /// Answer to [`Request::AdoptJournal`]: the old-id → new-id mapping
    /// of every session grafted in, plus replay defects (torn tails,
    /// divergences) that were survived, in the recovery path's
    /// deterministic order.
    JournalAdopted {
        id: u64,
        adopted: Vec<AdoptedSession>,
        errors: Vec<String>,
    },
    Stats {
        id: u64,
        stats: ServerStats,
    },
    /// Answer to [`Request::StatsDetail`].
    StatsDetail {
        id: u64,
        detail: DetailStats,
    },
    Pong {
        id: u64,
    },
    /// Load was shed *before* the request executed: the bounded queue was
    /// full, the estimated queue wait already exceeded the request's
    /// deadline, or the daemon is at its connection cap. Because the
    /// request never ran, retrying is always safe — even for
    /// state-mutating operations. `retry_after_ms` is the daemon's
    /// backpressure hint: roughly how long the current backlog needs to
    /// drain, derived from the observed solve-latency histogram.
    Overloaded {
        id: u64,
        message: String,
        retry_after_ms: u64,
    },
    /// The request could not be served: malformed input, unknown session,
    /// or an internal failure (`message` says which). `id` is the
    /// request's own id when it could be recovered, or the reserved
    /// sentinel 0 for lines too malformed to carry one (see the module
    /// docs). Unlike [`Response::Overloaded`], an error carries no
    /// promise that the request did not execute.
    Error {
        id: u64,
        message: String,
    },
}

impl Response {
    /// The correlation id echoed from the request.
    pub fn id(&self) -> u64 {
        match *self {
            Response::Placed { id, .. }
            | Response::Analysis { id, .. }
            | Response::SessionOpened { id, .. }
            | Response::Inserted { id, .. }
            | Response::Removed { id, .. }
            | Response::Defragged { id, .. }
            | Response::SessionClosed { id, .. }
            | Response::FaultInjected { id, .. }
            | Response::FaultCleared { id, .. }
            | Response::Repaired { id, .. }
            | Response::TaskSubmitted { id, .. }
            | Response::TaskCancelled { id, .. }
            | Response::Schedule { id, .. }
            | Response::SessionState { id, .. }
            | Response::JournalAdopted { id, .. }
            | Response::Stats { id, .. }
            | Response::StatsDetail { id, .. }
            | Response::Pong { id }
            | Response::Overloaded { id, .. }
            | Response::Error { id, .. } => id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_flow::DeviceSpec;

    #[test]
    fn request_wire_format_is_internally_tagged() {
        let req = Request::Stats { id: 7 };
        let json = serde_json::to_string(&req).unwrap();
        assert_eq!(json, r#"{"type":"stats","id":7}"#);
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn place_request_roundtrips_with_default_deadline() {
        let json = r#"{"type":"place","id":3,"spec":{"region":{"device":
            {"kind":"homogeneous","width":8,"height":4}},"modules":[]}}"#
            .replace('\n', "");
        let req: Request = serde_json::from_str(&json).unwrap();
        match &req {
            Request::Place {
                id,
                spec,
                deadline_ms,
            } => {
                assert_eq!(*id, 3);
                assert_eq!(*deadline_ms, None);
                assert!(matches!(
                    spec.region.device,
                    DeviceSpec::Homogeneous {
                        width: 8,
                        height: 4
                    }
                ));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn stats_detail_wire_format() {
        let req = Request::StatsDetail { id: 12 };
        let json = serde_json::to_string(&req).unwrap();
        assert_eq!(json, r#"{"type":"stats_detail","id":12}"#);
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);
        let resp = Response::StatsDetail {
            id: 12,
            detail: DetailStats::default(),
        };
        assert_eq!(resp.id(), 12);
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.starts_with(r#"{"type":"stats_detail","id":12"#));
    }

    #[test]
    fn fault_requests_roundtrip() {
        let req = Request::InjectFault {
            id: 9,
            session: 2,
            fault: Fault::Column { x: 5 },
        };
        let json = serde_json::to_string(&req).unwrap();
        assert_eq!(
            json,
            r#"{"type":"inject_fault","id":9,"session":2,"fault":{"kind":"column","x":5}}"#
        );
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);

        // A repair without a budget picks up the daemon default.
        let req: Request = serde_json::from_str(r#"{"type":"repair","id":1,"session":2}"#).unwrap();
        assert_eq!(
            req,
            Request::Repair {
                id: 1,
                session: 2,
                budget_ms: None
            }
        );
    }

    #[test]
    fn sched_requests_roundtrip() {
        let json = r#"{"type":"submit_task","id":4,"session":1,"task":
            {"module":{"name":"m","shapes":[{"boxes":
            [{"dx":0,"dy":0,"w":2,"h":2,"resource":"Clb"}]}]},
            "duration":100,"deadline":500}}"#
            .replace('\n', "");
        let req: Request = serde_json::from_str(&json).unwrap();
        match &req {
            Request::SubmitTask { id, session, task } => {
                assert_eq!((*id, *session), (4, 1));
                assert_eq!(task.duration, 100);
                assert_eq!(task.deadline, Some(500));
                assert_eq!(task.arrival, 0, "arrival defaults on the wire");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // Status without an advance is a pure read.
        let req: Request =
            serde_json::from_str(r#"{"type":"schedule_status","id":5,"session":1}"#).unwrap();
        assert_eq!(
            req,
            Request::ScheduleStatus {
                id: 5,
                session: 1,
                advance_to: None
            }
        );
        let cancel = Request::CancelTask {
            id: 6,
            session: 1,
            task: 3,
        };
        let json = serde_json::to_string(&cancel).unwrap();
        assert_eq!(
            json,
            r#"{"type":"cancel_task","id":6,"session":1,"task":3}"#
        );
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), cancel);
    }

    #[test]
    fn overloaded_response_wire_format() {
        let resp = Response::Overloaded {
            id: 9,
            message: "server overloaded: request queue full".to_string(),
            retry_after_ms: 120,
        };
        assert_eq!(resp.id(), 9);
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(
            json,
            r#"{"type":"overloaded","id":9,"message":"server overloaded: request queue full","retry_after_ms":120}"#
        );
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Overloaded {
                id, retry_after_ms, ..
            } => {
                assert_eq!(id, 9);
                assert_eq!(retry_after_ms, 120);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn method_serializes_as_snake_case_string() {
        assert_eq!(
            serde_json::to_string(&PlaceMethod::BottomLeft).unwrap(),
            r#""bottom_left""#
        );
        let m: PlaceMethod = serde_json::from_str(r#""cp_incumbent""#).unwrap();
        assert_eq!(m, PlaceMethod::CpIncumbent);
    }
}
