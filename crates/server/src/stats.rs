//! Daemon counters and the solve-time histogram, snapshotted by the
//! `stats` request — plus the per-phase latency detail behind the
//! `stats_detail` request.

use std::collections::BTreeMap;

use rrf_trace::{Histogram, WALL_US_BOUNDS};
use serde::{Deserialize, Serialize};

use crate::protocol::PlaceMethod;

/// Upper bucket bounds (exclusive) of the solve-time histogram, in
/// milliseconds; a final unbounded bucket catches everything slower, so
/// the histogram has `HISTOGRAM_BOUNDS_MS.len() + 1` buckets.
pub const HISTOGRAM_BOUNDS_MS: [u64; 8] = [1, 3, 10, 30, 100, 300, 1000, 3000];

/// Counters over the daemon's lifetime. Invariants the daemon maintains
/// (and the end-to-end tests assert):
///
/// * `place_requests == cache_hits + cache_misses` (a bypassed degraded
///   entry counts as a miss, and additionally as `cache_bypass_degraded`);
/// * `placed_optimal + placed_cp_incumbent + placed_lns +
///   placed_bottom_left + infeasible <= cache_misses` (spec errors make
///   up the difference);
/// * `online_inserts == online_accepted + online_rejected`;
/// * the histogram counts one entry per cache-missing place request that
///   reached the solver — preflight-rejected requests never reach it, so
///   `preflight_rejects` adds nothing to the histogram;
/// * `analyze_us_total` grows whenever the analyzer runs: on every
///   `analyze` request and on every cache-missing `place` preflight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// The daemon's `--backend-id` (empty when unset). A cluster router
    /// uses it to verify which backend answered a probe.
    #[serde(default)]
    pub backend_id: String,
    /// Requests accepted but not yet answered (a gauge, like
    /// `conns_open`) — the router's least-loaded routing signal.
    #[serde(default)]
    pub pending: u64,
    /// Every request line received, parseable or not.
    pub requests: u64,
    pub place_requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Cache lookups that found a degraded/unproven entry but recomputed
    /// because the request's deadline allowed a better answer (these also
    /// count as `cache_misses`).
    pub cache_bypass_degraded: u64,
    /// Entries evicted from the sharded cache (per-shard LRU overflow);
    /// a gauge copied from the cache at snapshot time.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Cache-missing `place` requests that joined another request's
    /// in-flight solve for the same canonical key instead of running the
    /// solver themselves (these also count as `cache_misses`).
    #[serde(default)]
    pub coalesced_joins: u64,
    /// Solves whose result was shared with at least one coalesced joiner
    /// (one per duplicate burst, however wide the burst).
    #[serde(default)]
    pub coalesced_leader_solves: u64,
    /// Entries warm-loaded from the `--cache-persist` snapshot at start.
    #[serde(default)]
    pub cache_persist_loaded: u64,
    /// Snapshot defects at warm-load (torn tail, unknown version, short
    /// file): loading stopped at the last sound record.
    #[serde(default)]
    pub cache_load_errors: u64,
    /// Proven-optimal placements within deadline.
    pub placed_optimal: u64,
    /// CP incumbents returned at the deadline (degraded).
    pub placed_cp_incumbent: u64,
    /// LNS-over-greedy fallbacks (degraded).
    pub placed_lns: u64,
    /// Raw greedy fallbacks (most degraded).
    pub placed_bottom_left: u64,
    /// Place requests with no floorplan (proven or budget-exhausted).
    pub infeasible: u64,
    /// Place requests rejected by the static-analysis preflight (proven
    /// infeasible before any solver budget was spent).
    #[serde(default)]
    pub preflight_rejects: u64,
    /// Design alternatives stripped from solver models by the static
    /// prune (`PlacerConfig::analyze_prune`), cumulative.
    #[serde(default)]
    pub shapes_pruned: u64,
    /// `analyze` protocol requests served.
    #[serde(default)]
    pub analyze_requests: u64,
    /// Cumulative analyzer wall time, microseconds (preflights included).
    #[serde(default)]
    pub analyze_us_total: u64,
    /// Requests refused because the bounded queue was full.
    pub rejected_backpressure: u64,
    /// `place` requests shed by deadline-aware admission control: the
    /// estimated queue wait already exceeded the request's deadline, so
    /// no solver budget was spent (also answered `overloaded`).
    #[serde(default)]
    pub shed_deadline: u64,
    /// Connections turned away at the `--max-conns` cap (each got one
    /// `overloaded` line and was closed).
    #[serde(default)]
    pub conns_rejected: u64,
    /// Connections currently open (a gauge, like `workers_alive`).
    #[serde(default)]
    pub conns_open: u64,
    /// Request lines rejected for exceeding the configured length cap
    /// (the rest of the oversized line is discarded, the connection
    /// survives).
    #[serde(default)]
    pub oversized_lines: u64,
    /// Connections force-closed because a write stalled past the
    /// configured write timeout (slow or dead client).
    #[serde(default)]
    pub slow_client_disconnects: u64,
    /// Requests refused because the daemon was draining for shutdown.
    #[serde(default)]
    pub rejected_draining: u64,
    /// Unparseable request lines.
    pub protocol_errors: u64,
    pub sessions_opened: u64,
    pub sessions_closed: u64,
    pub online_inserts: u64,
    pub online_accepted: u64,
    pub online_rejected: u64,
    pub online_removals: u64,
    pub online_defrags: u64,
    /// Faults injected into session regions.
    #[serde(default)]
    pub faults_injected: u64,
    /// Faults cleared from session regions.
    #[serde(default)]
    pub faults_cleared: u64,
    /// Scheduler task submissions (`sched_admitted + sched_rejected`).
    #[serde(default)]
    pub sched_submits: u64,
    /// Submissions the scheduler admitted.
    #[serde(default)]
    pub sched_admitted: u64,
    /// Submissions admission control turned away (deadline unmeetable,
    /// unplaceable, or queue full).
    #[serde(default)]
    pub sched_rejected: u64,
    /// `cancel_task` requests that reached a scheduler.
    #[serde(default)]
    pub sched_cancels: u64,
    /// Journaled logical-clock advances via `schedule_status`.
    #[serde(default)]
    pub sched_advances: u64,
    /// Repair passes run.
    #[serde(default)]
    pub repairs: u64,
    /// Displaced modules relocated by repair.
    #[serde(default)]
    pub repaired_relocated: u64,
    /// Displaced modules evicted by repair.
    #[serde(default)]
    pub repaired_evicted: u64,
    /// Handler panics caught by the worker pool (the worker survives and
    /// answers with an internal error).
    #[serde(default)]
    pub worker_panics: u64,
    /// Workers currently alive — stays equal to the configured pool size
    /// even across handler panics.
    #[serde(default)]
    pub workers_alive: u64,
    /// Records appended to the journal over the daemon's lifetime.
    #[serde(default)]
    pub journal_records: u64,
    /// Journal appends that failed (the daemon keeps serving; durability
    /// of the failed record is lost).
    #[serde(default)]
    pub journal_errors: u64,
    /// Journal compactions (snapshot rewrites).
    #[serde(default)]
    pub journal_compactions: u64,
    /// Sessions rebuilt from the journal at startup.
    #[serde(default)]
    pub recovered_sessions: u64,
    /// Sessions grafted in from a dead peer's journal via
    /// `adopt_journal` (failover; not counted as `recovered_sessions`).
    #[serde(default)]
    pub adopted_sessions: u64,
    /// Replay divergences and torn tails observed during recovery.
    #[serde(default)]
    pub recovery_errors: u64,
    /// Solve-time histogram: bucket `i` counts solves faster than
    /// [`HISTOGRAM_BOUNDS_MS`]`[i]` ms (and at least the previous bound);
    /// the last bucket is unbounded.
    pub solve_ms_histogram: Vec<u64>,
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats {
            backend_id: String::new(),
            pending: 0,
            requests: 0,
            place_requests: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_bypass_degraded: 0,
            cache_evictions: 0,
            coalesced_joins: 0,
            coalesced_leader_solves: 0,
            cache_persist_loaded: 0,
            cache_load_errors: 0,
            placed_optimal: 0,
            placed_cp_incumbent: 0,
            placed_lns: 0,
            placed_bottom_left: 0,
            infeasible: 0,
            preflight_rejects: 0,
            shapes_pruned: 0,
            analyze_requests: 0,
            analyze_us_total: 0,
            rejected_backpressure: 0,
            shed_deadline: 0,
            conns_rejected: 0,
            conns_open: 0,
            oversized_lines: 0,
            slow_client_disconnects: 0,
            rejected_draining: 0,
            protocol_errors: 0,
            sessions_opened: 0,
            sessions_closed: 0,
            online_inserts: 0,
            online_accepted: 0,
            online_rejected: 0,
            online_removals: 0,
            online_defrags: 0,
            faults_injected: 0,
            faults_cleared: 0,
            sched_submits: 0,
            sched_admitted: 0,
            sched_rejected: 0,
            sched_cancels: 0,
            sched_advances: 0,
            repairs: 0,
            repaired_relocated: 0,
            repaired_evicted: 0,
            worker_panics: 0,
            workers_alive: 0,
            journal_records: 0,
            journal_errors: 0,
            journal_compactions: 0,
            recovered_sessions: 0,
            adopted_sessions: 0,
            recovery_errors: 0,
            solve_ms_histogram: vec![0; HISTOGRAM_BOUNDS_MS.len() + 1],
        }
    }
}

impl ServerStats {
    /// Count one solve of the given duration into the histogram. The
    /// bucketing delegates to the shared [`rrf_trace::Histogram`] rule,
    /// which has the same semantics the inline code here used to: first
    /// bucket with `ms < bound`, else the unbounded overflow bucket — so
    /// the `stats` wire format is unchanged.
    pub fn record_solve_ms(&mut self, ms: u64) {
        let bucket = Histogram::bucket_index(&HISTOGRAM_BOUNDS_MS, ms);
        self.solve_ms_histogram[bucket] += 1;
    }

    /// Degraded placements: everything below the top rung of the ladder.
    pub fn fallbacks(&self) -> u64 {
        self.placed_cp_incumbent + self.placed_lns + self.placed_bottom_left
    }

    /// Total solves recorded in the histogram.
    pub fn solves(&self) -> u64 {
        self.solve_ms_histogram.iter().sum()
    }
}

/// One pipeline stage's latency summary in a `stats_detail` reply, in
/// microseconds. `buckets` are counts over [`rrf_trace::WALL_US_BOUNDS`]
/// plus one unbounded overflow bucket; the quantiles are the histogram's
/// bracketing estimates (upper bounds, capped at `max_us`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    pub count: u64,
    pub total_us: u64,
    pub max_us: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub buckets: Vec<u64>,
}

impl StageStats {
    fn from_histogram(h: &Histogram) -> StageStats {
        StageStats {
            count: h.count(),
            total_us: h.sum(),
            max_us: h.max(),
            p50_us: h.quantile(0.5).unwrap_or(0),
            p99_us: h.quantile(0.99).unwrap_or(0),
            buckets: h.counts().to_vec(),
        }
    }
}

/// How often each rung of the degradation ladder answered a
/// cache-missing `place` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LadderStats {
    pub optimal: u64,
    pub cp_incumbent: u64,
    pub lns: u64,
    pub bottom_left: u64,
    pub infeasible: u64,
    /// Requests whose remaining budget was already below the CP
    /// threshold, so rung 1 (exact search) was skipped outright.
    pub cp_skipped_tight_budget: u64,
}

/// The `stats_detail` reply: per-phase latency histograms of the place
/// pipeline, ladder outcomes, and analyzer diagnostic counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DetailStats {
    /// Per-phase latency summaries (µs), keyed by the same phase names
    /// the trace stream uses for its `solve.*` wall spans (minus the
    /// `solve.` prefix): `queue_wait`, `cache_probe`, `coalesce_wait`,
    /// `preflight`, `cp`, `lns`, `bottom_left`, `verify`, `other`.
    pub phases: BTreeMap<String, StageStats>,
    /// End-to-end `place` handling (µs). The phases tile this exactly:
    /// `sum(phases[*].total_us) == total.total_us`.
    pub total: StageStats,
    pub ladder: LadderStats,
    /// Analyzer diagnostics observed, by code — `analyze` requests and
    /// cache-missing `place` preflights both count.
    pub diagnostics_by_code: BTreeMap<String, u64>,
    /// Scheduler queue depth sampled after every mutating scheduler op
    /// (a gauge folded into a histogram; `max_us`/`p50_us` etc. read as
    /// depths, not microseconds).
    #[serde(default)]
    pub sched_queue_depth: StageStats,
    /// Deadline misses session schedulers accumulated during this run
    /// (expired in queue or killed by faults; recovery replay's
    /// historical misses are excluded).
    #[serde(default)]
    pub sched_deadline_misses: u64,
    /// Solver-only latency per cache-missing `place` request (µs) — the
    /// histogram the `overloaded` backpressure hints are derived from.
    #[serde(default)]
    pub solve_us: StageStats,
    /// The CP circuit breaker: current state plus transition counters
    /// (see `admission::Breaker`).
    #[serde(default)]
    pub breaker: crate::admission::BreakerStats,
    /// The sharded placement cache: per-shard hit/miss/eviction rows,
    /// single-flight coalescing counters, and persistence warm-load
    /// results (see `cache::shard`). Like `breaker`, this lives outside
    /// the collector; the `stats_detail` handler fills it in.
    #[serde(default)]
    pub cache: crate::cache::CacheDetail,
}

/// Internal aggregation behind [`DetailStats`]; lives in the daemon's
/// shared state under its own lock and is snapshotted per request.
#[derive(Default)]
pub struct DetailCollector {
    phases: BTreeMap<&'static str, Histogram>,
    total: Option<Histogram>,
    ladder: LadderStats,
    diagnostics_by_code: BTreeMap<String, u64>,
    sched_queue_depth: Option<Histogram>,
    sched_deadline_misses: u64,
    solve_us: Option<Histogram>,
}

/// Bucket bounds (exclusive) for the scheduler queue-depth gauge — depths
/// in tasks, not microseconds, so the wall-time bounds don't fit.
const QUEUE_DEPTH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

impl DetailCollector {
    /// Record one phase of one `place` request. `phase` may carry the
    /// trace stream's `solve.` span prefix; it is stripped for the key.
    pub fn record_phase(&mut self, phase: &'static str, us: u64) {
        let key = phase.strip_prefix("solve.").unwrap_or(phase);
        self.phases
            .entry(key)
            .or_insert_with(|| Histogram::new(WALL_US_BOUNDS))
            .record(us);
    }

    /// Record one request's end-to-end handling time.
    pub fn record_total(&mut self, us: u64) {
        self.total
            .get_or_insert_with(|| Histogram::new(WALL_US_BOUNDS))
            .record(us);
    }

    /// Record which ladder rung produced the answer.
    pub fn record_method(&mut self, method: PlaceMethod) {
        match method {
            PlaceMethod::Optimal => self.ladder.optimal += 1,
            PlaceMethod::CpIncumbent => self.ladder.cp_incumbent += 1,
            PlaceMethod::Lns => self.ladder.lns += 1,
            PlaceMethod::BottomLeft => self.ladder.bottom_left += 1,
            PlaceMethod::Infeasible => self.ladder.infeasible += 1,
        }
    }

    /// Record that the CP rung was skipped for lack of budget.
    pub fn record_cp_skipped(&mut self) {
        self.ladder.cp_skipped_tight_budget += 1;
    }

    /// Sample the scheduler queue depth after a mutating scheduler op.
    pub fn record_sched_queue_depth(&mut self, depth: u64) {
        self.sched_queue_depth
            .get_or_insert_with(|| Histogram::new(QUEUE_DEPTH_BOUNDS))
            .record(depth);
    }

    /// Count newly observed scheduler deadline misses.
    pub fn record_deadline_misses(&mut self, delta: u64) {
        self.sched_deadline_misses += delta;
    }

    /// Record one cache-missing `place` request's solver-only latency.
    pub fn record_solve_us(&mut self, us: u64) {
        self.solve_us
            .get_or_insert_with(|| Histogram::new(WALL_US_BOUNDS))
            .record(us);
    }

    /// Median observed solve latency (µs), the admission-control
    /// estimate; `None` until the first solve completes.
    pub fn solve_p50_us(&self) -> Option<u64> {
        self.solve_us.as_ref().and_then(|h| h.quantile(0.5))
    }

    /// Count one analyzer diagnostic by its code.
    pub fn record_diagnostic_code(&mut self, code: &str) {
        *self
            .diagnostics_by_code
            .entry(code.to_string())
            .or_insert(0) += 1;
    }

    /// Snapshot into the serializable reply shape. The breaker lives
    /// outside this collector (it is consulted on the hot solve path);
    /// the `stats_detail` handler fills `breaker` in afterwards.
    pub fn snapshot(&self) -> DetailStats {
        DetailStats {
            phases: self
                .phases
                .iter()
                .map(|(k, h)| ((*k).to_string(), StageStats::from_histogram(h)))
                .collect(),
            total: self
                .total
                .as_ref()
                .map(StageStats::from_histogram)
                .unwrap_or_default(),
            ladder: self.ladder,
            diagnostics_by_code: self.diagnostics_by_code.clone(),
            sched_queue_depth: self
                .sched_queue_depth
                .as_ref()
                .map(StageStats::from_histogram)
                .unwrap_or_default(),
            sched_deadline_misses: self.sched_deadline_misses,
            solve_us: self
                .solve_us
                .as_ref()
                .map(StageStats::from_histogram)
                .unwrap_or_default(),
            breaker: crate::admission::BreakerStats::default(),
            cache: crate::cache::CacheDetail::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let mut s = ServerStats::default();
        s.record_solve_ms(0);
        s.record_solve_ms(2);
        s.record_solve_ms(2999);
        s.record_solve_ms(3000);
        s.record_solve_ms(u64::MAX);
        assert_eq!(s.solve_ms_histogram[0], 1);
        assert_eq!(s.solve_ms_histogram[1], 1);
        assert_eq!(s.solve_ms_histogram[7], 1);
        assert_eq!(s.solve_ms_histogram[8], 2);
        assert_eq!(s.solves(), 5);
    }

    /// The migration guard: bucketing via the shared histogram type must
    /// reproduce the old inline `position(|&bound| ms < bound)` logic for
    /// every boundary, so the `stats` reply's `solve_ms_histogram` wire
    /// format is bit-compatible with pre-migration daemons.
    #[test]
    fn histogram_migration_is_backward_compatible() {
        let old_bucket = |ms: u64| {
            HISTOGRAM_BOUNDS_MS
                .iter()
                .position(|&bound| ms < bound)
                .unwrap_or(HISTOGRAM_BOUNDS_MS.len())
        };
        let mut samples = vec![0, u64::MAX];
        for &bound in &HISTOGRAM_BOUNDS_MS {
            samples.extend([bound - 1, bound, bound + 1]);
        }
        for ms in samples {
            let mut s = ServerStats::default();
            s.record_solve_ms(ms);
            let mut expected = vec![0u64; HISTOGRAM_BOUNDS_MS.len() + 1];
            expected[old_bucket(ms)] = 1;
            assert_eq!(s.solve_ms_histogram, expected, "ms={ms}");
        }
    }

    #[test]
    fn detail_collector_snapshot() {
        let mut c = DetailCollector::default();
        c.record_phase("solve.queue_wait", 50);
        c.record_phase("solve.queue_wait", 150);
        c.record_phase("cp", 5_000);
        c.record_total(5_200);
        c.record_method(PlaceMethod::Optimal);
        c.record_method(PlaceMethod::BottomLeft);
        c.record_cp_skipped();
        c.record_diagnostic_code("RRF003");
        c.record_diagnostic_code("RRF003");
        let d = c.snapshot();
        let qw = &d.phases["queue_wait"]; // prefix stripped
        assert_eq!(qw.count, 2);
        assert_eq!(qw.total_us, 200);
        assert_eq!(qw.max_us, 150);
        assert!(qw.p50_us >= 50 && qw.p50_us <= 150);
        assert_eq!(d.phases["cp"].count, 1);
        assert_eq!(d.total.count, 1);
        assert_eq!(d.total.total_us, 5_200);
        assert_eq!(d.ladder.optimal, 1);
        assert_eq!(d.ladder.bottom_left, 1);
        assert_eq!(d.ladder.cp_skipped_tight_budget, 1);
        assert_eq!(d.diagnostics_by_code["RRF003"], 2);
        // The reply roundtrips on the wire.
        let json = serde_json::to_string(&d).unwrap();
        let back: DetailStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn stats_json_roundtrip() {
        let mut s = ServerStats {
            requests: 10,
            placed_lns: 2,
            ..ServerStats::default()
        };
        s.record_solve_ms(50);
        let json = serde_json::to_string(&s).unwrap();
        let back: ServerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.fallbacks(), 2);
    }
}
