//! Daemon counters and the solve-time histogram, snapshotted by the
//! `stats` request.

use serde::{Deserialize, Serialize};

/// Upper bucket bounds (exclusive) of the solve-time histogram, in
/// milliseconds; a final unbounded bucket catches everything slower, so
/// the histogram has `HISTOGRAM_BOUNDS_MS.len() + 1` buckets.
pub const HISTOGRAM_BOUNDS_MS: [u64; 8] = [1, 3, 10, 30, 100, 300, 1000, 3000];

/// Counters over the daemon's lifetime. Invariants the daemon maintains
/// (and the end-to-end tests assert):
///
/// * `place_requests == cache_hits + cache_misses` (a bypassed degraded
///   entry counts as a miss, and additionally as `cache_bypass_degraded`);
/// * `placed_optimal + placed_cp_incumbent + placed_lns +
///   placed_bottom_left + infeasible <= cache_misses` (spec errors make
///   up the difference);
/// * `online_inserts == online_accepted + online_rejected`;
/// * the histogram counts one entry per cache-missing place request that
///   reached the solver — preflight-rejected requests never reach it, so
///   `preflight_rejects` adds nothing to the histogram;
/// * `analyze_us_total` grows whenever the analyzer runs: on every
///   `analyze` request and on every cache-missing `place` preflight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Every request line received, parseable or not.
    pub requests: u64,
    pub place_requests: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Cache lookups that found a degraded/unproven entry but recomputed
    /// because the request's deadline allowed a better answer (these also
    /// count as `cache_misses`).
    pub cache_bypass_degraded: u64,
    /// Proven-optimal placements within deadline.
    pub placed_optimal: u64,
    /// CP incumbents returned at the deadline (degraded).
    pub placed_cp_incumbent: u64,
    /// LNS-over-greedy fallbacks (degraded).
    pub placed_lns: u64,
    /// Raw greedy fallbacks (most degraded).
    pub placed_bottom_left: u64,
    /// Place requests with no floorplan (proven or budget-exhausted).
    pub infeasible: u64,
    /// Place requests rejected by the static-analysis preflight (proven
    /// infeasible before any solver budget was spent).
    #[serde(default)]
    pub preflight_rejects: u64,
    /// Design alternatives stripped from solver models by the static
    /// prune (`PlacerConfig::analyze_prune`), cumulative.
    #[serde(default)]
    pub shapes_pruned: u64,
    /// `analyze` protocol requests served.
    #[serde(default)]
    pub analyze_requests: u64,
    /// Cumulative analyzer wall time, microseconds (preflights included).
    #[serde(default)]
    pub analyze_us_total: u64,
    /// Requests refused because the bounded queue was full.
    pub rejected_backpressure: u64,
    /// Unparseable request lines.
    pub protocol_errors: u64,
    pub sessions_opened: u64,
    pub sessions_closed: u64,
    pub online_inserts: u64,
    pub online_accepted: u64,
    pub online_rejected: u64,
    pub online_removals: u64,
    pub online_defrags: u64,
    /// Faults injected into session regions.
    #[serde(default)]
    pub faults_injected: u64,
    /// Faults cleared from session regions.
    #[serde(default)]
    pub faults_cleared: u64,
    /// Repair passes run.
    #[serde(default)]
    pub repairs: u64,
    /// Displaced modules relocated by repair.
    #[serde(default)]
    pub repaired_relocated: u64,
    /// Displaced modules evicted by repair.
    #[serde(default)]
    pub repaired_evicted: u64,
    /// Handler panics caught by the worker pool (the worker survives and
    /// answers with an internal error).
    #[serde(default)]
    pub worker_panics: u64,
    /// Workers currently alive — stays equal to the configured pool size
    /// even across handler panics.
    #[serde(default)]
    pub workers_alive: u64,
    /// Records appended to the journal over the daemon's lifetime.
    #[serde(default)]
    pub journal_records: u64,
    /// Journal appends that failed (the daemon keeps serving; durability
    /// of the failed record is lost).
    #[serde(default)]
    pub journal_errors: u64,
    /// Journal compactions (snapshot rewrites).
    #[serde(default)]
    pub journal_compactions: u64,
    /// Sessions rebuilt from the journal at startup.
    #[serde(default)]
    pub recovered_sessions: u64,
    /// Replay divergences and torn tails observed during recovery.
    #[serde(default)]
    pub recovery_errors: u64,
    /// Solve-time histogram: bucket `i` counts solves faster than
    /// [`HISTOGRAM_BOUNDS_MS`]`[i]` ms (and at least the previous bound);
    /// the last bucket is unbounded.
    pub solve_ms_histogram: Vec<u64>,
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats {
            requests: 0,
            place_requests: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_bypass_degraded: 0,
            placed_optimal: 0,
            placed_cp_incumbent: 0,
            placed_lns: 0,
            placed_bottom_left: 0,
            infeasible: 0,
            preflight_rejects: 0,
            shapes_pruned: 0,
            analyze_requests: 0,
            analyze_us_total: 0,
            rejected_backpressure: 0,
            protocol_errors: 0,
            sessions_opened: 0,
            sessions_closed: 0,
            online_inserts: 0,
            online_accepted: 0,
            online_rejected: 0,
            online_removals: 0,
            online_defrags: 0,
            faults_injected: 0,
            faults_cleared: 0,
            repairs: 0,
            repaired_relocated: 0,
            repaired_evicted: 0,
            worker_panics: 0,
            workers_alive: 0,
            journal_records: 0,
            journal_errors: 0,
            journal_compactions: 0,
            recovered_sessions: 0,
            recovery_errors: 0,
            solve_ms_histogram: vec![0; HISTOGRAM_BOUNDS_MS.len() + 1],
        }
    }
}

impl ServerStats {
    /// Count one solve of the given duration into the histogram.
    pub fn record_solve_ms(&mut self, ms: u64) {
        let bucket = HISTOGRAM_BOUNDS_MS
            .iter()
            .position(|&bound| ms < bound)
            .unwrap_or(HISTOGRAM_BOUNDS_MS.len());
        self.solve_ms_histogram[bucket] += 1;
    }

    /// Degraded placements: everything below the top rung of the ladder.
    pub fn fallbacks(&self) -> u64 {
        self.placed_cp_incumbent + self.placed_lns + self.placed_bottom_left
    }

    /// Total solves recorded in the histogram.
    pub fn solves(&self) -> u64 {
        self.solve_ms_histogram.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let mut s = ServerStats::default();
        s.record_solve_ms(0);
        s.record_solve_ms(2);
        s.record_solve_ms(2999);
        s.record_solve_ms(3000);
        s.record_solve_ms(u64::MAX);
        assert_eq!(s.solve_ms_histogram[0], 1);
        assert_eq!(s.solve_ms_histogram[1], 1);
        assert_eq!(s.solve_ms_histogram[7], 1);
        assert_eq!(s.solve_ms_histogram[8], 2);
        assert_eq!(s.solves(), 5);
    }

    #[test]
    fn stats_json_roundtrip() {
        let mut s = ServerStats {
            requests: 10,
            placed_lns: 2,
            ..ServerStats::default()
        };
        s.record_solve_ms(50);
        let json = serde_json::to_string(&s).unwrap();
        let back: ServerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.fallbacks(), 2);
    }
}
