//! Crash-safe session durability: an append-only NDJSON journal plus
//! whole-state snapshots.
//!
//! Every state-changing session operation appends one [`JournalRecord`]
//! line *before* its response is sent, while the session's lock is held —
//! so the journal's per-session order is exactly the order the operations
//! were applied in. Recovery replays the log from the top: deterministic
//! operations (open, insert, remove, defrag, fault, clear) are re-executed
//! through the very same `OnlinePlacer` code paths; the one
//! *non*-deterministic operation — repair, whose outcome depends on a
//! wall-clock deadline — is journaled by **outcome** (the
//! [`rrf_core::RepairReport`] state delta) and replayed with
//! [`rrf_core::OnlinePlacer::apply_repair`], so a recovered daemon lands
//! on bit-identical placements no matter how the original search went.
//!
//! A [`JournalRecord::Snapshot`] record resets the replay state wholesale;
//! compaction rewrites the journal as a single snapshot line (temp file +
//! fsync + atomic rename), which both bounds replay time and truncates the
//! file. The daemon compacts after every committed defrag and once more at
//! graceful shutdown.
//!
//! Torn tails are expected: a crash mid-append leaves a final partial
//! line. [`Journal::load`] accepts every complete record up to the first
//! malformed line and reports the valid byte length, so the recovering
//! daemon can truncate the torn tail and keep appending.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use rrf_core::{Module, OnlineStats, PlacedModule, RepairReport};
use rrf_fabric::{Fault, Region};
use rrf_flow::{ModuleEntry, RegionSpec};
use rrf_sched::TaskSpec;
use serde::{Deserialize, Serialize};

/// One live slot inside a [`SessionSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotSnapshot {
    pub slot: u64,
    /// The module's name, for reporting after recovery.
    pub name: String,
    pub module: Module,
    pub placed: PlacedModule,
}

/// One deterministic scheduler operation (see `rrf-sched`). Because the
/// scheduler is a pure function of its op sequence, the complete ordered
/// list reconstructs clock, queue, and ledger bit-identically — which is
/// how both snapshots and journal replay restore schedule state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SchedOp {
    /// Scheduler creation: the session's region frozen at that moment —
    /// its fault set as of the open, plus the live slots' footprints
    /// added as static masks (the scheduler plans around them). Storing
    /// the whole region makes replay self-contained: later changes to
    /// the *session's* fault set cannot skew reconstruction.
    Open {
        region: Region,
    },
    Submit {
        task: TaskSpec,
    },
    Cancel {
        task: u64,
    },
    Advance {
        to: u64,
    },
    Fault {
        fault: Fault,
    },
    ClearFault {
        fault: Fault,
    },
}

/// The full durable state of one session: the region (carrying its fault
/// set), every live slot, and the counters. The occupancy grid is derived
/// state and is rebuilt on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    pub session: u64,
    pub region: Region,
    pub next_slot: u64,
    pub stats: OnlineStats,
    pub slots: Vec<SlotSnapshot>,
    /// The session scheduler's complete op history (empty when the
    /// session never scheduled); restore replays it.
    #[serde(default)]
    pub sched_ops: Vec<SchedOp>,
}

/// One journal line. On disk: `{"op":"insert","session":1,...}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum JournalRecord {
    /// A session was opened and assigned `session`.
    Open { session: u64, region: RegionSpec },
    /// An insert reached the placer; `slot` is its (deterministic)
    /// outcome, recorded so replay can detect divergence.
    Insert {
        session: u64,
        slot: Option<u64>,
        module: ModuleEntry,
    },
    /// A live slot was removed.
    Remove { session: u64, slot: u64 },
    /// A defrag ran (re-executed deterministically on replay).
    Defrag { session: u64 },
    /// A fault was injected into the session's region.
    Fault { session: u64, fault: Fault },
    /// A fault was cleared from the session's region.
    ClearFault { session: u64, fault: Fault },
    /// A repair pass ran; `report` is its complete state delta. Replay
    /// applies the delta instead of re-running the deadline-dependent
    /// search.
    Repair { session: u64, report: RepairReport },
    /// A scheduler operation was applied to the session (deterministic;
    /// re-executed on replay). For submits, `admitted` records the
    /// assigned task id so replay can detect divergence.
    Sched {
        session: u64,
        sched: SchedOp,
        #[serde(default)]
        admitted: Option<u64>,
    },
    /// A session was closed.
    Close { session: u64 },
    /// Compaction point: replay discards everything before this record
    /// and restores the embedded sessions wholesale.
    Snapshot {
        next_session: u64,
        sessions: Vec<SessionSnapshot>,
    },
}

impl JournalRecord {
    /// The session this record belongs to (`None` for snapshots).
    pub fn session(&self) -> Option<u64> {
        match *self {
            JournalRecord::Open { session, .. }
            | JournalRecord::Insert { session, .. }
            | JournalRecord::Remove { session, .. }
            | JournalRecord::Defrag { session }
            | JournalRecord::Fault { session, .. }
            | JournalRecord::ClearFault { session, .. }
            | JournalRecord::Repair { session, .. }
            | JournalRecord::Sched { session, .. }
            | JournalRecord::Close { session } => Some(session),
            JournalRecord::Snapshot { .. } => None,
        }
    }
}

/// Result of loading a journal file.
#[derive(Debug)]
pub struct LoadedJournal {
    /// Every complete record, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix; anything past it is a torn tail
    /// and should be truncated before appending resumes.
    pub valid_len: u64,
    /// Whether a torn/malformed tail was dropped.
    pub truncated: bool,
}

/// An open append-only journal with batched fsync.
pub struct Journal {
    file: File,
    path: PathBuf,
    /// fsync after every `fsync_every` appended records (1 = every
    /// record, the durable default; larger values trade the tail of the
    /// log for throughput).
    fsync_every: u64,
    unsynced: u64,
    appended: u64,
}

impl Journal {
    /// Open `path` for appending, creating it if missing. `truncate_to`
    /// cuts a torn tail first (pass [`LoadedJournal::valid_len`]).
    pub fn open(
        path: impl AsRef<Path>,
        fsync_every: u64,
        truncate_to: Option<u64>,
    ) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if let Some(len) = truncate_to {
            file.set_len(len)?;
        }
        Ok(Journal {
            file,
            path,
            fsync_every: fsync_every.max(1),
            unsynced: 0,
            appended: 0,
        })
    }

    /// Records appended through this handle (not counting pre-existing
    /// ones).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Append one record as an NDJSON line, fsyncing per the batch policy.
    pub fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        let mut line = serde_json::to_string(record).expect("journal records serialize infallibly");
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.appended += 1;
        self.unsynced += 1;
        if self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush any batched appends to disk.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Atomically replace the whole journal with `records`: write a temp
    /// file next to it, fsync, rename over. A crash at any point leaves
    /// either the old journal or the new one — never a mix.
    pub fn rewrite(&mut self, records: &[JournalRecord]) -> std::io::Result<()> {
        let tmp_path = self.path.with_extension("journal.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            for record in records {
                let mut line =
                    serde_json::to_string(record).expect("journal records serialize infallibly");
                line.push('\n');
                tmp.write_all(line.as_bytes())?;
            }
            tmp.sync_data()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.file.sync_data()?;
        self.appended += records.len() as u64;
        self.unsynced = 0;
        Ok(())
    }

    /// Parse a journal file, tolerating a torn tail (see [`LoadedJournal`]).
    /// A missing file loads as empty.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<LoadedJournal> {
        let file = match File::open(path.as_ref()) {
            Ok(file) => file,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(LoadedJournal {
                    records: Vec::new(),
                    valid_len: 0,
                    truncated: false,
                })
            }
            Err(e) => return Err(e),
        };
        let mut reader = BufReader::new(file);
        let mut records = Vec::new();
        let mut valid_len = 0u64;
        let mut truncated = false;
        // Lines are read as raw bytes, not UTF-8 strings: a corrupted
        // byte with the high bit set must degrade to "stop at the last
        // good record", never to an unrecoverable I/O error.
        let mut line = Vec::new();
        loop {
            line.clear();
            let n = reader.read_until(b'\n', &mut line)?;
            if n == 0 {
                break;
            }
            if line.last() != Some(&b'\n') {
                // Torn tail: the last append never finished.
                truncated = true;
                break;
            }
            let parsed = std::str::from_utf8(&line)
                .ok()
                .and_then(|text| serde_json::from_str::<JournalRecord>(text.trim()).ok());
            match parsed {
                Some(record) => {
                    records.push(record);
                    valid_len += n as u64;
                }
                None => {
                    // A complete but unparseable (or non-UTF-8) line:
                    // corruption. Stop at the last good record rather
                    // than guess past it.
                    truncated = true;
                    break;
                }
            }
        }
        if truncated {
            // Anything after the valid prefix — the bad line and every
            // line behind it — is dropped.
            let mut rest = Vec::new();
            reader.seek(SeekFrom::Start(valid_len))?;
            reader.read_to_end(&mut rest)?;
            truncated = !rest.is_empty();
        }
        Ok(LoadedJournal {
            records,
            valid_len,
            truncated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_flow::DeviceSpec;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rrf-journal-test-{}-{name}", std::process::id()));
        p
    }

    fn region_spec() -> RegionSpec {
        RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 8,
                height: 4,
            },
            bounds: None,
            static_masks: vec![],
        }
    }

    #[test]
    fn append_load_roundtrip() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let records = vec![
            JournalRecord::Open {
                session: 1,
                region: region_spec(),
            },
            JournalRecord::Fault {
                session: 1,
                fault: Fault::Column { x: 3 },
            },
            JournalRecord::Close { session: 1 },
        ];
        {
            let mut journal = Journal::open(&path, 1, None).unwrap();
            for r in &records {
                journal.append(r).unwrap();
            }
            assert_eq!(journal.appended(), 3);
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.records, records);
        assert!(!loaded.truncated);
        assert_eq!(loaded.valid_len, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncatable() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = Journal::open(&path, 1, None).unwrap();
            journal
                .append(&JournalRecord::Open {
                    session: 1,
                    region: region_spec(),
                })
                .unwrap();
        }
        // Simulate a crash mid-append: a partial line with no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"op\":\"insert\",\"ses").unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert!(loaded.truncated);
        // Reopening with the valid length cuts the torn tail; appends are
        // clean again.
        let mut journal = Journal::open(&path, 1, Some(loaded.valid_len)).unwrap();
        journal
            .append(&JournalRecord::Close { session: 1 })
            .unwrap();
        drop(journal);
        let reloaded = Journal::load(&path).unwrap();
        assert_eq!(reloaded.records.len(), 2);
        assert!(!reloaded.truncated);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_line_stops_replay_at_last_good_record() {
        let path = tmp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut f = File::create(&path).unwrap();
            let good = serde_json::to_string(&JournalRecord::Open {
                session: 1,
                region: region_spec(),
            })
            .unwrap();
            writeln!(f, "{good}").unwrap();
            writeln!(f, "not json at all").unwrap();
            writeln!(f, "{good}").unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.records.len(), 1, "stop at the corruption");
        assert!(loaded.truncated);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rewrite_replaces_content_atomically() {
        let path = tmp_path("rewrite");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::open(&path, 1, None).unwrap();
        for _ in 0..5 {
            journal
                .append(&JournalRecord::Defrag { session: 1 })
                .unwrap();
        }
        let snapshot = JournalRecord::Snapshot {
            next_session: 2,
            sessions: vec![],
        };
        journal.rewrite(std::slice::from_ref(&snapshot)).unwrap();
        // Appends continue after the rewrite on the new file.
        journal
            .append(&JournalRecord::Close { session: 1 })
            .unwrap();
        drop(journal);
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.records[0], snapshot);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsync_batching_still_writes_every_record() {
        let path = tmp_path("batch");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::open(&path, 8, None).unwrap();
        for i in 0..5 {
            journal
                .append(&JournalRecord::Remove {
                    session: 1,
                    slot: i,
                })
                .unwrap();
        }
        journal.sync().unwrap();
        drop(journal);
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.records.len(), 5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_record_roundtrips_with_full_session_state() {
        use rrf_fabric::{device, Rect};
        use rrf_geost::{ShapeDef, ShiftedBox};

        let mut region = Region::whole(device::homogeneous(6, 4));
        region.inject_fault(Fault::Tile { x: 1, y: 1 });
        let module = Module::new(
            "m",
            vec![ShapeDef::new(vec![ShiftedBox::new(
                0,
                0,
                2,
                2,
                rrf_fabric::ResourceKind::Clb,
            )])],
        );
        let record = JournalRecord::Snapshot {
            next_session: 7,
            sessions: vec![SessionSnapshot {
                session: 3,
                region,
                next_slot: 2,
                stats: OnlineStats {
                    requests: 2,
                    accepted: 1,
                    ..OnlineStats::default()
                },
                slots: vec![SlotSnapshot {
                    slot: 1,
                    name: "m".to_string(),
                    module,
                    placed: PlacedModule {
                        module: 0,
                        shape: 0,
                        x: 2,
                        y: 0,
                    },
                }],
                sched_ops: vec![
                    SchedOp::Open {
                        region: {
                            let mut r = Region::whole(device::homogeneous(6, 4));
                            r.add_static_mask(Rect::new(2, 0, 2, 2));
                            r
                        },
                    },
                    SchedOp::Advance { to: 100 },
                ],
            }],
        };
        let json = serde_json::to_string(&record).unwrap();
        let back: JournalRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn sched_records_roundtrip_and_old_snapshots_still_parse() {
        use rrf_fabric::ResourceKind;
        use rrf_geost::{ShapeDef, ShiftedBox};

        let record = JournalRecord::Sched {
            session: 2,
            sched: SchedOp::Submit {
                task: TaskSpec {
                    module: ModuleEntry {
                        name: "t".into(),
                        shapes: vec![ShapeDef::new(vec![ShiftedBox::new(
                            0,
                            0,
                            2,
                            2,
                            ResourceKind::Clb,
                        )])],
                        netlist: None,
                    },
                    arrival: 0,
                    duration: 50,
                    deadline: Some(400),
                    priority: 1,
                },
            },
            admitted: Some(1),
        };
        let json = serde_json::to_string(&record).unwrap();
        assert!(json.starts_with(r#"{"op":"sched""#));
        assert_eq!(
            serde_json::from_str::<JournalRecord>(&json).unwrap(),
            record
        );

        // A snapshot written before the scheduler existed has no
        // `sched_ops` field; it must still load (empty history).
        let old = r#"{"session":1,"region":{"fabric":X,"bounds":null},
            "next_slot":1,"stats":{},"slots":[]}"#;
        let _ = old; // the region's JSON shape is covered elsewhere; here
                     // we only check the field default on a direct value.
        let snap = SessionSnapshot {
            session: 1,
            region: Region::whole(rrf_fabric::device::homogeneous(4, 2)),
            next_slot: 1,
            stats: OnlineStats::default(),
            slots: vec![],
            sched_ops: vec![],
        };
        let mut v = serde_json::to_string(&snap).unwrap();
        // Strip the sched_ops field to simulate the old on-disk form.
        v = v.replace(r#","sched_ops":[]"#, "");
        let back: SessionSnapshot = serde_json::from_str(&v).unwrap();
        assert_eq!(back, snap);
    }
}
