//! `rrf-serve` — run the placement daemon.
//!
//! ```text
//! rrf-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!           [--deadline-ms MS] [--cache N]
//! ```
//!
//! Speaks newline-delimited JSON (see `rrf_server::protocol`); try it with
//! `printf '{"type":"ping","id":1}\n' | nc HOST PORT`.

use rrf_server::{start, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: rrf-serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--deadline-ms MS] [--cache N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7171".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => config.addr = value(),
            "--workers" => config.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => config.queue_depth = value().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                config.default_deadline_ms = value().parse().unwrap_or_else(|_| usage())
            }
            "--cache" => config.cache_capacity = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }

    match start(config) {
        Ok(handle) => {
            println!("rrf-serve listening on {}", handle.addr());
            // Serve until killed; the handle's Drop shuts the daemon down.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("rrf-serve: bind failed: {e}");
            std::process::exit(1);
        }
    }
}
