//! `rrf-serve` — run the placement daemon.
//!
//! ```text
//! rrf-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!           [--deadline-ms MS] [--cache N] [--cache-shards N]
//!           [--cache-persist PATH] [--no-coalesce]
//!           [--journal PATH] [--journal-fsync-every N]
//!           [--trace PATH]
//!           [--max-conns N] [--max-line-bytes N] [--write-timeout-ms MS]
//!           [--shutdown-grace-ms MS] [--no-admission]
//!           [--breaker-threshold N] [--breaker-cooldown-ms MS]
//!           [--backend-id NAME]
//! ```
//!
//! Speaks newline-delimited JSON (see `rrf_server::protocol`); try it with
//! `printf '{"type":"ping","id":1}\n' | nc HOST PORT`.
//!
//! With `--journal PATH`, sessions are durable: every state-changing
//! operation is logged before it is answered, an existing journal is
//! replayed at startup (crash recovery), and SIGINT/SIGTERM trigger a
//! graceful shutdown that compacts the journal to a single snapshot line.
//!
//! With `--trace PATH`, every `place` request appends structured NDJSON
//! trace records (spans, counters, wall timings) to PATH; render the file
//! with the `rrf-trace` CLI (`rrf-trace --phases --props PATH`).

// The one place in the workspace that needs `unsafe`: the FFI signal
// registration below. Denied crate-wide so any new use must carry its own
// scoped, justified `allow`.
#![deny(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rrf_server::{start, ServerConfig};

/// Set by the signal handler; the main loop polls it. (Only
/// async-signal-safe work happens in the handler itself.)
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Install `on_signal` for SIGINT and SIGTERM via the libc `signal(2)`
/// entry point (declared directly — no bindings crate needed).
// `unsafe` is unavoidable here: calling a foreign function (and declaring
// it) cannot be checked by the compiler. The handler it installs only
// stores to an atomic, which is async-signal-safe.
#[allow(unsafe_code)]
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

const USAGE: &str = "usage: rrf-serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--deadline-ms MS] [--cache N] [--cache-shards N] \
                     [--cache-persist PATH] [--no-coalesce] [--journal PATH] \
                     [--journal-fsync-every N] [--trace PATH] [--max-conns N] \
                     [--max-line-bytes N] [--write-timeout-ms MS] \
                     [--shutdown-grace-ms MS] [--no-admission] \
                     [--breaker-threshold N] [--breaker-cooldown-ms MS] \
                     [--backend-id NAME] [--help] [--version]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7171".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--version" | "-V" => {
                println!("rrf-serve {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            "--addr" => config.addr = value(),
            "--workers" => config.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => config.queue_depth = value().parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => {
                config.default_deadline_ms = value().parse().unwrap_or_else(|_| usage())
            }
            "--cache" => config.cache_capacity = value().parse().unwrap_or_else(|_| usage()),
            "--cache-shards" => config.cache_shards = value().parse().unwrap_or_else(|_| usage()),
            "--cache-persist" => config.cache_persist_path = Some(value()),
            "--no-coalesce" => config.coalesce = false,
            "--journal" => config.journal_path = Some(value()),
            "--trace" => config.trace_path = Some(value()),
            "--journal-fsync-every" => {
                config.journal_fsync_every = value().parse().unwrap_or_else(|_| usage())
            }
            "--max-conns" => config.max_conns = value().parse().unwrap_or_else(|_| usage()),
            "--max-line-bytes" => {
                config.max_line_bytes = value().parse().unwrap_or_else(|_| usage())
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms = value().parse().unwrap_or_else(|_| usage())
            }
            "--shutdown-grace-ms" => {
                config.shutdown_grace_ms = value().parse().unwrap_or_else(|_| usage())
            }
            "--no-admission" => config.admission_control = false,
            "--breaker-threshold" => {
                config.breaker_threshold = value().parse().unwrap_or_else(|_| usage())
            }
            "--breaker-cooldown-ms" => {
                config.breaker_cooldown_ms = value().parse().unwrap_or_else(|_| usage())
            }
            "--backend-id" => config.backend_id = value(),
            _ => usage(),
        }
    }

    install_signal_handlers();
    match start(config) {
        Ok(handle) => {
            println!("rrf-serve listening on {}", handle.addr());
            // Serve until signalled; then shut down gracefully — joining
            // the pool and (when journaling) snapshotting session state.
            while !SHUTDOWN.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!("rrf-serve: shutting down");
            handle.shutdown();
        }
        Err(e) => {
            eprintln!("rrf-serve: failed to start: {e}");
            std::process::exit(1);
        }
    }
}
