//! # rrf-server — a concurrent placement service
//!
//! The paper's placer is meant to live inside a runtime reconfigurable
//! system manager (the ReCoBus-Builder flow, Fig. 2). This crate wraps the
//! whole stack — CP placer, LNS improver, greedy baseline, online
//! first-fit, verifier — into a long-running daemon speaking
//! newline-delimited JSON over TCP:
//!
//! * **Deadlines.** Every `place` request has a wall-clock deadline
//!   (queue wait included), enforced twice: as the solver's time limit
//!   and as a stop flag tripped by a watchdog thread, so an in-flight
//!   search aborts mid-branch.
//! * **Graceful degradation.** The handler walks a ladder — optimal CP
//!   within the deadline, then LNS over a `bottom_left` greedy seed, then
//!   the raw seed — and always returns a floorplan that passed
//!   [`rrf_core::verify`], tagged with the [`protocol::PlaceMethod`] that
//!   produced it. A tight deadline degrades the answer, never the
//!   contract.
//! * **Caching.** Results are cached under a canonical key — shapes and
//!   modules sorted before hashing — so logically identical requests hit
//!   regardless of JSON element order ([`cache`]). Entries remember the
//!   solve budget that produced them: proven results (optimal, or proven
//!   infeasible) are served to anyone, but a deadline-degraded result is
//!   only served to requests at least as deadline-starved — a roomier
//!   request recomputes and upgrades the entry instead of inheriting a
//!   possibly-wrong degraded answer.
//! * **Online sessions.** A session owns a live region backed by
//!   [`rrf_core::OnlinePlacer`]: insert, remove, and no-break defrag
//!   against accumulated fragmentation.
//! * **Fault tolerance.** `inject_fault` marks fabric tiles defective
//!   (they become resource-typed forbidden regions, the paper's own
//!   static-design mechanism); `repair` relocates displaced modules using
//!   their design alternatives, escalating from greedy refit to a full
//!   repack under a budget, and evicts what cannot be saved.
//! * **Crash safety.** With `--journal`, every state-changing session
//!   operation is appended to an NDJSON log before it is answered;
//!   restart replays the log into bit-identical sessions ([`journal`]).
//!   Defrag and graceful shutdown compact the log to one snapshot line.
//! * **Panic isolation.** A panicking handler costs one response (an
//!   internal error), never a worker: the pool catches unwinds and keeps
//!   serving.
//! * **Stats.** Counters plus a solve-time histogram ([`stats`]), and a
//!   `stats_detail` request exposing per-phase latency histograms of the
//!   place pipeline, degradation-ladder outcomes, and analyzer
//!   diagnostic counts.
//! * **Tracing.** With a `trace_path` (`rrf-serve --trace PATH`), every
//!   `place` request emits a `solve` span whose `solve.*` phase spans
//!   tile its wall time exactly, with the solver's own `place`/`search`
//!   spans nested inside; render the file with the `rrf-trace` CLI.
//!
//! Start a daemon with [`start`]; the `rrf-serve` binary is a thin CLI
//! over it. The protocol types reuse [`rrf_flow::spec`] and
//! [`rrf_flow::report`], so a batch job file is a valid `place` payload.

#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod journal;
pub mod protocol;
pub mod server;
pub mod stats;

pub use admission::{BreakerState, BreakerStats};
pub use journal::{Journal, JournalRecord, SessionSnapshot, SlotSnapshot};
pub use protocol::{PlaceMethod, Request, Response, SlotState};
pub use server::{replay_summary, start, ReplaySummary, ServerConfig, ServerHandle};
pub use stats::{DetailStats, LadderStats, ServerStats, StageStats, HISTOGRAM_BOUNDS_MS};
