//! The placement cache and the canonicalization that feeds it.
//!
//! Cache keys must not depend on the order a client happens to list
//! modules or shapes in: two logically identical `place` requests (same
//! region, same module set, same placer settings) must hit the same
//! entry. The daemon therefore *canonicalizes* each spec — shapes sorted
//! within each module, modules sorted by their serialized form — solves
//! the canonical instance, caches the canonical report, and remaps module
//! and shape indices back to the request's own ordering on the way out.
//!
//! The cache itself is split across three submodules:
//!
//! * [`shard`] — the lock-striped [`ShardedCache`]: N shards keyed by a
//!   deterministic FNV-1a hash of the canonical key, per-shard LRU
//!   eviction and hit/miss/eviction counters.
//! * [`singleflight`] — duplicate-solve coalescing: concurrent misses on
//!   the same canonical key with compatible budgets join the in-flight
//!   leader's solve instead of each running the solver.
//! * [`persist`] — the byte-deterministic NDJSON snapshot written on
//!   graceful shutdown and warm-loaded at startup (`--cache-persist`).

pub mod persist;
pub mod shard;
pub mod singleflight;

pub use shard::{CacheDetail, Probe, ShardDetail, ShardedCache};
pub use singleflight::{FlightGuard, Role, SingleFlight};

use std::time::Duration;

use rrf_core::{Floorplan, PlacedModule};
use rrf_flow::{FlowReport, FlowSpec, ModuleEntry, PlacedModuleReport};

use crate::protocol::PlaceMethod;

/// Index mapping from a canonicalized spec back to the original request.
#[derive(Debug, Clone)]
pub struct CanonMap {
    /// `module_orig[c]` = original index of canonical module `c`.
    module_orig: Vec<usize>,
    /// `shape_orig[c][s]` = original shape index of canonical shape `s`
    /// of canonical module `c`; empty = identity (netlist modules, whose
    /// shapes are derived deterministically, not listed by the client).
    shape_orig: Vec<Vec<usize>>,
}

impl CanonMap {
    fn remap_shape(&self, canon_module: usize, canon_shape: usize) -> usize {
        let perm = &self.shape_orig[canon_module];
        if perm.is_empty() {
            canon_shape
        } else {
            perm[canon_shape]
        }
    }
}

fn serialize(value: &impl serde::Serialize) -> String {
    serde_json::to_string(value).expect("protocol types serialize infallibly")
}

/// Sort shapes within each module and modules across the spec, returning
/// the canonical spec plus the mapping back to the request's ordering.
/// Region and placer settings pass through unchanged (their serialized
/// form is already order-independent: field order is fixed by the types).
pub fn canonicalize(spec: &FlowSpec) -> (FlowSpec, CanonMap) {
    let mut entries: Vec<(String, usize, ModuleEntry, Vec<usize>)> = spec
        .modules
        .iter()
        .enumerate()
        .map(|(orig, entry)| {
            let mut order: Vec<usize> = (0..entry.shapes.len()).collect();
            let keys: Vec<String> = entry.shapes.iter().map(serialize).collect();
            order.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
            let canon_entry = ModuleEntry {
                name: entry.name.clone(),
                shapes: order.iter().map(|&s| entry.shapes[s].clone()).collect(),
                netlist: entry.netlist.clone(),
            };
            let sort_key = serialize(&canon_entry);
            (sort_key, orig, canon_entry, order)
        })
        .collect();
    // Original index as the tie break keeps duplicate modules stable.
    entries.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    let module_orig = entries.iter().map(|e| e.1).collect();
    let shape_orig = entries.iter().map(|e| e.3.clone()).collect();
    let canon_spec = FlowSpec {
        region: spec.region.clone(),
        modules: entries.into_iter().map(|e| e.2).collect(),
        placer: spec.placer.clone(),
    };
    (
        canon_spec,
        CanonMap {
            module_orig,
            shape_orig,
        },
    )
}

/// The cache key of a canonical spec: its serialized form, covering the
/// region spec, the (canonicalized) module set, and the placer settings.
pub fn cache_key(canonical: &FlowSpec) -> String {
    serialize(canonical)
}

/// Translate a report over the canonical spec into the original request's
/// module and shape numbering.
pub fn remap_report(canon: &FlowReport, map: &CanonMap) -> FlowReport {
    let n = map.module_orig.len();
    // `placements` is one entry per module in module order (when feasible).
    let mut placements: Vec<Option<PlacedModuleReport>> = vec![None; n];
    for (ci, pr) in canon.placements.iter().enumerate() {
        placements[map.module_orig[ci]] = Some(PlacedModuleReport {
            shape: map.remap_shape(ci, pr.shape),
            ..pr.clone()
        });
    }
    let floorplan = canon.floorplan.as_ref().map(|plan| {
        let mut placed: Vec<PlacedModule> = plan
            .placements
            .iter()
            .map(|p| PlacedModule {
                module: map.module_orig[p.module],
                shape: map.remap_shape(p.module, p.shape),
                x: p.x,
                y: p.y,
            })
            .collect();
        placed.sort_by_key(|p| p.module);
        Floorplan::new(placed)
    });
    FlowReport {
        feasible: canon.feasible,
        proven: canon.proven,
        extent: canon.extent,
        placements: placements.into_iter().flatten().collect(),
        metrics: canon.metrics,
        stats: canon.stats,
        floorplan,
    }
}

/// One cached placement: the canonical report, how it was produced, and
/// how much solve budget produced it.
///
/// Results depend on the deadline that was in force when they were
/// computed: a tight-deadline solve may return a degraded floorplan (or
/// even miss a feasible one entirely) that a roomier request could beat.
/// Entries therefore record their solve budget, and a cached answer is
/// only served when it is *proven* (deadline-independent) or when the new
/// request's remaining budget is no larger than the one that produced it
/// — otherwise the daemon recomputes and overwrites the entry.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    pub method: PlaceMethod,
    pub report: FlowReport,
    /// Remaining wall-clock budget at the moment the solve started.
    pub budget: Duration,
}

impl CacheEntry {
    /// Whether the result is deadline-independent: a proven-optimal
    /// floorplan or a proven infeasibility.
    pub fn is_proven(&self) -> bool {
        match self.method {
            PlaceMethod::Optimal => true,
            PlaceMethod::Infeasible => self.report.proven,
            _ => false,
        }
    }

    /// Whether this entry may answer a request with `remaining` budget:
    /// proven results always can; degraded/unproven results only when the
    /// new request could not have climbed higher on the ladder anyway.
    pub fn servable_within(&self, remaining: Duration) -> bool {
        self.is_proven() || remaining <= self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_fabric::ResourceKind;
    use rrf_flow::{DeviceSpec, PlacerSettings, RegionSpec};
    use rrf_geost::{ShapeDef, ShiftedBox};

    fn shape(w: i32, h: i32) -> ShapeDef {
        ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
    }

    fn spec(modules: Vec<ModuleEntry>) -> FlowSpec {
        FlowSpec {
            region: RegionSpec {
                device: DeviceSpec::Homogeneous {
                    width: 10,
                    height: 4,
                },
                bounds: None,
                static_masks: vec![],
            },
            modules,
            placer: PlacerSettings::default(),
        }
    }

    fn entry(name: &str, shapes: Vec<ShapeDef>) -> ModuleEntry {
        ModuleEntry {
            name: name.into(),
            shapes,
            netlist: None,
        }
    }

    #[test]
    fn reordered_modules_and_shapes_share_a_key() {
        let a = spec(vec![
            entry("alu", vec![shape(4, 2), shape(2, 4)]),
            entry("fir", vec![shape(3, 2)]),
        ]);
        let b = spec(vec![
            entry("fir", vec![shape(3, 2)]),
            entry("alu", vec![shape(2, 4), shape(4, 2)]),
        ]);
        let (ca, _) = canonicalize(&a);
        let (cb, _) = canonicalize(&b);
        assert_eq!(cache_key(&ca), cache_key(&cb));
    }

    #[test]
    fn different_settings_or_shapes_differ() {
        let base = spec(vec![entry("alu", vec![shape(4, 2)])]);
        let mut other_settings = base.clone();
        other_settings.placer.time_limit_ms = Some(1);
        let other_shapes = spec(vec![entry("alu", vec![shape(4, 3)])]);
        let key = |s: &FlowSpec| cache_key(&canonicalize(s).0);
        assert_ne!(key(&base), key(&other_settings));
        assert_ne!(key(&base), key(&other_shapes));
    }

    #[test]
    fn remap_restores_request_ordering() {
        // Request lists (fir, alu); canonical order is (alu, fir) with
        // alu's shapes swapped. A canonical report placing alu with its
        // canonical shape 0 must come back as request module 1 with the
        // request's shape index.
        let req = spec(vec![
            entry("fir", vec![shape(3, 2)]),
            entry("alu", vec![shape(4, 2), shape(2, 4)]),
        ]);
        let (canon, map) = canonicalize(&req);
        assert_eq!(canon.modules[0].name, "alu");
        // Canonical shape 0 of alu is whichever sorts first; find where
        // it came from in the request.
        let canon_shape0 = &canon.modules[0].shapes[0];
        let orig_idx = req.modules[1]
            .shapes
            .iter()
            .position(|s| s == canon_shape0)
            .unwrap();

        let canon_report = FlowReport {
            feasible: true,
            proven: true,
            extent: Some(5),
            placements: vec![
                PlacedModuleReport {
                    name: "alu".into(),
                    shape: 0,
                    x: 0,
                    y: 0,
                },
                PlacedModuleReport {
                    name: "fir".into(),
                    shape: 0,
                    x: 2,
                    y: 0,
                },
            ],
            metrics: None,
            stats: rrf_core::SolveStats::default(),
            floorplan: Some(Floorplan::new(vec![
                PlacedModule {
                    module: 0,
                    shape: 0,
                    x: 0,
                    y: 0,
                },
                PlacedModule {
                    module: 1,
                    shape: 0,
                    x: 2,
                    y: 0,
                },
            ])),
        };
        let remapped = remap_report(&canon_report, &map);
        assert_eq!(remapped.placements[0].name, "fir");
        assert_eq!(remapped.placements[1].name, "alu");
        assert_eq!(remapped.placements[1].shape, orig_idx);
        let plan = remapped.floorplan.unwrap();
        assert_eq!(plan.placements[0].module, 0); // fir
        assert_eq!(plan.placements[0].x, 2);
        assert_eq!(plan.placements[1].module, 1); // alu
        assert_eq!(plan.placements[1].shape, orig_idx);
    }

    #[test]
    fn degraded_entries_only_serve_equal_or_tighter_budgets() {
        let entry = |method: PlaceMethod, proven: bool| CacheEntry {
            method,
            report: FlowReport {
                feasible: method != PlaceMethod::Infeasible,
                proven,
                extent: None,
                placements: vec![],
                metrics: None,
                stats: rrf_core::SolveStats::default(),
                floorplan: None,
            },
            budget: Duration::from_millis(100),
        };

        // Proven results are deadline-independent: servable at any budget.
        for proven in [
            entry(PlaceMethod::Optimal, true),
            entry(PlaceMethod::Infeasible, true),
        ] {
            assert!(proven.servable_within(Duration::from_secs(10)));
            assert!(proven.servable_within(Duration::ZERO));
        }

        // Degraded/unproven results only answer requests that could not
        // have done better — a larger budget must recompute.
        for degraded in [
            entry(PlaceMethod::CpIncumbent, false),
            entry(PlaceMethod::Lns, false),
            entry(PlaceMethod::BottomLeft, false),
            entry(PlaceMethod::Infeasible, false),
        ] {
            assert!(!degraded.is_proven());
            assert!(degraded.servable_within(Duration::from_millis(100)));
            assert!(degraded.servable_within(Duration::from_millis(50)));
            assert!(!degraded.servable_within(Duration::from_millis(101)));
        }
    }
}
