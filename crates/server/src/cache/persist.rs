//! Cache persistence: the `--cache-persist` NDJSON snapshot.
//!
//! A restarted daemon used to start cold: every spec solved in the
//! previous life was solved again. With a persist path, graceful
//! shutdown writes the cache as one NDJSON file — a versioned header
//! line followed by one line per entry — and startup warm-loads it.
//!
//! **Byte determinism.** The snapshot is a pure function of the cache's
//! *content*: entries are exported sorted by canonical key (never in
//! shard or hash order), each line is a fixed-field-order serde struct,
//! and nothing timing-dependent (timestamps, hit counts, recency, the
//! solver's own wall timings) is written. Two daemons holding the same
//! entries — whatever shard count they ran with, whatever order requests
//! arrived in — write identical bytes, which the determinism e2e diffs
//! directly.
//!
//! **Torn-tail tolerance.** Loading mirrors the journal's recovery rule:
//! read raw bytes line by line, stop at the first malformed, non-UTF-8,
//! or newline-less line, and keep everything before it. A crash while
//! writing (the write itself is temp-file + fsync + atomic rename, so
//! this takes a filesystem-level mangling), a truncated copy, or a
//! hand-edited file costs the tail, never the daemon: errors are counted
//! into `cache_load_errors` and the daemon starts with what was sound.
//! A version we do not understand loads nothing (forward compatibility
//! is not guessed at).

use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::Duration;

use rrf_flow::FlowReport;
use serde::{Deserialize, Serialize};

use super::CacheEntry;
use crate::protocol::PlaceMethod;

/// Snapshot format version; bump on any incompatible line-shape change.
pub const SNAPSHOT_VERSION: u64 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct Header {
    version: u64,
    /// Entry-line count that follows; a shorter file is a detected
    /// truncation, not a silently smaller cache.
    entries: u64,
}

/// One cached entry on disk. `budget` round-trips as microseconds so the
/// degraded-entry upgrade rule keeps working across restarts.
#[derive(Debug, Serialize, Deserialize)]
struct Record {
    key: String,
    method: PlaceMethod,
    budget_us: u64,
    report: FlowReport,
}

/// What a warm-load recovered.
#[derive(Debug, Default)]
pub struct LoadedSnapshot {
    /// Usable entries, in file (= key-sorted) order.
    pub entries: Vec<(String, CacheEntry)>,
    /// Defects encountered: 1 for a bad/torn header or unknown version,
    /// +1 for a bad/torn/missing tail of the entry lines.
    pub errors: u64,
}

/// Write `entries` (key-sorted, as [`super::ShardedCache::export`]
/// returns them) to `path` atomically: temp file, fsync, rename — a
/// crash mid-write leaves the previous snapshot intact.
pub fn save(path: impl AsRef<Path>, entries: &[(String, CacheEntry)]) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    let header = Header {
        version: SNAPSHOT_VERSION,
        entries: entries.len() as u64,
    };
    bytes.extend_from_slice(
        serde_json::to_string(&header)
            .expect("header serializes infallibly")
            .as_bytes(),
    );
    bytes.push(b'\n');
    for (key, entry) in entries {
        // The report's solver stats embed wall timings — the one
        // timing-dependent part of a cached result. Scrub them so the
        // snapshot is a pure function of cache *content* and two runs
        // that solved the same specs write identical bytes.
        let mut report = entry.report.clone();
        report.stats.duration = Duration::ZERO;
        report.stats.time_to_best = Duration::ZERO;
        // A proven entry's budget never matters (`servable_within`
        // short-circuits on proof) but its raw value is arrival-time
        // jitter from the solve that produced it — normalize it away.
        // A degraded entry's budget IS the upgrade bar and persists
        // as-is (such snapshots are content-equal, not byte-equal,
        // across runs).
        let budget_us = if entry.is_proven() {
            0
        } else {
            entry.budget.as_micros() as u64
        };
        let record = Record {
            key: key.clone(),
            method: entry.method,
            budget_us,
            report,
        };
        bytes.extend_from_slice(
            serde_json::to_string(&record)
                .expect("record serializes infallibly")
                .as_bytes(),
        );
        bytes.push(b'\n');
    }
    let tmp_path = path.with_extension("tmp");
    {
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&bytes)?;
        tmp.sync_data()?;
    }
    std::fs::rename(&tmp_path, path)?;
    Ok(())
}

/// Read one raw line; `Ok(Some(str))` only for a complete (`\n`-ended)
/// valid-UTF-8 line, `Ok(None)` for EOF or a torn/undecodable tail.
fn next_line(reader: &mut impl BufRead, torn: &mut bool) -> std::io::Result<Option<String>> {
    let mut line = Vec::new();
    let n = reader.read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if line.last() != Some(&b'\n') {
        *torn = true;
        return Ok(None);
    }
    match String::from_utf8(line) {
        Ok(text) => Ok(Some(text)),
        Err(_) => {
            *torn = true;
            Ok(None)
        }
    }
}

/// Load a snapshot. A missing or empty file is a clean cold start (no
/// errors); anything else yields every entry up to the first defect.
pub fn load(path: impl AsRef<Path>) -> std::io::Result<LoadedSnapshot> {
    let file = match File::open(path.as_ref()) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadedSnapshot::default()),
        Err(e) => return Err(e),
    };
    let mut reader = BufReader::new(file);
    let mut loaded = LoadedSnapshot::default();
    let mut torn = false;

    let header = match next_line(&mut reader, &mut torn)? {
        Some(line) => match serde_json::from_str::<Header>(line.trim_end()) {
            Ok(header) if header.version == SNAPSHOT_VERSION => header,
            _ => {
                // Unknown version or not a header at all: nothing after
                // it can be trusted.
                loaded.errors = 1;
                return Ok(loaded);
            }
        },
        None => {
            // Empty file = cold start; a torn header line = one defect.
            loaded.errors = u64::from(torn);
            return Ok(loaded);
        }
    };

    while loaded.entries.len() < header.entries as usize {
        let Some(line) = next_line(&mut reader, &mut torn)? else {
            break;
        };
        match serde_json::from_str::<Record>(line.trim_end()) {
            Ok(record) => loaded.entries.push((
                record.key,
                CacheEntry {
                    method: record.method,
                    report: record.report,
                    budget: Duration::from_micros(record.budget_us),
                },
            )),
            Err(_) => {
                torn = true;
                break;
            }
        }
    }
    // Fewer sound lines than the header promised — torn, malformed, or
    // plain missing — is one counted defect; the sound prefix loads.
    if loaded.entries.len() < header.entries as usize {
        loaded.errors += 1;
    } else {
        loaded.errors += u64::from(torn);
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(budget_ms: u64) -> CacheEntry {
        CacheEntry {
            method: PlaceMethod::Infeasible,
            report: FlowReport {
                feasible: false,
                proven: false,
                extent: None,
                placements: vec![],
                metrics: None,
                stats: rrf_core::SolveStats::default(),
                floorplan: None,
            },
            budget: Duration::from_millis(budget_ms),
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rrf_persist_{}_{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_entries_and_budgets() {
        let path = tmp("roundtrip");
        let entries = vec![
            ("alpha".to_string(), entry(120)),
            ("beta".to_string(), entry(7)),
        ];
        save(&path, &entries).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.errors, 0);
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[0].0, "alpha");
        assert_eq!(loaded.entries[0].1.budget, Duration::from_millis(120));
        assert_eq!(loaded.entries[1].1.budget, Duration::from_millis(7));
        assert!(!loaded.entries[0].1.is_proven());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_is_byte_deterministic_and_scrubs_wall_timings() {
        let a = tmp("det_a");
        let b = tmp("det_b");
        let entries = vec![("k1".to_string(), entry(10)), ("k2".to_string(), entry(20))];
        // Same content but different solver wall timings — the one part
        // of a report that varies run to run — must not change a byte.
        let mut timed = entries.clone();
        timed[0].1.report.stats.duration = Duration::from_millis(417);
        timed[1].1.report.stats.time_to_best = Duration::from_millis(9);
        save(&a, &entries).unwrap();
        save(&b, &timed).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        let loaded = load(&b).unwrap();
        assert_eq!(loaded.entries[0].1.report.stats.duration, Duration::ZERO);

        // Proven entries also shed their (irrelevant, jittery) budgets:
        // the same proof reached with different arrival timing writes
        // the same bytes.
        let mut proven_a = vec![("p".to_string(), entry(9_999_805))];
        proven_a[0].1.method = PlaceMethod::Optimal;
        proven_a[0].1.report.feasible = true;
        proven_a[0].1.report.proven = true;
        let mut proven_b = proven_a.clone();
        proven_b[0].1.budget = Duration::from_micros(9_999_886);
        save(&a, &proven_a).unwrap();
        save(&b, &proven_b).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        assert_eq!(load(&a).unwrap().entries[0].1.budget, Duration::ZERO);
        std::fs::remove_file(&a).unwrap();
        std::fs::remove_file(&b).unwrap();
    }

    #[test]
    fn missing_and_empty_files_are_clean_cold_starts() {
        let loaded = load(tmp("never_written")).unwrap();
        assert_eq!(loaded.errors, 0);
        assert!(loaded.entries.is_empty());

        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.errors, 0);
        assert!(loaded.entries.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_version_loads_nothing_with_one_error() {
        let path = tmp("version");
        std::fs::write(&path, b"{\"version\":99,\"entries\":0}\n").unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.errors, 1);
        assert!(loaded.entries.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_keeps_the_sound_prefix() {
        let path = tmp("torn");
        let entries = vec![
            ("a".to_string(), entry(1)),
            ("b".to_string(), entry(2)),
            ("c".to_string(), entry(3)),
        ];
        save(&path, &entries).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the final newline plus a few bytes: "c" becomes torn.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.errors, 1);
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[1].0, "b");
        std::fs::remove_file(&path).unwrap();
    }
}
