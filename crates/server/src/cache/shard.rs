//! The lock-striped sharded placement cache.
//!
//! The cache used to be one `Mutex<PlacementCache>`: every probe and
//! every write-back from every worker serialized on a single lock. Here
//! the key space is striped across N independently locked shards, so
//! concurrent requests for *different* specs never contend (requests for
//! the same spec are coalesced upstream by [`super::singleflight`]
//! instead of racing).
//!
//! Shard selection hashes the canonical key with FNV-1a — a fixed,
//! platform-independent function, deliberately not `DefaultHasher`
//! (whose per-process random seed would make shard assignment, and with
//! it eviction behavior and the persisted snapshot's content, vary run
//! to run). Each shard is an LRU over a `BTreeMap` (ordered iteration,
//! so exports never depend on hash order) with its own hit/miss/
//! insertion/eviction counters, surfaced through `stats_detail`.

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use super::CacheEntry;

/// FNV-1a over the key bytes: deterministic across runs and platforms,
/// which keeps shard assignment — and therefore per-shard LRU eviction —
/// a pure function of the request sequence.
fn fnv1a(key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in key.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Outcome of one cache probe.
#[derive(Debug)]
pub enum Probe {
    /// A servable entry (proven, or at least as much budget as the
    /// request has — see [`CacheEntry::servable_within`]); LRU-bumped.
    /// Boxed: a `CacheEntry` dwarfs the other variants.
    Served(Box<CacheEntry>),
    /// An entry exists but is degraded and the request has more budget:
    /// the caller recomputes and overwrites it (counted as a miss, the
    /// entry's recency deliberately not bumped — it is about to die).
    Degraded,
    /// No entry under this key.
    Miss,
}

struct Slot {
    entry: CacheEntry,
    /// Logical recency stamp from the shard's `tick`; the eviction
    /// victim is the slot with the smallest stamp.
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: BTreeMap<String, Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Shard {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Per-shard counter snapshot in a `stats_detail` reply.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardDetail {
    pub entries: u64,
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

/// The cache block of a `stats_detail` reply: totals across shards, the
/// per-shard breakdown (lock-contention skew shows up as uneven rows),
/// and the coalescing/persistence counters the handler fills in from
/// [`super::SingleFlight`] and the startup warm-load.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheDetail {
    pub shards: u64,
    /// Total capacity in entries (per-shard capacity × shard count; the
    /// configured capacity rounds up to a multiple of the shard count).
    pub capacity: u64,
    pub entries: u64,
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub per_shard: Vec<ShardDetail>,
    /// Requests that joined another request's in-flight solve.
    pub coalesced_joins: u64,
    /// In-flight solves whose result was shared with at least one joiner.
    pub coalesced_leader_solves: u64,
    /// Joiners that gave up waiting (answered `overloaded`, retry-safe).
    pub coalesce_timeouts: u64,
    /// Entries warm-loaded from the `--cache-persist` snapshot.
    pub persist_loaded: u64,
    /// Snapshot lines the warm-load could not use (torn tail, bad
    /// version, short file) — loading stops at the last good record.
    pub load_errors: u64,
}

/// N independently locked LRU shards over canonical cache keys.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl ShardedCache {
    /// `capacity` is the total entry budget; it is split evenly across
    /// `shards` stripes, rounding each stripe up to at least one entry.
    pub fn new(capacity: usize, shards: usize) -> ShardedCache {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<Shard> {
        &self.shards[(fnv1a(key) % self.shards.len() as u64) as usize]
    }

    /// Look up `key` for a request with `remaining` budget, bumping the
    /// entry's recency and the shard's counters. Only the owning shard's
    /// lock is taken, and only for the duration of the map operation.
    pub fn probe(&self, key: &str, remaining: Duration) -> Probe {
        let mut shard = self.shard_of(key).lock();
        let tick = shard.next_tick();
        match shard.entries.get_mut(key) {
            Some(slot) if slot.entry.servable_within(remaining) => {
                slot.last_used = tick;
                let entry = slot.entry.clone();
                shard.hits += 1;
                Probe::Served(Box::new(entry))
            }
            Some(_) => {
                shard.misses += 1;
                Probe::Degraded
            }
            None => {
                shard.misses += 1;
                Probe::Miss
            }
        }
    }

    /// Insert (or overwrite) an entry, evicting the shard's
    /// least-recently-used slot when the stripe overflows. Returns the
    /// evicted key, if any — the freshly inserted entry is never the
    /// victim (it holds the newest recency stamp).
    pub fn insert(&self, key: String, entry: CacheEntry) -> Option<String> {
        let mut shard = self.shard_of(&key).lock();
        let tick = shard.next_tick();
        let existed = shard
            .entries
            .insert(
                key,
                Slot {
                    entry,
                    last_used: tick,
                },
            )
            .is_some();
        shard.insertions += 1;
        if !existed && shard.entries.len() > self.per_shard_capacity {
            let victim = shard
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                shard.entries.remove(&victim);
                shard.evictions += 1;
                return Some(victim);
            }
        }
        None
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evictions across all shards (the `stats` gauge).
    pub fn evictions(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().evictions).sum()
    }

    /// Every entry, sorted by key — the persistence snapshot's source.
    /// Sorting across shards (each already BTreeMap-ordered) makes the
    /// export independent of the shard count, so a snapshot written with
    /// `--cache-shards 8` warm-loads identically under `--cache-shards 1`.
    pub fn export(&self) -> Vec<(String, CacheEntry)> {
        let mut entries: Vec<(String, CacheEntry)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, slot) in &shard.entries {
                entries.push((key.clone(), slot.entry.clone()));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Counter snapshot for `stats_detail` (coalescing and persistence
    /// fields are filled in by the handler, which owns those sources).
    pub fn detail(&self) -> CacheDetail {
        let mut detail = CacheDetail {
            shards: self.shards.len() as u64,
            capacity: (self.per_shard_capacity * self.shards.len()) as u64,
            ..CacheDetail::default()
        };
        for shard in &self.shards {
            let shard = shard.lock();
            let row = ShardDetail {
                entries: shard.entries.len() as u64,
                hits: shard.hits,
                misses: shard.misses,
                insertions: shard.insertions,
                evictions: shard.evictions,
            };
            detail.entries += row.entries;
            detail.hits += row.hits;
            detail.misses += row.misses;
            detail.insertions += row.insertions;
            detail.evictions += row.evictions;
            detail.per_shard.push(row);
        }
        detail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PlaceMethod;
    use rrf_flow::FlowReport;

    fn entry(proven: bool, budget_ms: u64) -> CacheEntry {
        CacheEntry {
            method: if proven {
                PlaceMethod::Optimal
            } else {
                PlaceMethod::BottomLeft
            },
            report: FlowReport {
                feasible: true,
                proven,
                extent: None,
                placements: vec![],
                metrics: None,
                stats: rrf_core::SolveStats::default(),
                floorplan: None,
            },
            budget: Duration::from_millis(budget_ms),
        }
    }

    #[test]
    fn fnv1a_is_pinned() {
        // The persisted snapshot and the reference-model proptest both
        // assume this exact function; a change is a behavior change.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        // One shard, capacity 2: probing "a" keeps it alive, so inserting
        // "c" evicts "b" — FIFO would have evicted "a".
        let cache = ShardedCache::new(2, 1);
        assert!(cache.insert("a".into(), entry(true, 10)).is_none());
        assert!(cache.insert("b".into(), entry(true, 10)).is_none());
        assert!(matches!(
            cache.probe("a", Duration::from_secs(1)),
            Probe::Served(_)
        ));
        let evicted = cache.insert("c".into(), entry(true, 10));
        assert_eq!(evicted.as_deref(), Some("b"));
        assert!(matches!(
            cache.probe("a", Duration::from_secs(1)),
            Probe::Served(_)
        ));
        assert!(matches!(cache.probe("b", Duration::ZERO), Probe::Miss));
    }

    #[test]
    fn overwrite_never_evicts() {
        let cache = ShardedCache::new(2, 1);
        cache.insert("a".into(), entry(false, 50));
        cache.insert("b".into(), entry(true, 10));
        // Budget upgrade: overwriting "a" must not push anything out.
        assert!(cache.insert("a".into(), entry(true, 500)).is_none());
        assert_eq!(cache.len(), 2);
        // And the upgraded entry is the one served now.
        match cache.probe("a", Duration::from_secs(1)) {
            Probe::Served(e) => assert!(e.report.proven),
            other => panic!("expected upgraded hit, got {other:?}"),
        }
    }

    #[test]
    fn degraded_probe_reports_bypass() {
        let cache = ShardedCache::new(4, 2);
        cache.insert("k".into(), entry(false, 100));
        assert!(matches!(
            cache.probe("k", Duration::from_millis(100)),
            Probe::Served(_)
        ));
        assert!(matches!(
            cache.probe("k", Duration::from_millis(200)),
            Probe::Degraded
        ));
        let d = cache.detail();
        assert_eq!((d.hits, d.misses), (1, 1));
    }

    #[test]
    fn capacity_splits_across_shards_rounding_up() {
        // 5 entries over 4 shards → 2 per shard → 8 total capacity.
        let cache = ShardedCache::new(5, 4);
        assert_eq!(cache.detail().capacity, 8);
        assert_eq!(cache.detail().shards, 4);
        // Zero-capacity and zero-shard configs clamp to 1, like the old
        // single-map cache did.
        assert_eq!(ShardedCache::new(0, 0).detail().capacity, 1);
    }

    #[test]
    fn export_is_key_sorted_and_shard_count_invariant() {
        let keys = ["delta", "alpha", "echo", "bravo", "charlie"];
        let sharded = ShardedCache::new(16, 4);
        let single = ShardedCache::new(16, 1);
        for key in keys {
            sharded.insert(key.into(), entry(true, 10));
            single.insert(key.into(), entry(true, 10));
        }
        let order: Vec<String> = sharded.export().into_iter().map(|(k, _)| k).collect();
        assert_eq!(order, ["alpha", "bravo", "charlie", "delta", "echo"]);
        let singles: Vec<String> = single.export().into_iter().map(|(k, _)| k).collect();
        assert_eq!(order, singles);
    }

    #[test]
    fn detail_totals_tile_per_shard_rows() {
        let cache = ShardedCache::new(8, 4);
        for i in 0..20 {
            cache.insert(format!("key-{i}"), entry(true, 10));
        }
        for i in 0..20 {
            let _ = cache.probe(&format!("key-{i}"), Duration::from_secs(1));
        }
        let d = cache.detail();
        assert_eq!(d.insertions, 20);
        assert_eq!(d.hits + d.misses, 20);
        assert_eq!(d.entries, cache.len() as u64);
        assert_eq!(d.evictions, cache.evictions());
        for (total, per) in [
            (
                d.entries,
                d.per_shard.iter().map(|s| s.entries).sum::<u64>(),
            ),
            (d.hits, d.per_shard.iter().map(|s| s.hits).sum()),
            (d.misses, d.per_shard.iter().map(|s| s.misses).sum()),
            (d.evictions, d.per_shard.iter().map(|s| s.evictions).sum()),
        ] {
            assert_eq!(total, per);
        }
        // Capacity 8 over 20 distinct keys: evictions must have happened
        // and the resident set respects the per-shard bound.
        assert!(d.evictions >= 12);
        assert!(d.entries <= d.capacity);
    }
}
