//! Single-flight coalescing of identical in-flight solves.
//!
//! A duplicate burst — M concurrent `place` requests with the same
//! canonical key — used to run the solver M times: each request missed
//! the cache (the first insert only lands after its solve), so the
//! daemon paid M solver budgets for one answer. Here the first miss
//! becomes the *leader* and registers a flight; later misses on the same
//! key *join* it and block until the leader publishes, receiving the one
//! result.
//!
//! Joining respects the degraded-entry budget-upgrade rule (see
//! [`CacheEntry::servable_within`]): a flight records the leader's
//! remaining budget at registration, and only requests with *no more*
//! budget than that join — the leader's (possibly degraded) answer is
//! then at least as good as anything their own budget could have bought.
//! A roomier request runs **solo**: it solves independently, without
//! registering (the flight table holds one flight per key), and its
//! write-back upgrades the cache entry as usual.
//!
//! Failure safety: the leader holds a [`FlightGuard`] that publishes
//! `None` on drop, so every early return — spec errors, verify
//! violations, even a handler panic unwinding through the worker's
//! `catch_unwind` — wakes the joiners. They then solve for themselves
//! rather than re-coalescing (a deterministic failure would loop). A
//! joiner whose wait exceeds its own deadline plus slack answers
//! `overloaded` (retry-safe: its request never touched any state), which
//! the `rrf-client` retry loop handles like any other shed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use super::CacheEntry;

/// What a cache-missing request is in the coalescing protocol.
pub enum Role<'a> {
    /// First miss on this key: solve, then publish through the guard.
    Leader(FlightGuard<'a>),
    /// A compatible flight is in progress: wait on the receiver.
    Joiner(Receiver<Option<CacheEntry>>),
    /// A flight is in progress but with less budget than this request:
    /// solve independently (and upgrade the cache entry afterwards).
    Solo,
}

struct Flight {
    /// The leader's remaining budget when the flight was registered —
    /// the join-compatibility bar.
    budget: Duration,
    waiters: Vec<Sender<Option<CacheEntry>>>,
}

/// The in-flight solve table plus its counters (atomics: they are read
/// by the `stats`/`stats_detail` handlers without taking the table lock).
#[derive(Default)]
pub struct SingleFlight {
    flights: Mutex<HashMap<String, Flight>>,
    joins: AtomicU64,
    leader_solves: AtomicU64,
    timeouts: AtomicU64,
}

impl SingleFlight {
    /// Classify a cache-missing request with `remaining` budget. The
    /// table lock is never held across a solve — only for this map
    /// operation and for `publish`.
    pub fn begin(&self, key: &str, remaining: Duration) -> Role<'_> {
        let mut flights = self.flights.lock();
        match flights.get_mut(key) {
            Some(flight) if remaining <= flight.budget => {
                let (tx, rx) = bounded(1);
                flight.waiters.push(tx);
                self.joins.fetch_add(1, Ordering::Relaxed);
                Role::Joiner(rx)
            }
            Some(_) => Role::Solo,
            None => {
                flights.insert(
                    key.to_string(),
                    Flight {
                        budget: remaining,
                        waiters: Vec::new(),
                    },
                );
                Role::Leader(FlightGuard {
                    owner: self,
                    key: key.to_string(),
                    published: false,
                })
            }
        }
    }

    /// Requests that joined an in-flight solve.
    pub fn joins(&self) -> u64 {
        self.joins.load(Ordering::Relaxed)
    }

    /// Completed solves whose result was delivered to ≥1 joiner. A solve
    /// nobody waited on is an ordinary miss, not a coalesced one, so it
    /// is not counted here.
    pub fn leader_solves(&self) -> u64 {
        self.leader_solves.load(Ordering::Relaxed)
    }

    /// Joiners that gave up waiting (each answered `overloaded`).
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Record one joiner timeout (called by the handler, which owns the
    /// response path).
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    fn publish(&self, key: &str, result: Option<CacheEntry>) {
        let flight = self.flights.lock().remove(key);
        if let Some(flight) = flight {
            if result.is_some() && !flight.waiters.is_empty() {
                self.leader_solves.fetch_add(1, Ordering::Relaxed);
            }
            for waiter in flight.waiters {
                // A send only fails if the joiner already timed out and
                // dropped its receiver — nothing left to wake.
                let _ = waiter.send(result.clone());
            }
        }
    }
}

/// The leader's obligation to publish. [`FlightGuard::publish`] delivers
/// the solved entry; dropping the guard unpublished (any error path, or
/// a panic unwinding out of the handler) delivers `None`, releasing the
/// joiners to solve for themselves.
pub struct FlightGuard<'a> {
    owner: &'a SingleFlight,
    key: String,
    published: bool,
}

impl FlightGuard<'_> {
    pub fn publish(mut self, entry: CacheEntry) {
        self.published = true;
        self.owner.publish(&self.key, Some(entry));
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.owner.publish(&self.key, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PlaceMethod;
    use rrf_flow::FlowReport;

    fn entry() -> CacheEntry {
        CacheEntry {
            method: PlaceMethod::Optimal,
            report: FlowReport {
                feasible: true,
                proven: true,
                extent: None,
                placements: vec![],
                metrics: None,
                stats: rrf_core::SolveStats::default(),
                floorplan: None,
            },
            budget: Duration::from_millis(100),
        }
    }

    #[test]
    fn leader_then_compatible_join_then_solo() {
        let sf = SingleFlight::default();
        let leader = match sf.begin("k", Duration::from_millis(100)) {
            Role::Leader(guard) => guard,
            _ => panic!("first miss must lead"),
        };
        // Equal-or-tighter budget joins; roomier goes solo.
        let rx = match sf.begin("k", Duration::from_millis(80)) {
            Role::Joiner(rx) => rx,
            _ => panic!("tighter budget must join"),
        };
        assert!(matches!(
            sf.begin("k", Duration::from_millis(150)),
            Role::Solo
        ));
        // A different key is unaffected by the in-flight solve.
        assert!(matches!(
            sf.begin("other", Duration::from_millis(80)),
            Role::Leader(_)
        ));

        leader.publish(entry());
        let got = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(got.is_some());
        assert_eq!(sf.joins(), 1);
        assert_eq!(sf.leader_solves(), 1);
        // The flight is gone: the key can lead again.
        assert!(matches!(
            sf.begin("k", Duration::from_millis(80)),
            Role::Leader(_)
        ));
    }

    #[test]
    fn dropped_guard_wakes_joiners_with_none() {
        let sf = SingleFlight::default();
        let leader = match sf.begin("k", Duration::from_millis(100)) {
            Role::Leader(guard) => guard,
            _ => panic!(),
        };
        let rx = match sf.begin("k", Duration::from_millis(100)) {
            Role::Joiner(rx) => rx,
            _ => panic!(),
        };
        drop(leader); // error path / panic unwind
        let got = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(got.is_none(), "failed flights publish None");
        // A failed flight is not a coalesced solve.
        assert_eq!(sf.leader_solves(), 0);
        assert_eq!(sf.joins(), 1);
    }

    #[test]
    fn solve_without_joiners_is_not_a_coalesced_solve() {
        let sf = SingleFlight::default();
        match sf.begin("k", Duration::from_millis(100)) {
            Role::Leader(guard) => guard.publish(entry()),
            _ => panic!(),
        }
        assert_eq!(sf.leader_solves(), 0);
    }

    #[test]
    fn timed_out_joiner_is_counted_and_harmless() {
        let sf = SingleFlight::default();
        let _leader = match sf.begin("k", Duration::from_millis(100)) {
            Role::Leader(guard) => guard,
            _ => panic!(),
        };
        let rx = match sf.begin("k", Duration::from_millis(50)) {
            Role::Joiner(rx) => rx,
            _ => panic!(),
        };
        // The joiner gives up (the handler answers `overloaded`, which
        // the retrying client treats as any other shed)...
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
        sf.record_timeout();
        drop(rx);
        assert_eq!(sf.timeouts(), 1);
        // ...and the leader's later publish must not panic or block on
        // the dropped receiver.
    }
}
