//! The daemon: TCP listener, bounded queue, worker pool, deadline
//! watchdog, and the request handlers.
//!
//! Threading model: one reader thread per connection parses NDJSON lines
//! and submits each request to a bounded MPMC queue (`try_send`, so a
//! full queue turns into an immediate backpressure error instead of an
//! unbounded backlog), then waits for that request's response and writes
//! it back — connections are served in order, parallelism comes from
//! serving many connections over `workers` pool threads. A watchdog
//! thread turns wall-clock deadlines into solver stop-flag trips, so an
//! in-flight search aborts mid-branch instead of overshooting; shutdown
//! trips every registered flag the same way.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use rrf_core::{
    baseline, cp, lns_improve_traced, metrics, verify, Floorplan, FrameCostModel, LnsConfig,
    OnlinePlacer, PlacementProblem, SolveStats,
};
use rrf_fabric::Region;
use rrf_flow::{resolve_module, FlowReport, FlowSpec, ModuleEntry, PlacedModuleReport, RegionSpec};
use rrf_sched::{AdmitOutcome, SchedConfig, Scheduler, TaskSpec};

use crate::admission::{estimated_wait_ms, retry_after_ms, Breaker};
use crate::cache::{
    cache_key, canonicalize, persist, remap_report, CacheEntry, FlightGuard, Probe, Role,
    ShardedCache, SingleFlight,
};
use crate::journal::{Journal, JournalRecord, SchedOp, SessionSnapshot, SlotSnapshot};
use crate::protocol::{AdoptedSession, PlaceMethod, Request, Response, SlotState};
use crate::stats::{DetailCollector, ServerStats};

/// Below this remaining budget the CP attempt is skipped entirely and the
/// ladder starts at the greedy seed.
const TIGHT_BUDGET: Duration = Duration::from_millis(200);
/// Minimum remaining budget worth spending on LNS over the greedy seed.
const LNS_WORTHWHILE: Duration = Duration::from_millis(20);
/// Poll interval of the connection reader loops and the watchdog.
const POLL: Duration = Duration::from_millis(20);
/// Extra wait a coalesced joiner grants the leader beyond the joiner's
/// own remaining budget (covers the leader's post-solve verify/remap
/// overhead). A joiner can only be waiting on a leader with at least as
/// much budget, so in practice the leader publishes well before this
/// fires; past it, the joiner answers `overloaded` (retry-safe — the
/// request never executed anything).
const COALESCE_SLACK: Duration = Duration::from_secs(2);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker pool size.
    pub workers: usize,
    /// Bounded request-queue depth; a full queue rejects with an error.
    pub queue_depth: usize,
    /// Deadline applied to `place` requests that do not carry their own.
    pub default_deadline_ms: u64,
    /// Placement-cache capacity (entries), split evenly across shards.
    pub cache_capacity: usize,
    /// Placement-cache lock stripes (shards). Concurrent requests for
    /// different specs only contend when their canonical keys hash to
    /// the same stripe; 1 reproduces the old single-mutex behavior.
    pub cache_shards: usize,
    /// Cache snapshot path. With a path, graceful shutdown writes the
    /// cache as a byte-deterministic NDJSON snapshot and startup
    /// warm-loads it (torn tails tolerated like the journal's), so a
    /// restarted daemon does not re-solve its whole working set.
    pub cache_persist_path: Option<String>,
    /// Single-flight coalescing: concurrent cache-missing `place`
    /// requests with the same canonical key and compatible budgets share
    /// one solve (see `cache::singleflight`). On by default; off is the
    /// cache-ablation baseline.
    pub coalesce: bool,
    /// Session journal path. `None` disables durability; with a path, the
    /// daemon replays the journal at startup (crash recovery) and logs
    /// every state-changing session operation before answering it.
    pub journal_path: Option<String>,
    /// fsync the journal after every N appended records (1 = every
    /// record; larger batches trade the log's tail for throughput).
    pub journal_fsync_every: u64,
    /// Trace output path (NDJSON, see `rrf-trace`). `None` disables
    /// tracing; with a path, every `place` request emits a `solve` span
    /// whose `solve.*` phase spans tile its wall time exactly, plus the
    /// solver's own `place`/`search` spans nested within.
    pub trace_path: Option<String>,
    /// Hard cap on concurrently open connections; one past the cap gets
    /// a single `overloaded` line and is closed (0 = unlimited).
    pub max_conns: usize,
    /// Maximum accepted request-line length in bytes. A longer line is
    /// answered with a structured error and discarded up to its newline;
    /// the connection survives, but the line buffer never grows past the
    /// cap — a hostile client cannot balloon daemon memory. Because each
    /// connection is served strictly in order, this also bounds the
    /// connection's in-flight request bytes.
    pub max_line_bytes: usize,
    /// Write timeout towards clients, milliseconds. A client that stalls
    /// a response write longer than this is forcibly disconnected (0 =
    /// no timeout).
    pub write_timeout_ms: u64,
    /// Grace period for shutdown: new requests are refused, but queued
    /// and in-flight ones get up to this long to finish before solver
    /// stop flags fire and the final journal snapshot is taken.
    pub shutdown_grace_ms: u64,
    /// Adaptive admission control. When on (the default), a full queue
    /// rejects immediately with `overloaded` + `retry_after_ms`, and a
    /// `place` request whose estimated queue wait already exceeds its
    /// deadline is shed before spending any solver budget. When off —
    /// the overload-ablation baseline — a full queue *blocks* the
    /// connection thread instead and nothing is shed.
    pub admission_control: bool,
    /// Consecutive deadline-blown CP attempts that trip the circuit
    /// breaker open (CP is then skipped in favor of the greedy/LNS
    /// ladder until a half-open probe succeeds).
    pub breaker_threshold: u32,
    /// How long an open breaker waits before admitting a half-open probe.
    pub breaker_cooldown_ms: u64,
    /// Stable name this backend reports in its `stats` reply (empty when
    /// unset). A cluster router matches it against its own backend table
    /// to verify which daemon answered a probe.
    pub backend_id: String,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            default_deadline_ms: 10_000,
            cache_capacity: 256,
            cache_shards: 8,
            cache_persist_path: None,
            coalesce: true,
            journal_path: None,
            journal_fsync_every: 1,
            trace_path: None,
            max_conns: 1024,
            max_line_bytes: 4 * 1024 * 1024,
            write_timeout_ms: 10_000,
            shutdown_grace_ms: 2_000,
            admission_control: true,
            breaker_threshold: 3,
            breaker_cooldown_ms: 5_000,
            backend_id: String::new(),
        }
    }
}

/// A deadline paired with the stop flag to trip when it passes.
type DeadlineEntry = (Instant, Arc<AtomicBool>);

/// Deadline → stop-flag bridge shared by workers and the watchdog thread.
#[derive(Clone, Default)]
struct Watchdog {
    entries: Arc<Mutex<Vec<DeadlineEntry>>>,
}

impl Watchdog {
    fn register(&self, deadline: Instant, flag: Arc<AtomicBool>) {
        self.entries.lock().push((deadline, flag));
    }

    /// Trip expired flags, drop finished entries (their solve released the
    /// only other handle).
    fn tick(&self) {
        let now = Instant::now();
        self.entries.lock().retain(|(deadline, flag)| {
            if now >= *deadline {
                flag.store(true, Ordering::Relaxed);
                return false;
            }
            Arc::strong_count(flag) > 1
        });
    }

    /// Trip everything (shutdown): in-flight solves abort promptly.
    fn fire_all(&self) {
        for (_, flag) in self.entries.lock().drain(..) {
            flag.store(true, Ordering::Relaxed);
        }
    }
}

/// What one scheduler op produced — the handler's view of
/// [`Session::apply_sched_op`]. Replay only inspects the submit outcome
/// (divergence check) and the failure marker.
enum SchedApplied {
    Opened,
    Submitted(Option<u64>, AdmitOutcome),
    Cancelled(rrf_sched::CancelOutcome),
    Advanced,
    Faulted,
    Cleared,
    /// The op could not be applied (no scheduler, unresolvable task spec)
    /// — only reachable through a corrupt or hand-edited journal, since
    /// the handlers validate before journaling.
    Failed,
}

/// One stateful online session.
struct Session {
    placer: OnlinePlacer,
    /// Resolved module per live slot, for reporting names.
    names: HashMap<u64, String>,
    /// The session's reservation scheduler (`rrf-sched`), created lazily
    /// by the first `submit_task`.
    sched: Option<Scheduler>,
    /// Complete ordered scheduler-op history. The scheduler is a pure
    /// function of this sequence, so snapshots carry it verbatim and
    /// restore replays it — that is the whole durability story for
    /// schedule state.
    sched_ops: Vec<SchedOp>,
    /// Deadline misses already folded into the detail collector, so each
    /// handler reports only the delta.
    sched_misses_reported: u64,
}

impl Session {
    fn new(region: Region) -> Session {
        Session {
            placer: OnlinePlacer::new(region),
            names: HashMap::new(),
            sched: None,
            sched_ops: Vec::new(),
            sched_misses_reported: 0,
        }
    }

    /// The single mutation path for schedule state: request handlers,
    /// journal replay, and snapshot restore all come through here, so a
    /// live scheduler and a recovered one see byte-identical op
    /// sequences. Appends the op to the durable history exactly when it
    /// applied.
    fn apply_sched_op(&mut self, op: &SchedOp, tracer: &rrf_trace::Tracer) -> SchedApplied {
        let applied = match op {
            SchedOp::Open { region } => {
                let config = SchedConfig {
                    tracer: tracer.clone(),
                    ..SchedConfig::default()
                };
                self.sched = Some(Scheduler::new(region.clone(), config));
                SchedApplied::Opened
            }
            _ => {
                let Some(sched) = &mut self.sched else {
                    return SchedApplied::Failed;
                };
                match op {
                    SchedOp::Submit { task } => match task.resolve() {
                        Ok(task) => {
                            let (id, outcome) = sched.submit(task);
                            SchedApplied::Submitted(id, outcome)
                        }
                        Err(_) => return SchedApplied::Failed,
                    },
                    SchedOp::Cancel { task } => SchedApplied::Cancelled(sched.cancel(*task)),
                    SchedOp::Advance { to } => {
                        sched.advance_to(*to);
                        SchedApplied::Advanced
                    }
                    SchedOp::Fault { fault } => {
                        sched.inject_fault(*fault);
                        SchedApplied::Faulted
                    }
                    SchedOp::ClearFault { fault } => {
                        sched.clear_fault(*fault);
                        SchedApplied::Cleared
                    }
                    SchedOp::Open { .. } => unreachable!("handled above"),
                }
            }
        };
        self.sched_ops.push(op.clone());
        applied
    }

    /// The session's full durable state (see [`crate::journal`]).
    fn snapshot(&self, session: u64) -> SessionSnapshot {
        SessionSnapshot {
            session,
            region: self.placer.region().clone(),
            next_slot: self.placer.next_slot(),
            stats: self.placer.stats(),
            slots: self
                .placer
                .slots()
                .into_iter()
                .map(|(slot, module, placed)| SlotSnapshot {
                    slot,
                    name: self.names.get(&slot).cloned().unwrap_or_default(),
                    module: module.clone(),
                    placed: *placed,
                })
                .collect(),
            sched_ops: self.sched_ops.clone(),
        }
    }

    fn restore(snapshot: SessionSnapshot) -> Session {
        let SessionSnapshot {
            region,
            next_slot,
            stats,
            slots,
            sched_ops,
            ..
        } = snapshot;
        let mut names = HashMap::new();
        let slots = slots
            .into_iter()
            .map(|s| {
                names.insert(s.slot, s.name);
                (s.slot, s.module, s.placed)
            })
            .collect();
        let mut session = Session {
            placer: OnlinePlacer::restore(region, slots, next_slot, stats),
            names,
            sched: None,
            sched_ops: Vec::new(),
            sched_misses_reported: 0,
        };
        let tracer = rrf_trace::Tracer::default();
        for op in &sched_ops {
            session.apply_sched_op(op, &tracer);
        }
        // Misses accumulated before this restore are history, not news:
        // only post-restore deltas reach the detail collector.
        session.sched_misses_reported = session
            .sched
            .as_ref()
            .map(|s| s.stats().deadline_misses)
            .unwrap_or(0);
        session
    }
}

/// State shared by every worker and connection thread.
///
/// Sessions are individually locked (`Arc<Mutex<Session>>` behind the
/// map): a long-running defrag in one session must not block inserts,
/// removes, or opens in any other — the map lock is only held long enough
/// to clone the session's `Arc` out.
struct Shared {
    config: ServerConfig,
    stats: Mutex<ServerStats>,
    /// Lock-striped placement cache; no outer lock — each shard locks
    /// itself (see [`crate::cache::shard`]).
    cache: ShardedCache,
    /// In-flight solve table for duplicate-request coalescing.
    singleflight: SingleFlight,
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    next_session: AtomicU64,
    watchdog: Watchdog,
    shutdown: AtomicBool,
    /// Session durability log (`None` when journaling is disabled). Lock
    /// order everywhere: sessions map → one session → journal; only the
    /// compactor holds more than one session at a time, ascending by id,
    /// with the map lock held throughout — so the order is acyclic.
    journal: Option<Mutex<Journal>>,
    /// Live worker-thread gauge; stays at the configured pool size even
    /// across caught handler panics.
    workers_alive: AtomicU64,
    /// Trace destination; disabled (free) unless `trace_path` is set.
    tracer: rrf_trace::Tracer,
    /// Per-phase latency aggregation behind the `stats_detail` request.
    detail: Mutex<DetailCollector>,
    /// Set while a graceful shutdown drains: new requests are refused,
    /// queued and in-flight ones run to completion (within the grace
    /// period) before the final snapshot.
    draining: AtomicBool,
    /// Requests admitted to the queue and not yet answered (queued +
    /// in-flight); the drain phase waits for this to reach zero.
    pending: AtomicU64,
    /// Open-connection gauge, enforced against `max_conns`.
    conns_open: AtomicU64,
    /// The CP rung's circuit breaker (see [`crate::admission`]).
    breaker: Mutex<Breaker>,
}

/// One queued request and the channel its response goes back on.
struct Job {
    request: Request,
    accepted_at: Instant,
    reply: Sender<Response>,
}

/// A running daemon; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the daemon: trip all in-flight stop flags, stop accepting,
    /// join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // Phase 1 — drain: refuse new requests but let everything already
        // admitted (queued or in a worker) finish naturally, so the final
        // snapshot never races an in-flight mutation and accepted work is
        // not cut off mid-solve. Bounded by `shutdown_grace_ms`.
        self.shared.draining.store(true, Ordering::SeqCst);
        let grace = Duration::from_millis(self.shared.config.shutdown_grace_ms);
        let deadline = Instant::now() + grace;
        while self.shared.pending.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Phase 2 — hard stop: trip every in-flight solver stop flag
        // (anything still running overstayed the grace period), stop the
        // loops, and join the pool.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.watchdog.fire_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // Snapshot-on-shutdown: with all workers joined, no session can
        // change any more; compact the journal down to one snapshot line
        // so the next start replays in O(sessions) instead of O(history).
        compact_journal(&self.shared);
        // Same quiescence argument for the cache snapshot: nothing can
        // insert any more, so the export is a consistent, final state.
        if let Some(path) = &self.shared.config.cache_persist_path {
            if let Err(e) = persist::save(path, &self.shared.cache.export()) {
                eprintln!("rrf-server: cache snapshot write failed: {e}");
            }
        }
        self.shared.tracer.flush();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind and start the daemon. With a configured journal path, any
/// existing journal is replayed first — sessions from a previous (possibly
/// crashed) run come back with bit-identical placements — and a torn tail
/// left by a crash mid-append is truncated before appending resumes.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let mut stats = ServerStats::default();
    let mut sessions = HashMap::new();
    let mut next_session = 1u64;
    let mut journal = None;
    if let Some(path) = &config.journal_path {
        let loaded = Journal::load(path)?;
        let replayed = replay_records(&loaded.records);
        sessions.extend(replayed.sessions);
        next_session = replayed.next_session;
        stats.recovered_sessions = sessions.len() as u64;
        stats.recovery_errors = replayed.errors + u64::from(loaded.truncated);
        journal = Some(Mutex::new(Journal::open(
            path,
            config.journal_fsync_every,
            Some(loaded.valid_len),
        )?));
    }

    let tracer = match &config.trace_path {
        Some(path) => rrf_trace::Tracer::new(Arc::new(rrf_trace::NdjsonSink::create(path)?)),
        None => rrf_trace::Tracer::default(),
    };

    // Warm-load the persisted cache snapshot, if configured: entries
    // come back with their original solve budgets, so the degraded-entry
    // upgrade rule keeps working across the restart.
    let cache = ShardedCache::new(config.cache_capacity, config.cache_shards);
    if let Some(path) = &config.cache_persist_path {
        let loaded = persist::load(path)?;
        stats.cache_persist_loaded = loaded.entries.len() as u64;
        stats.cache_load_errors = loaded.errors;
        for (key, entry) in loaded.entries {
            cache.insert(key, entry);
        }
    }

    let breaker = Breaker::new(
        config.breaker_threshold,
        Duration::from_millis(config.breaker_cooldown_ms),
    );
    let shared = Arc::new(Shared {
        config,
        stats: Mutex::new(stats),
        cache,
        singleflight: SingleFlight::default(),
        sessions: Mutex::new(sessions),
        next_session: AtomicU64::new(next_session),
        watchdog: Watchdog::default(),
        shutdown: AtomicBool::new(false),
        journal,
        workers_alive: AtomicU64::new(0),
        tracer,
        detail: Mutex::new(DetailCollector::default()),
        draining: AtomicBool::new(false),
        pending: AtomicU64::new(0),
        conns_open: AtomicU64::new(0),
        breaker: Mutex::new(breaker),
    });

    let (jobs_tx, jobs_rx) = channel::bounded::<Job>(shared.config.queue_depth.max(1));
    let mut threads = Vec::new();

    for _ in 0..shared.config.workers.max(1) {
        let shared = Arc::clone(&shared);
        let rx = jobs_rx.clone();
        threads.push(std::thread::spawn(move || {
            shared.workers_alive.fetch_add(1, Ordering::SeqCst);
            worker_loop(&shared, &rx);
            shared.workers_alive.fetch_sub(1, Ordering::SeqCst);
        }));
    }
    drop(jobs_rx);

    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                shared.watchdog.tick();
                std::thread::sleep(POLL);
            }
            shared.watchdog.fire_all();
        }));
    }

    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &shared, &jobs_tx)
        }));
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

/// Decrements the open-connection gauge however the connection thread
/// exits (clean close, io error, or shutdown).
struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.conns_open.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, jobs_tx: &Sender<Job>) {
    // Connection threads are detached: they exit on client disconnect or
    // on the shutdown flag (their reads time out every POLL interval).
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Hard connection cap: one past the limit gets a single
                // `overloaded` line (with a backpressure hint) and is
                // closed — bounded thread count, bounded accept backlog.
                let cap = shared.config.max_conns;
                if cap > 0 && shared.conns_open.load(Ordering::SeqCst) >= cap as u64 {
                    reject_connection(stream, shared);
                    continue;
                }
                shared.conns_open.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                let jobs_tx = jobs_tx.clone();
                std::thread::spawn(move || {
                    let _guard = ConnGuard(&shared);
                    let _ = serve_connection(stream, &shared, &jobs_tx);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
}

/// Turn away a connection at the `max_conns` cap: best-effort write of
/// one structured `overloaded` line, then drop the stream.
fn reject_connection(mut stream: TcpStream, shared: &Shared) {
    shared.stats.lock().conns_rejected += 1;
    let p50 = shared.detail.lock().solve_p50_us();
    let response = Response::Overloaded {
        id: 0,
        message: "server overloaded: connection limit reached".to_string(),
        retry_after_ms: retry_after_ms(p50, shared.config.queue_depth, shared.config.workers),
    };
    // rrf-lint: allow(RRFL004, reason="Response serialization cannot fail (no non-string map keys, no fallible Serialize impls); a panic would only drop this already-rejected connection")
    let mut line = serde_json::to_string(&response).expect("protocol types serialize infallibly");
    line.push('\n');
    let _ = stream.set_write_timeout(Some(Duration::from_millis(1_000)));
    let _ = stream.write_all(line.as_bytes());
}

/// Serialize and write one response line. A write that stalls past the
/// configured write timeout marks the client slow; the caller drops the
/// connection (a half-written line is unrecoverable anyway).
fn write_response(
    writer: &mut TcpStream,
    response: &Response,
    shared: &Shared,
) -> std::io::Result<()> {
    // rrf-lint: allow(RRFL004, reason="Response serialization cannot fail (no non-string map keys, no fallible Serialize impls); a panic would only tear down this one connection thread")
    let mut out = serde_json::to_string(response).expect("protocol types serialize infallibly");
    out.push('\n');
    writer.write_all(out.as_bytes()).inspect_err(|e| {
        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut {
            shared.stats.lock().slow_client_disconnects += 1;
        }
    })
}

/// Best-effort recovery of the `"id"` field from a raw (possibly
/// truncated) request line that will never parse as JSON — the reserved
/// sentinel 0 when none can be found.
fn scan_id(bytes: &[u8]) -> u64 {
    let Some(pos) = bytes.windows(4).position(|w| w == b"\"id\"") else {
        return 0;
    };
    let mut it = bytes[pos + 4..]
        .iter()
        .copied()
        .skip_while(|b| b.is_ascii_whitespace());
    if it.next() != Some(b':') {
        return 0;
    }
    let digits: Vec<u8> = it
        .skip_while(|b| b.is_ascii_whitespace())
        .take_while(|b| b.is_ascii_digit())
        .collect();
    std::str::from_utf8(&digits)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn serve_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    jobs_tx: &Sender<Job>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    if shared.config.write_timeout_ms > 0 {
        stream.set_write_timeout(Some(Duration::from_millis(shared.config.write_timeout_ms)))?;
    }
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let max_line = shared.config.max_line_bytes.max(1);
    // The line buffer is bounded by `max_line`: once a line exceeds the
    // cap it is answered with a structured error and the remainder is
    // *discarded* chunk by chunk — a hostile or broken client cannot
    // grow daemon memory with an endless unterminated line.
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let (chunk, newline_at) = {
            let available = match reader.fill_buf() {
                Ok(buf) => buf,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    continue
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                return Ok(()); // client closed
            }
            let newline_at = available.iter().position(|&b| b == b'\n');
            let upto = newline_at.map(|p| p + 1).unwrap_or(available.len());
            (available[..upto].to_vec(), newline_at)
        };
        reader.consume(chunk.len());
        let body = match newline_at {
            Some(p) => &chunk[..p],
            None => &chunk[..],
        };
        if discarding {
            // Tail of an already-rejected oversized line.
            discarding = newline_at.is_none();
            continue;
        }
        if line.len() + body.len() > max_line {
            // Cap blown mid-line: keep only the capped prefix (enough to
            // scan for the request id), answer once, discard the rest.
            let keep = max_line.saturating_sub(line.len()).min(body.len());
            line.extend_from_slice(&body[..keep]);
            shared.stats.lock().oversized_lines += 1;
            let response = Response::Error {
                id: scan_id(&line),
                message: format!("request line exceeds {max_line} byte cap"),
            };
            line.clear();
            discarding = newline_at.is_none();
            write_response(&mut writer, &response, shared)?;
            continue;
        }
        line.extend_from_slice(body);
        if newline_at.is_none() {
            continue; // mid-line: wait for the rest
        }
        let text = String::from_utf8_lossy(&line).into_owned();
        let response = dispatch(text.trim(), shared, jobs_tx);
        line.clear();
        if let Some(response) = response {
            write_response(&mut writer, &response, shared)?;
        }
    }
}

/// Parse one request line, run it through the queue, return its response
/// (`None` for blank lines).
fn dispatch(line: &str, shared: &Arc<Shared>, jobs_tx: &Sender<Job>) -> Option<Response> {
    if line.is_empty() {
        return None;
    }
    shared.stats.lock().requests += 1;
    let request = match serde_json::from_str::<Request>(line) {
        Ok(request) => request,
        Err(e) => {
            shared.stats.lock().protocol_errors += 1;
            // Best effort: a line that is valid JSON but not a valid
            // request (wrong shape, unknown type) still gets its own
            // correlation id echoed back, so pipelining clients can tell
            // which request failed. Only when the id itself is
            // unrecoverable does the reserved sentinel 0 appear — see the
            // protocol docs; clients must use ids >= 1.
            let id = serde_json::from_str::<serde_json::Value>(line)
                .ok()
                .and_then(|v| v.get("id")?.as_u64())
                .unwrap_or(0);
            return Some(Response::Error {
                id,
                message: format!("unparseable request: {e}"),
            });
        }
    };
    let id = request.id();
    if shared.draining.load(Ordering::SeqCst) {
        shared.stats.lock().rejected_draining += 1;
        return Some(Response::Error {
            id,
            message: "server draining for shutdown".to_string(),
        });
    }
    let workers = shared.config.workers.max(1);
    // Deadline-aware shedding: if the backlog alone already eats the
    // request's whole deadline, solving it would only waste budget the
    // queued requests need — reject up front with an honest hint.
    if shared.config.admission_control {
        if let Request::Place { deadline_ms, .. } = &request {
            let deadline = deadline_ms.unwrap_or(shared.config.default_deadline_ms);
            let depth = jobs_tx.len();
            let p50 = shared.detail.lock().solve_p50_us();
            if let Some(est) = estimated_wait_ms(p50, depth, workers) {
                if est > deadline {
                    shared.stats.lock().shed_deadline += 1;
                    return Some(Response::Overloaded {
                        id,
                        message: format!(
                            "server overloaded: estimated queue wait {est}ms \
                             exceeds deadline {deadline}ms"
                        ),
                        retry_after_ms: retry_after_ms(p50, depth, workers),
                    });
                }
            }
        }
    }
    let (reply_tx, reply_rx) = channel::bounded::<Response>(1);
    let job = Job {
        request,
        accepted_at: Instant::now(),
        reply: reply_tx,
    };
    // `pending` counts admitted-but-unanswered requests (for the shutdown
    // drain). Incremented *before* the send so a fast worker can never
    // decrement first and underflow the gauge.
    shared.pending.fetch_add(1, Ordering::SeqCst);
    let send_result = if shared.config.admission_control {
        jobs_tx.try_send(job)
    } else {
        // No-shedding mode (ablation baseline): block until the queue
        // accepts, however long that takes.
        jobs_tx
            .send(job)
            .map_err(|e| TrySendError::Disconnected(e.0))
    };
    match send_result {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            let depth = jobs_tx.len();
            let p50 = shared.detail.lock().solve_p50_us();
            shared.stats.lock().rejected_backpressure += 1;
            return Some(Response::Overloaded {
                id,
                message: "server overloaded: request queue full".to_string(),
                retry_after_ms: retry_after_ms(p50, depth, workers),
            });
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(Response::Error {
                id,
                message: "server shutting down".to_string(),
            });
        }
    }
    match reply_rx.recv() {
        Ok(response) => Some(response),
        Err(_) => Some(Response::Error {
            id,
            message: "server shutting down".to_string(),
        }),
    }
}

fn worker_loop(shared: &Arc<Shared>, jobs: &Receiver<Job>) {
    loop {
        match jobs.recv_timeout(POLL) {
            Ok(job) => {
                // A panicking handler must cost one response, not one
                // worker: catch the unwind, answer with an internal
                // error, and keep serving. parking_lot mutexes release on
                // unwind (no poisoning), so shared state stays usable.
                let response = catch_unwind(AssertUnwindSafe(|| handle(shared, &job)))
                    .unwrap_or_else(|_| {
                        shared.stats.lock().worker_panics += 1;
                        Response::Error {
                            id: job.request.id(),
                            message: "internal error: request handler panicked".to_string(),
                        }
                    });
                let _ = job.reply.send(response);
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle(shared: &Arc<Shared>, job: &Job) -> Response {
    match &job.request {
        Request::Place {
            id,
            spec,
            deadline_ms,
        } => handle_place(shared, *id, spec, *deadline_ms, job.accepted_at),
        Request::Analyze { id, spec } => handle_analyze(shared, *id, spec, job.accepted_at),
        Request::OpenSession { id, region } => handle_open_session(shared, *id, region),
        Request::Insert {
            id,
            session,
            module,
        } => handle_insert(shared, *id, *session, module),
        Request::Remove { id, session, slot } => with_session(shared, *id, *session, |s| {
            let removed = s.placer.remove(*slot);
            if removed {
                s.names.remove(slot);
                journal_append(
                    shared,
                    &JournalRecord::Remove {
                        session: *session,
                        slot: *slot,
                    },
                );
                shared.stats.lock().online_removals += 1;
            }
            Response::Removed {
                id: *id,
                session: *session,
                removed,
                utilization: s.placer.utilization(),
            }
        }),
        Request::Defrag { id, session } => {
            let response = with_session(shared, *id, *session, |s| {
                let moved = s.placer.defrag() as u64;
                journal_append(shared, &JournalRecord::Defrag { session: *session });
                shared.stats.lock().online_defrags += 1;
                Response::Defragged {
                    id: *id,
                    session: *session,
                    moved,
                    utilization: s.placer.utilization(),
                }
            });
            // A defrag is the natural compaction point: the layout was
            // just repacked, so fold the whole history into one snapshot.
            if matches!(response, Response::Defragged { .. }) {
                compact_journal(shared);
            }
            response
        }
        Request::CloseSession { id, session } => {
            let closed = shared.sessions.lock().remove(session).is_some();
            if closed {
                journal_append(shared, &JournalRecord::Close { session: *session });
                shared.stats.lock().sessions_closed += 1;
            }
            Response::SessionClosed {
                id: *id,
                session: *session,
                closed,
            }
        }
        Request::InjectFault { id, session, fault } => with_session(shared, *id, *session, |s| {
            let impact = s.placer.inject_fault(*fault);
            // The session scheduler plans over the same fabric: the fault
            // reaches it too (kills started work on the dead tiles, evicts
            // and requeues future bookings). One journal record covers
            // both — replay routes it into both as well.
            if s.sched.is_some() {
                s.apply_sched_op(&SchedOp::Fault { fault: *fault }, &shared.tracer);
                note_sched_detail(shared, s);
            }
            journal_append(
                shared,
                &JournalRecord::Fault {
                    session: *session,
                    fault: *fault,
                },
            );
            shared.stats.lock().faults_injected += 1;
            Response::FaultInjected {
                id: *id,
                session: *session,
                tiles: impact.tiles.len() as u64,
                displaced: impact.displaced,
                total_faults: s.placer.region().faults().len() as u64,
            }
        }),
        Request::ClearFault { id, session, fault } => with_session(shared, *id, *session, |s| {
            let tiles = s.placer.clear_fault(*fault);
            if s.sched.is_some() {
                s.apply_sched_op(&SchedOp::ClearFault { fault: *fault }, &shared.tracer);
                note_sched_detail(shared, s);
            }
            journal_append(
                shared,
                &JournalRecord::ClearFault {
                    session: *session,
                    fault: *fault,
                },
            );
            shared.stats.lock().faults_cleared += 1;
            Response::FaultCleared {
                id: *id,
                session: *session,
                tiles: tiles.len() as u64,
                total_faults: s.placer.region().faults().len() as u64,
            }
        }),
        Request::Repair {
            id,
            session,
            budget_ms,
        } => with_session(shared, *id, *session, |s| {
            let budget =
                Duration::from_millis(budget_ms.unwrap_or(shared.config.default_deadline_ms));
            let report = s.placer.repair(budget, &FrameCostModel::default());
            for slot in &report.evicted {
                s.names.remove(slot);
            }
            // Repair is deadline-dependent, so it is journaled by outcome
            // (the report's state delta), never recomputed on replay.
            journal_append(
                shared,
                &JournalRecord::Repair {
                    session: *session,
                    report: report.clone(),
                },
            );
            {
                let mut stats = shared.stats.lock();
                stats.repairs += 1;
                stats.repaired_relocated += report.relocated_count() as u64;
                stats.repaired_evicted += report.evicted.len() as u64;
            }
            Response::Repaired {
                id: *id,
                session: *session,
                report,
                utilization: s.placer.utilization(),
            }
        }),
        Request::SubmitTask { id, session, task } => {
            handle_submit_task(shared, *id, *session, task)
        }
        Request::CancelTask { id, session, task } => with_session(shared, *id, *session, |s| {
            if s.sched.is_none() {
                // No scheduler yet means no such task — a benign miss,
                // not an error, and nothing to journal.
                return Response::TaskCancelled {
                    id: *id,
                    session: *session,
                    outcome: rrf_sched::CancelOutcome::Unknown.as_str().to_string(),
                    now: 0,
                };
            }
            let op = SchedOp::Cancel { task: *task };
            let applied = s.apply_sched_op(&op, &shared.tracer);
            journal_append(
                shared,
                &JournalRecord::Sched {
                    session: *session,
                    sched: op,
                    admitted: None,
                },
            );
            shared.stats.lock().sched_cancels += 1;
            note_sched_detail(shared, s);
            let outcome = match applied {
                SchedApplied::Cancelled(outcome) => outcome.as_str().to_string(),
                _ => rrf_sched::CancelOutcome::Unknown.as_str().to_string(),
            };
            Response::TaskCancelled {
                id: *id,
                session: *session,
                outcome,
                now: s.sched.as_ref().map(|g| g.now()).unwrap_or(0),
            }
        }),
        Request::ScheduleStatus {
            id,
            session,
            advance_to,
        } => with_session(shared, *id, *session, |s| {
            if let Some(to) = advance_to {
                // An advance mutates the schedule (tasks finish, queued
                // work commits or expires), so it is journaled; a plain
                // status read is not.
                if s.sched.is_some() {
                    let op = SchedOp::Advance { to: *to };
                    s.apply_sched_op(&op, &shared.tracer);
                    journal_append(
                        shared,
                        &JournalRecord::Sched {
                            session: *session,
                            sched: op,
                            admitted: None,
                        },
                    );
                    shared.stats.lock().sched_advances += 1;
                    note_sched_detail(shared, s);
                }
            }
            schedule_response(*id, *session, s)
        }),
        Request::DumpSession { id, session } => with_session(shared, *id, *session, |s| {
            let slots = s
                .placer
                .slots()
                .into_iter()
                .map(|(slot, _, p)| SlotState {
                    slot,
                    name: s.names.get(&slot).cloned().unwrap_or_default(),
                    shape: p.shape,
                    x: p.x,
                    y: p.y,
                })
                .collect();
            Response::SessionState {
                id: *id,
                session: *session,
                next_slot: s.placer.next_slot(),
                grid_digest: format!("{:016x}", s.placer.grid_digest()),
                total_faults: s.placer.region().faults().len() as u64,
                slots,
            }
        }),
        Request::AdoptJournal { id, path } => handle_adopt_journal(shared, *id, path),
        Request::DebugPanic { .. } => panic!("debug_panic requested by client"),
        Request::Stats { id } => {
            let mut stats = shared.stats.lock().clone();
            stats.backend_id = shared.config.backend_id.clone();
            stats.pending = shared.pending.load(Ordering::SeqCst);
            stats.workers_alive = shared.workers_alive.load(Ordering::SeqCst);
            stats.conns_open = shared.conns_open.load(Ordering::SeqCst);
            stats.cache_evictions = shared.cache.evictions();
            stats.coalesced_joins = shared.singleflight.joins();
            stats.coalesced_leader_solves = shared.singleflight.leader_solves();
            Response::Stats { id: *id, stats }
        }
        Request::StatsDetail { id } => {
            let mut detail = shared.detail.lock().snapshot();
            detail.breaker = shared.breaker.lock().stats();
            detail.cache = shared.cache.detail();
            detail.cache.coalesced_joins = shared.singleflight.joins();
            detail.cache.coalesced_leader_solves = shared.singleflight.leader_solves();
            detail.cache.coalesce_timeouts = shared.singleflight.timeouts();
            {
                let stats = shared.stats.lock();
                detail.cache.persist_loaded = stats.cache_persist_loaded;
                detail.cache.load_errors = stats.cache_load_errors;
            }
            Response::StatsDetail { id: *id, detail }
        }
        Request::Ping { id } => Response::Pong { id: *id },
    }
}

/// Append one record to the journal, if journaling is on. Called while
/// holding the affected session's lock, so the journal's per-session
/// order matches the order operations were applied in.
fn journal_append(shared: &Shared, record: &JournalRecord) {
    let Some(journal) = &shared.journal else {
        return;
    };
    match journal.lock().append(record) {
        Ok(()) => shared.stats.lock().journal_records += 1,
        Err(_) => shared.stats.lock().journal_errors += 1,
    }
}

/// Fold the whole journal into a single snapshot record (temp file +
/// fsync + atomic rename). Freezes the world first — the sessions map
/// plus every session lock, ascending by id — so no operation can slip
/// its record between the snapshot and the rewrite. Must not be called
/// while holding any session lock.
fn compact_journal(shared: &Shared) {
    let Some(journal) = &shared.journal else {
        return;
    };
    let map = shared.sessions.lock();
    let mut entries: Vec<(u64, Arc<Mutex<Session>>)> =
        map.iter().map(|(k, v)| (*k, Arc::clone(v))).collect();
    entries.sort_by_key(|(k, _)| *k);
    let guards: Vec<_> = entries.iter().map(|(k, v)| (*k, v.lock())).collect();
    let snapshot = JournalRecord::Snapshot {
        next_session: shared.next_session.load(Ordering::SeqCst),
        sessions: guards.iter().map(|(k, g)| g.snapshot(*k)).collect(),
    };
    match journal.lock().rewrite(std::slice::from_ref(&snapshot)) {
        Ok(()) => {
            let mut stats = shared.stats.lock();
            stats.journal_compactions += 1;
            stats.journal_records += 1;
        }
        Err(_) => shared.stats.lock().journal_errors += 1,
    }
}

/// Sessions rebuilt from a journal, plus replay bookkeeping. The map is
/// ordered (BTreeMap) so replay output never depends on hash order.
struct Replayed {
    sessions: BTreeMap<u64, Arc<Mutex<Session>>>,
    next_session: u64,
    /// Records that could not be applied, or whose deterministic replay
    /// diverged from the journaled outcome.
    errors: u64,
}

/// Rebuild session state from journal records. Deterministic operations
/// re-execute through the live code paths; repairs apply their journaled
/// state delta; a snapshot record resets everything to its contents.
fn replay_records(records: &[JournalRecord]) -> Replayed {
    let mut sessions: BTreeMap<u64, Session> = BTreeMap::new();
    let mut next_session = 1u64;
    let mut errors = 0u64;
    for record in records {
        match record {
            JournalRecord::Snapshot {
                next_session: ns,
                sessions: snaps,
            } => {
                sessions.clear();
                next_session = *ns;
                for snap in snaps {
                    sessions.insert(snap.session, Session::restore(snap.clone()));
                }
            }
            JournalRecord::Open { session, region } => {
                next_session = next_session.max(session + 1);
                if sessions.contains_key(session) {
                    continue; // snapshot already covered this open
                }
                match region.build() {
                    Ok(r) => {
                        sessions.insert(*session, Session::new(r));
                    }
                    Err(_) => errors += 1,
                }
            }
            JournalRecord::Insert {
                session,
                slot,
                module,
            } => {
                let Some(s) = sessions.get_mut(session) else {
                    errors += 1;
                    continue;
                };
                match resolve_module(module) {
                    Ok(m) => {
                        let got = s.placer.try_insert(&m);
                        if got != *slot {
                            errors += 1;
                        }
                        if let Some(slot) = got {
                            s.names.insert(slot, module.name.clone());
                        }
                    }
                    Err(_) => errors += 1,
                }
            }
            JournalRecord::Remove { session, slot } => match sessions.get_mut(session) {
                Some(s) => {
                    if s.placer.remove(*slot) {
                        s.names.remove(slot);
                    } else {
                        errors += 1;
                    }
                }
                None => errors += 1,
            },
            JournalRecord::Defrag { session } => match sessions.get_mut(session) {
                Some(s) => {
                    s.placer.defrag();
                }
                None => errors += 1,
            },
            JournalRecord::Fault { session, fault } => match sessions.get_mut(session) {
                Some(s) => {
                    s.placer.inject_fault(*fault);
                    // Mirrors the handler: one fault record feeds both the
                    // online placer and the session scheduler.
                    if s.sched.is_some() {
                        s.apply_sched_op(
                            &SchedOp::Fault { fault: *fault },
                            &rrf_trace::Tracer::default(),
                        );
                    }
                }
                None => errors += 1,
            },
            JournalRecord::ClearFault { session, fault } => match sessions.get_mut(session) {
                Some(s) => {
                    s.placer.clear_fault(*fault);
                    if s.sched.is_some() {
                        s.apply_sched_op(
                            &SchedOp::ClearFault { fault: *fault },
                            &rrf_trace::Tracer::default(),
                        );
                    }
                }
                None => errors += 1,
            },
            JournalRecord::Sched {
                session,
                sched,
                admitted,
            } => match sessions.get_mut(session) {
                Some(s) => match s.apply_sched_op(sched, &rrf_trace::Tracer::default()) {
                    // Deterministic replay must hand out the same task id
                    // the live run journaled; anything else is divergence.
                    SchedApplied::Submitted(got, _) if got != *admitted => errors += 1,
                    SchedApplied::Failed => errors += 1,
                    _ => {}
                },
                None => errors += 1,
            },
            JournalRecord::Repair { session, report } => match sessions.get_mut(session) {
                Some(s) => {
                    s.placer.apply_repair(report);
                    for slot in &report.evicted {
                        s.names.remove(slot);
                    }
                }
                None => errors += 1,
            },
            JournalRecord::Close { session } => {
                sessions.remove(session);
            }
        }
    }
    Replayed {
        sessions: sessions
            .into_iter()
            .map(|(k, v)| (k, Arc::new(Mutex::new(v))))
            .collect(),
        next_session,
        errors,
    }
}

/// One session's state at digest granularity, as produced by
/// [`replay_summary`] — enough to compare two replays for bit-identical
/// equivalence without exposing the live session type.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReplaySessionSummary {
    pub session: u64,
    pub grid_digest: u64,
    pub next_slot: u64,
    pub occupied_slots: u64,
}

/// Deterministic digest of replaying a record sequence, for robustness
/// tests: two replays of the same records must produce equal summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySummary {
    pub next_session: u64,
    pub recovery_errors: u64,
    /// Sorted by session id.
    pub sessions: Vec<ReplaySessionSummary>,
}

/// Replay journal records and summarize the resulting state. This is the
/// same replay the daemon runs at startup; tests use it to assert that
/// recovery from arbitrary journal prefixes is deterministic and
/// panic-free.
pub fn replay_summary(records: &[JournalRecord]) -> ReplaySummary {
    let replayed = replay_records(records);
    let mut sessions: Vec<ReplaySessionSummary> = replayed
        .sessions
        .iter()
        .map(|(id, session)| {
            let session = session.lock();
            ReplaySessionSummary {
                session: *id,
                grid_digest: session.placer.grid_digest(),
                next_slot: session.placer.next_slot(),
                occupied_slots: session.placer.slots().len() as u64,
            }
        })
        .collect();
    sessions.sort();
    ReplaySummary {
        next_session: replayed.next_session,
        recovery_errors: replayed.errors,
        sessions,
    }
}

fn with_session(
    shared: &Arc<Shared>,
    id: u64,
    session: u64,
    f: impl FnOnce(&mut Session) -> Response,
) -> Response {
    // Clone the Arc out and release the map lock before the (possibly
    // slow) placer operation, so other sessions stay responsive.
    let entry = shared.sessions.lock().get(&session).cloned();
    match entry {
        Some(s) => f(&mut s.lock()),
        None => Response::Error {
            id,
            message: format!("unknown session {session}"),
        },
    }
}

fn handle_open_session(shared: &Arc<Shared>, id: u64, spec: &RegionSpec) -> Response {
    let region = match spec.build() {
        Ok(region) => region,
        Err(e) => {
            return Response::Error {
                id,
                message: format!("region spec error: {e}"),
            }
        }
    };
    let session = shared.next_session.fetch_add(1, Ordering::Relaxed);
    shared
        .sessions
        .lock()
        .insert(session, Arc::new(Mutex::new(Session::new(region))));
    // Journaled after the map insert: a compaction racing in between
    // snapshots the (empty) session, and replay treats an `Open` for an
    // already-live session as a no-op.
    journal_append(
        shared,
        &JournalRecord::Open {
            session,
            region: spec.clone(),
        },
    );
    shared.stats.lock().sessions_opened += 1;
    Response::SessionOpened { id, session }
}

/// Graft a dead peer's journaled sessions into this daemon under fresh
/// session ids, through the exact replay path startup recovery uses. The
/// peer's journal file is only read, never modified; once the sessions
/// are live here, this daemon's own journal is compacted so the adopted
/// state survives *our* next restart without the peer's file.
fn handle_adopt_journal(shared: &Arc<Shared>, id: u64, path: &str) -> Response {
    let loaded = match Journal::load(path) {
        Ok(loaded) => loaded,
        Err(e) => {
            return Response::Error {
                id,
                message: format!("adopt_journal: cannot read {path}: {e}"),
            }
        }
    };
    let mut errors: Vec<String> = Vec::new();
    if loaded.truncated {
        errors.push("torn tail dropped".to_string());
    }
    let replayed = replay_records(&loaded.records);
    if replayed.errors > 0 {
        errors.push(format!("{} replay divergences", replayed.errors));
    }
    // The BTreeMap iterates ascending by the journal's session id, so the
    // old-id -> new-id mapping is deterministic for a given journal.
    let mut adopted = Vec::with_capacity(replayed.sessions.len());
    {
        let mut map = shared.sessions.lock();
        for (from, session) in replayed.sessions {
            let to = shared.next_session.fetch_add(1, Ordering::Relaxed);
            map.insert(to, session);
            adopted.push(AdoptedSession { from, to });
        }
    }
    {
        let mut stats = shared.stats.lock();
        stats.adopted_sessions += adopted.len() as u64;
        stats.recovery_errors += replayed.errors;
    }
    // No session lock is held here, so compacting is safe; it snapshots
    // the grafted sessions into our journal in one durable record.
    if !adopted.is_empty() {
        compact_journal(shared);
    }
    Response::JournalAdopted {
        id,
        adopted,
        errors,
    }
}

fn handle_insert(shared: &Arc<Shared>, id: u64, session: u64, entry: &ModuleEntry) -> Response {
    let module = match resolve_module(entry) {
        Ok(module) => module,
        Err(e) => {
            return Response::Error {
                id,
                message: e.to_string(),
            }
        }
    };
    with_session(shared, id, session, |s| {
        let slot = s.placer.try_insert(&module);
        // Rejections are journaled too: the placer's acceptance counters
        // are part of the durable session state, and replaying the same
        // deterministic insert yields the same rejection.
        journal_append(
            shared,
            &JournalRecord::Insert {
                session,
                slot,
                module: entry.clone(),
            },
        );
        {
            let mut stats = shared.stats.lock();
            stats.online_inserts += 1;
            match slot {
                Some(_) => stats.online_accepted += 1,
                None => stats.online_rejected += 1,
            }
        }
        let placement = slot.and_then(|slot| {
            s.names.insert(slot, entry.name.clone());
            s.placer.placement_of(slot).map(|p| PlacedModuleReport {
                name: entry.name.clone(),
                shape: p.shape,
                x: p.x,
                y: p.y,
            })
        });
        Response::Inserted {
            id,
            session,
            slot,
            placement,
            utilization: s.placer.utilization(),
        }
    })
}

/// Fold one scheduler mutation's observable deltas into the counters
/// behind `stats_detail`: the queue-depth gauge after the op, and any
/// deadline misses it produced. Called with the session lock held.
fn note_sched_detail(shared: &Shared, s: &mut Session) {
    let Some(sched) = &s.sched else { return };
    let misses = sched.stats().deadline_misses;
    let delta = misses.saturating_sub(s.sched_misses_reported);
    s.sched_misses_reported = misses;
    let mut detail = shared.detail.lock();
    detail.record_sched_queue_depth(sched.queue_depth() as u64);
    if delta > 0 {
        detail.record_deadline_misses(delta);
    }
}

/// The `schedule_status` reply body. A session that never submitted a
/// task has no scheduler; it reads as an empty schedule at tick 0.
fn schedule_response(id: u64, session: u64, s: &Session) -> Response {
    match &s.sched {
        Some(sched) => Response::Schedule {
            id,
            session,
            now: sched.now(),
            queue_depth: sched.queue_depth() as u64,
            digest: format!("{:016x}", sched.digest()),
            reservations: sched.reservations().into_iter().cloned().collect(),
            stats: sched.stats().clone(),
        },
        None => Response::Schedule {
            id,
            session,
            now: 0,
            queue_depth: 0,
            digest: format!("{:016x}", 0u64),
            reservations: vec![],
            stats: rrf_sched::SchedStats::default(),
        },
    }
}

/// Admit one task into the session's scheduler, creating the scheduler on
/// first use. The scheduler's region is frozen at creation: the session
/// region as of that moment (faults included) with every live slot's
/// footprint added as a static mask, so scheduled work never lands on
/// tiles the online placer already occupies. The freeze is journaled as
/// its own `SchedOp::Open` record, making replay independent of whatever
/// the session's slots and faults do afterwards.
fn handle_submit_task(shared: &Arc<Shared>, id: u64, session: u64, spec: &TaskSpec) -> Response {
    // Validate up front: an unresolvable module is a protocol error, not
    // a scheduler rejection, and is never journaled.
    if let Err(e) = spec.resolve() {
        return Response::Error {
            id,
            message: format!("task spec error: {e}"),
        };
    }
    with_session(shared, id, session, |s| {
        let span = rrf_trace::tspan!(shared.tracer, "sched.admit", "req" => id);
        if s.sched.is_none() {
            let mut region = s.placer.region().clone();
            for (_, module, placed) in s.placer.slots() {
                for b in module.shapes()[placed.shape].boxes() {
                    region.add_static_mask(b.placed(placed.x, placed.y));
                }
            }
            let open = SchedOp::Open { region };
            s.apply_sched_op(&open, &shared.tracer);
            journal_append(
                shared,
                &JournalRecord::Sched {
                    session,
                    sched: open,
                    admitted: None,
                },
            );
        }
        let op = SchedOp::Submit { task: spec.clone() };
        let applied = s.apply_sched_op(&op, &shared.tracer);
        let (task_id, outcome) = match applied {
            SchedApplied::Submitted(task_id, outcome) => (task_id, outcome),
            _ => (None, AdmitOutcome::RejectedUnplaceable),
        };
        journal_append(
            shared,
            &JournalRecord::Sched {
                session,
                sched: op,
                admitted: task_id,
            },
        );
        {
            let mut stats = shared.stats.lock();
            stats.sched_submits += 1;
            match task_id {
                Some(_) => stats.sched_admitted += 1,
                None => stats.sched_rejected += 1,
            }
        }
        note_sched_detail(shared, s);
        span.close();
        let sched = s.sched.as_ref().expect("scheduler exists after submit");
        Response::TaskSubmitted {
            id,
            session,
            task: task_id,
            outcome: outcome.as_str().to_string(),
            queue_depth: sched.queue_depth() as u64,
            now: sched.now(),
        }
    })
}

/// Run the static analyzer over a full job spec: zero solving, never
/// subject to the deadline machinery, and cheap enough to skip the cache.
fn handle_analyze(
    shared: &Arc<Shared>,
    id: u64,
    spec: &FlowSpec,
    accepted_at: Instant,
) -> Response {
    let region = match spec.region.build() {
        Ok(region) => region,
        Err(e) => {
            return Response::Error {
                id,
                message: format!("region spec error: {e}"),
            }
        }
    };
    let modules: Result<Vec<_>, _> = spec.modules.iter().map(resolve_module).collect();
    let modules = match modules {
        Ok(modules) => modules,
        Err(e) => {
            return Response::Error {
                id,
                message: e.to_string(),
            }
        }
    };
    let started = Instant::now();
    let analysis = rrf_analyze::analyze(&region, &modules);
    {
        let mut stats = shared.stats.lock();
        stats.analyze_requests += 1;
        // `max(1)` keeps the counter observable even when one run is
        // faster than the clock's granularity.
        stats.analyze_us_total += (started.elapsed().as_micros() as u64).max(1);
    }
    {
        let mut detail = shared.detail.lock();
        for d in &analysis.diagnostics {
            detail.record_diagnostic_code(d.code.as_str());
        }
    }
    Response::Analysis {
        id,
        proven_infeasible: analysis.proven_infeasible,
        shapes_total: analysis.shapes_total as u64,
        shapes_prunable: analysis.shapes_prunable as u64,
        diagnostics: analysis.diagnostics,
        elapsed_ms: accepted_at.elapsed().as_millis() as u64,
    }
}

/// Phase timing of one `place` request. Laps are measured between
/// consecutive `lap` calls; `finish` appends an `other` phase holding the
/// untimed remainder, so the reported phases tile the end-to-end total
/// *exactly* — the trace's `solve.*` wall records and the `stats_detail`
/// phase sums agree with the `solve` total to the microsecond by
/// construction.
struct PhaseClock {
    accepted_at: Instant,
    mark: Instant,
    phases: Vec<(&'static str, u64)>,
}

impl PhaseClock {
    fn start(accepted_at: Instant) -> PhaseClock {
        let now = Instant::now();
        PhaseClock {
            accepted_at,
            mark: now,
            phases: vec![(
                "solve.queue_wait",
                now.duration_since(accepted_at).as_micros() as u64,
            )],
        }
    }

    fn lap(&mut self, name: &'static str) {
        let now = Instant::now();
        self.phases
            .push((name, now.duration_since(self.mark).as_micros() as u64));
        self.mark = now;
    }

    fn finish(mut self) -> (Vec<(&'static str, u64)>, u64) {
        // Each lap truncates down, so the spent sum never exceeds the
        // elapsed total; `other` absorbs the difference.
        let total = self.accepted_at.elapsed().as_micros() as u64;
        let spent: u64 = self.phases.iter().map(|(_, us)| us).sum();
        self.phases
            .push(("solve.other", total.saturating_sub(spent)));
        let total = self.phases.iter().map(|(_, us)| us).sum();
        (self.phases, total)
    }
}

/// The snake_case rung name, as carried by the trace's `solve.result`
/// point (matches [`PlaceMethod`]'s wire encoding).
fn method_name(method: PlaceMethod) -> &'static str {
    match method {
        PlaceMethod::Optimal => "optimal",
        PlaceMethod::CpIncumbent => "cp_incumbent",
        PlaceMethod::Lns => "lns",
        PlaceMethod::BottomLeft => "bottom_left",
        PlaceMethod::Infeasible => "infeasible",
    }
}

/// Close out one `place` request's observability: emit the request's
/// `solve` span (its `solve.*` phase spans tiling the total) into the
/// trace stream, and fold the same microsecond values into the
/// `stats_detail` collector — one measurement, two destinations.
fn finish_place_trace(shared: &Shared, id: u64, clock: PhaseClock, method: &'static str) {
    let (phases, total) = clock.finish();
    if shared.tracer.enabled() {
        let root = rrf_trace::tspan!(shared.tracer, "solve", "req" => id);
        for &(name, us) in &phases {
            shared.tracer.span(name, &[]).close_with_us(us);
        }
        rrf_trace::tpoint!(shared.tracer, "solve.result",
            "req" => id,
            "method" => method);
        root.close_with_us(total);
    }
    let mut detail = shared.detail.lock();
    for &(name, us) in &phases {
        detail.record_phase(name, us);
    }
    detail.record_total(total);
}

/// The one cache write-back. Every solved `place` — feasible or
/// infeasible — funnels through here: insert the entry (with the budget
/// that produced it, for the degraded-upgrade rule), then release any
/// coalesced joiners with a clone of the same entry. Keeping this a
/// single site is what guarantees the cache and the joiners can never
/// see different answers for one solve.
fn finish_solve(
    shared: &Shared,
    key: String,
    flight: Option<FlightGuard<'_>>,
    method: PlaceMethod,
    report: &FlowReport,
    solve_budget: Duration,
) {
    let entry = CacheEntry {
        method,
        report: report.clone(),
        budget: solve_budget,
    };
    shared.cache.insert(key, entry.clone());
    if let Some(flight) = flight {
        flight.publish(entry);
    }
}

/// The degradation ladder (see the crate docs): optimal CP within the
/// deadline → LNS over a greedy seed → raw greedy — always returning a
/// verified floorplan when one exists.
fn handle_place(
    shared: &Arc<Shared>,
    id: u64,
    spec: &FlowSpec,
    deadline_ms: Option<u64>,
    accepted_at: Instant,
) -> Response {
    shared.stats.lock().place_requests += 1;
    let mut clock = PhaseClock::start(accepted_at);
    let deadline = accepted_at
        + Duration::from_millis(deadline_ms.unwrap_or(shared.config.default_deadline_ms));
    let (canonical, map) = canonicalize(spec);
    let key = cache_key(&canonical);
    let remaining = deadline.saturating_duration_since(Instant::now());

    // Cached results are only reused when they cannot be beaten by this
    // request's budget: proven outcomes always, degraded/unproven ones
    // only for requests at least as deadline-starved as the one that
    // produced them (see [`CacheEntry::servable_within`]). Anything else
    // is recomputed with the bigger budget and the entry overwritten.
    let mut bypassed_degraded = false;
    match shared.cache.probe(&key, remaining) {
        Probe::Served(entry) => {
            clock.lap("solve.cache_probe");
            shared.stats.lock().cache_hits += 1;
            finish_place_trace(shared, id, clock, "cache_hit");
            return Response::Placed {
                id,
                method: entry.method,
                cache_hit: true,
                report: remap_report(&entry.report, &map),
                elapsed_ms: accepted_at.elapsed().as_millis() as u64,
            };
        }
        Probe::Degraded => bypassed_degraded = true,
        Probe::Miss => {}
    }
    clock.lap("solve.cache_probe");
    {
        let mut stats = shared.stats.lock();
        stats.cache_misses += 1;
        if bypassed_degraded {
            stats.cache_bypass_degraded += 1;
        }
    }

    // Single-flight: the first miss on a key leads (and must publish —
    // the guard's Drop wakes joiners with `None` on any early return or
    // panic below); a concurrent miss with no more budget joins and gets
    // the leader's answer without touching the solver; a roomier miss
    // solves solo, upgrading the entry as it always did.
    let mut flight: Option<FlightGuard> = None;
    if shared.config.coalesce {
        match shared.singleflight.begin(&key, remaining) {
            Role::Leader(guard) => flight = Some(guard),
            Role::Joiner(rx) => {
                let wait = deadline.saturating_duration_since(Instant::now()) + COALESCE_SLACK;
                let outcome = rx.recv_timeout(wait);
                clock.lap("solve.coalesce_wait");
                match outcome {
                    Ok(Some(entry)) => {
                        // Not marked `cache_hit`: this answer comes from
                        // a live solve, not a prior result — the M
                        // coalesced responses are byte-identical up to
                        // `elapsed_ms`.
                        finish_place_trace(shared, id, clock, "coalesced");
                        return Response::Placed {
                            id,
                            method: entry.method,
                            cache_hit: false,
                            report: remap_report(&entry.report, &map),
                            elapsed_ms: accepted_at.elapsed().as_millis() as u64,
                        };
                    }
                    // The leader failed (spec error, verify violation,
                    // panic): fall through and solve for ourselves, solo
                    // — re-coalescing a deterministic failure would loop.
                    Ok(None) => {}
                    Err(_) => {
                        // Waited past our own deadline plus slack: shed.
                        // Retry-safe — nothing was executed on our
                        // behalf — so the client retry loop treats it
                        // like any other `overloaded`.
                        shared.singleflight.record_timeout();
                        let retry = {
                            let detail = shared.detail.lock();
                            retry_after_ms(
                                detail.solve_p50_us(),
                                shared.config.queue_depth,
                                shared.config.workers,
                            )
                        };
                        finish_place_trace(shared, id, clock, "coalesce_timeout");
                        return Response::Overloaded {
                            id,
                            message: "coalesced solve outlived this request's deadline".into(),
                            retry_after_ms: retry,
                        };
                    }
                }
            }
            Role::Solo => {}
        }
    }

    let region = match canonical.region.build() {
        Ok(region) => region,
        Err(e) => {
            return Response::Error {
                id,
                message: format!("region spec error: {e}"),
            }
        }
    };
    let modules: Result<Vec<_>, _> = canonical.modules.iter().map(resolve_module).collect();
    let modules = match modules {
        Ok(modules) => modules,
        Err(e) => {
            return Response::Error {
                id,
                message: e.to_string(),
            }
        }
    };
    // Preflight: the analyzer's error-only subset. A request it rejects
    // is *proven* unplaceable — fail fast before registering with the
    // watchdog or spending any of the deadline on search. (Runs after
    // the cache check, so repeated feasible requests never pay for it.)
    let preflight_started = Instant::now();
    let rejection = rrf_analyze::preflight(&region, &modules);
    {
        let mut stats = shared.stats.lock();
        stats.analyze_us_total += (preflight_started.elapsed().as_micros() as u64).max(1);
    }
    clock.lap("solve.preflight");
    if let Some(diagnostic) = rejection {
        shared.stats.lock().preflight_rejects += 1;
        shared
            .detail
            .lock()
            .record_diagnostic_code(diagnostic.code.as_str());
        finish_place_trace(shared, id, clock, "preflight_reject");
        return Response::Error {
            id,
            message: format!("preflight: proven infeasible: {diagnostic}"),
        };
    }

    let problem = PlacementProblem::new(region, modules);

    let stop = Arc::new(AtomicBool::new(false));
    shared.watchdog.register(deadline, Arc::clone(&stop));
    let solve_started = Instant::now();
    // The budget that produced the result is cached alongside it, so a
    // later, roomier request knows to recompute rather than trust a
    // deadline-degraded answer.
    let solve_budget = deadline.saturating_duration_since(solve_started);

    // Rung 1: the CP placer — unless the budget is already tight, or the
    // circuit breaker is open because CP has recently blown deadlines
    // (then requests route straight to the greedy/LNS ladder below).
    let mut picked: Option<(Floorplan, PlaceMethod, bool, SolveStats)> = None;
    let mut proven_infeasible = false;
    let budget_tight = solve_budget < TIGHT_BUDGET;
    let cp_admitted = !budget_tight && shared.breaker.lock().admit_cp(Instant::now());
    if cp_admitted {
        let mut config = canonical.placer.to_config_with_stop(Arc::clone(&stop));
        config.tracer = shared.tracer.clone();
        config.time_limit = Some(match config.time_limit {
            Some(limit) => limit.min(solve_budget),
            None => solve_budget,
        });
        let allotted = config.time_limit.unwrap_or(solve_budget);
        let cp_started = Instant::now();
        let outcome = cp::place(&problem, &config);
        let cp_elapsed = cp_started.elapsed();
        clock.lap("solve.cp");
        // Breaker bookkeeping: the attempt "blew its deadline" if it
        // neither proved a result nor finished with budget to spare.
        let blew_deadline = !outcome.proven && cp_elapsed >= allotted.mul_f64(0.9);
        shared
            .breaker
            .lock()
            .record_cp(blew_deadline, Instant::now());
        if outcome.stats.shapes_pruned > 0 {
            shared.stats.lock().shapes_pruned += outcome.stats.shapes_pruned as u64;
        }
        if let Some(plan) = outcome.plan {
            let method = if outcome.proven {
                PlaceMethod::Optimal
            } else {
                PlaceMethod::CpIncumbent
            };
            picked = Some((plan, method, outcome.proven, outcome.stats));
        } else {
            proven_infeasible = outcome.proven;
        }
    } else if budget_tight {
        shared.detail.lock().record_cp_skipped();
    }

    // Rungs 2 and 3: greedy seed, LNS-polished if time remains.
    if picked.is_none() && !proven_infeasible {
        if let Some(seed) = baseline::bottom_left(&problem) {
            let rest = deadline.saturating_duration_since(Instant::now());
            if rest >= LNS_WORTHWHILE {
                let improved = lns_improve_traced(
                    &problem,
                    seed,
                    &LnsConfig {
                        time_limit: rest,
                        ..LnsConfig::default()
                    },
                    Some(Arc::clone(&stop)),
                    &shared.tracer,
                );
                clock.lap("solve.lns");
                picked = Some((
                    improved.plan,
                    PlaceMethod::Lns,
                    false,
                    SolveStats::default(),
                ));
            } else {
                clock.lap("solve.bottom_left");
                picked = Some((seed, PlaceMethod::BottomLeft, false, SolveStats::default()));
            }
        }
    }

    let solve_elapsed = solve_started.elapsed();
    let solve_ms = solve_elapsed.as_millis() as u64;
    shared.stats.lock().record_solve_ms(solve_ms);
    shared
        .detail
        .lock()
        .record_solve_us((solve_elapsed.as_micros() as u64).max(1));

    let Some((plan, method, proven, mut solve_stats)) = picked else {
        shared.stats.lock().infeasible += 1;
        let report = FlowReport {
            feasible: false,
            proven: proven_infeasible,
            extent: None,
            placements: vec![],
            metrics: None,
            stats: SolveStats::default(),
            floorplan: None,
        };
        finish_solve(
            shared,
            key,
            flight,
            PlaceMethod::Infeasible,
            &report,
            solve_budget,
        );
        shared.detail.lock().record_method(PlaceMethod::Infeasible);
        finish_place_trace(shared, id, clock, "infeasible");
        return Response::Placed {
            id,
            method: PlaceMethod::Infeasible,
            cache_hit: false,
            report,
            elapsed_ms: accepted_at.elapsed().as_millis() as u64,
        };
    };

    // The contract: every returned floorplan is independently verified.
    let violations = verify::verify(&problem.region, &problem.modules, &plan);
    clock.lap("solve.verify");
    if !violations.is_empty() {
        return Response::Error {
            id,
            message: format!("placer produced {} constraint violations", violations.len()),
        };
    }

    solve_stats.duration = solve_started.elapsed();
    let placements = plan
        .placements
        .iter()
        .map(|p| PlacedModuleReport {
            name: problem.modules[p.module].name.clone(),
            shape: p.shape,
            x: p.x,
            y: p.y,
        })
        .collect();
    let extent = plan.x_extent(&problem.modules, problem.region.bounds().x) as i64;
    let report = FlowReport {
        feasible: true,
        proven,
        extent: Some(extent),
        placements,
        metrics: Some(metrics(&problem.region, &problem.modules, &plan)),
        stats: solve_stats,
        floorplan: Some(plan),
    };

    {
        let mut stats = shared.stats.lock();
        match method {
            PlaceMethod::Optimal => stats.placed_optimal += 1,
            PlaceMethod::CpIncumbent => stats.placed_cp_incumbent += 1,
            PlaceMethod::Lns => stats.placed_lns += 1,
            PlaceMethod::BottomLeft => stats.placed_bottom_left += 1,
            PlaceMethod::Infeasible => unreachable!("picked implies a floorplan"),
        }
    }
    finish_solve(shared, key, flight, method, &report, solve_budget);
    shared.detail.lock().record_method(method);
    finish_place_trace(shared, id, clock, method_name(method));
    Response::Placed {
        id,
        method,
        cache_hit: false,
        report: remap_report(&report, &map),
        elapsed_ms: accepted_at.elapsed().as_millis() as u64,
    }
}
