//! The daemon: TCP listener, bounded queue, worker pool, deadline
//! watchdog, and the request handlers.
//!
//! Threading model: one reader thread per connection parses NDJSON lines
//! and submits each request to a bounded MPMC queue (`try_send`, so a
//! full queue turns into an immediate backpressure error instead of an
//! unbounded backlog), then waits for that request's response and writes
//! it back — connections are served in order, parallelism comes from
//! serving many connections over `workers` pool threads. A watchdog
//! thread turns wall-clock deadlines into solver stop-flag trips, so an
//! in-flight search aborts mid-branch instead of overshooting; shutdown
//! trips every registered flag the same way.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use rrf_core::{
    baseline, cp, lns_improve_with_stop, metrics, verify, Floorplan, LnsConfig, OnlinePlacer,
    PlacementProblem, SolveStats,
};
use rrf_flow::{resolve_module, FlowReport, FlowSpec, ModuleEntry, PlacedModuleReport, RegionSpec};

use crate::cache::{cache_key, canonicalize, remap_report, CacheEntry, PlacementCache};
use crate::protocol::{PlaceMethod, Request, Response};
use crate::stats::ServerStats;

/// Below this remaining budget the CP attempt is skipped entirely and the
/// ladder starts at the greedy seed.
const TIGHT_BUDGET: Duration = Duration::from_millis(200);
/// Minimum remaining budget worth spending on LNS over the greedy seed.
const LNS_WORTHWHILE: Duration = Duration::from_millis(20);
/// Poll interval of the connection reader loops and the watchdog.
const POLL: Duration = Duration::from_millis(20);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker pool size.
    pub workers: usize,
    /// Bounded request-queue depth; a full queue rejects with an error.
    pub queue_depth: usize,
    /// Deadline applied to `place` requests that do not carry their own.
    pub default_deadline_ms: u64,
    /// Placement-cache capacity (entries).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            default_deadline_ms: 10_000,
            cache_capacity: 256,
        }
    }
}

/// A deadline paired with the stop flag to trip when it passes.
type DeadlineEntry = (Instant, Arc<AtomicBool>);

/// Deadline → stop-flag bridge shared by workers and the watchdog thread.
#[derive(Clone, Default)]
struct Watchdog {
    entries: Arc<Mutex<Vec<DeadlineEntry>>>,
}

impl Watchdog {
    fn register(&self, deadline: Instant, flag: Arc<AtomicBool>) {
        self.entries.lock().push((deadline, flag));
    }

    /// Trip expired flags, drop finished entries (their solve released the
    /// only other handle).
    fn tick(&self) {
        let now = Instant::now();
        self.entries.lock().retain(|(deadline, flag)| {
            if now >= *deadline {
                flag.store(true, Ordering::Relaxed);
                return false;
            }
            Arc::strong_count(flag) > 1
        });
    }

    /// Trip everything (shutdown): in-flight solves abort promptly.
    fn fire_all(&self) {
        for (_, flag) in self.entries.lock().drain(..) {
            flag.store(true, Ordering::Relaxed);
        }
    }
}

/// One stateful online session.
struct Session {
    placer: OnlinePlacer,
    /// Resolved module per live slot, for reporting names.
    names: HashMap<u64, String>,
}

/// State shared by every worker and connection thread.
///
/// Sessions are individually locked (`Arc<Mutex<Session>>` behind the
/// map): a long-running defrag in one session must not block inserts,
/// removes, or opens in any other — the map lock is only held long enough
/// to clone the session's `Arc` out.
struct Shared {
    config: ServerConfig,
    stats: Mutex<ServerStats>,
    cache: Mutex<PlacementCache>,
    sessions: Mutex<HashMap<u64, Arc<Mutex<Session>>>>,
    next_session: AtomicU64,
    watchdog: Watchdog,
    shutdown: AtomicBool,
}

/// One queued request and the channel its response goes back on.
struct Job {
    request: Request,
    accepted_at: Instant,
    reply: Sender<Response>,
}

/// A running daemon; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the daemon: trip all in-flight stop flags, stop accepting,
    /// join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.watchdog.fire_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind and start the daemon.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let cache_capacity = config.cache_capacity;
    let shared = Arc::new(Shared {
        config,
        stats: Mutex::new(ServerStats::default()),
        cache: Mutex::new(PlacementCache::new(cache_capacity)),
        sessions: Mutex::new(HashMap::new()),
        next_session: AtomicU64::new(1),
        watchdog: Watchdog::default(),
        shutdown: AtomicBool::new(false),
    });

    let (jobs_tx, jobs_rx) = channel::bounded::<Job>(shared.config.queue_depth.max(1));
    let mut threads = Vec::new();

    for _ in 0..shared.config.workers.max(1) {
        let shared = Arc::clone(&shared);
        let rx = jobs_rx.clone();
        threads.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
    }
    drop(jobs_rx);

    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                shared.watchdog.tick();
                std::thread::sleep(POLL);
            }
            shared.watchdog.fire_all();
        }));
    }

    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            accept_loop(&listener, &shared, &jobs_tx)
        }));
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, jobs_tx: &Sender<Job>) {
    // Connection threads are detached: they exit on client disconnect or
    // on the shutdown flag (their reads time out every POLL interval).
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let jobs_tx = jobs_tx.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &shared, &jobs_tx);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => break,
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    shared: &Arc<Shared>,
    jobs_tx: &Sender<Job>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {
                let response = dispatch(line.trim(), shared, jobs_tx);
                line.clear();
                if let Some(response) = response {
                    let mut out = serde_json::to_string(&response)
                        .expect("protocol types serialize infallibly");
                    out.push('\n');
                    writer.write_all(out.as_bytes())?;
                }
            }
            // Timeout mid-wait: partial bytes (if any) stay in `line`
            // (read_line appends what it read before the error).
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Parse one request line, run it through the queue, return its response
/// (`None` for blank lines).
fn dispatch(line: &str, shared: &Arc<Shared>, jobs_tx: &Sender<Job>) -> Option<Response> {
    if line.is_empty() {
        return None;
    }
    shared.stats.lock().requests += 1;
    let request = match serde_json::from_str::<Request>(line) {
        Ok(request) => request,
        Err(e) => {
            shared.stats.lock().protocol_errors += 1;
            // Best effort: a line that is valid JSON but not a valid
            // request (wrong shape, unknown type) still gets its own
            // correlation id echoed back, so pipelining clients can tell
            // which request failed. Only when the id itself is
            // unrecoverable does the reserved sentinel 0 appear — see the
            // protocol docs; clients must use ids >= 1.
            let id = serde_json::from_str::<serde_json::Value>(line)
                .ok()
                .and_then(|v| v.get("id")?.as_u64())
                .unwrap_or(0);
            return Some(Response::Error {
                id,
                message: format!("unparseable request: {e}"),
            });
        }
    };
    let id = request.id();
    let (reply_tx, reply_rx) = channel::bounded::<Response>(1);
    let job = Job {
        request,
        accepted_at: Instant::now(),
        reply: reply_tx,
    };
    match jobs_tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            shared.stats.lock().rejected_backpressure += 1;
            return Some(Response::Error {
                id,
                message: "server overloaded: request queue full".to_string(),
            });
        }
        Err(TrySendError::Disconnected(_)) => {
            return Some(Response::Error {
                id,
                message: "server shutting down".to_string(),
            });
        }
    }
    match reply_rx.recv() {
        Ok(response) => Some(response),
        Err(_) => Some(Response::Error {
            id,
            message: "server shutting down".to_string(),
        }),
    }
}

fn worker_loop(shared: &Arc<Shared>, jobs: &Receiver<Job>) {
    loop {
        match jobs.recv_timeout(POLL) {
            Ok(job) => {
                let response = handle(shared, &job);
                let _ = job.reply.send(response);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn handle(shared: &Arc<Shared>, job: &Job) -> Response {
    match &job.request {
        Request::Place {
            id,
            spec,
            deadline_ms,
        } => handle_place(shared, *id, spec, *deadline_ms, job.accepted_at),
        Request::OpenSession { id, region } => handle_open_session(shared, *id, region),
        Request::Insert {
            id,
            session,
            module,
        } => handle_insert(shared, *id, *session, module),
        Request::Remove { id, session, slot } => with_session(shared, *id, *session, |s| {
            let removed = s.placer.remove(*slot);
            if removed {
                s.names.remove(slot);
                shared.stats.lock().online_removals += 1;
            }
            Response::Removed {
                id: *id,
                session: *session,
                removed,
                utilization: s.placer.utilization(),
            }
        }),
        Request::Defrag { id, session } => with_session(shared, *id, *session, |s| {
            let moved = s.placer.defrag() as u64;
            shared.stats.lock().online_defrags += 1;
            Response::Defragged {
                id: *id,
                session: *session,
                moved,
                utilization: s.placer.utilization(),
            }
        }),
        Request::CloseSession { id, session } => {
            let closed = shared.sessions.lock().remove(session).is_some();
            if closed {
                shared.stats.lock().sessions_closed += 1;
            }
            Response::SessionClosed {
                id: *id,
                session: *session,
                closed,
            }
        }
        Request::Stats { id } => Response::Stats {
            id: *id,
            stats: shared.stats.lock().clone(),
        },
        Request::Ping { id } => Response::Pong { id: *id },
    }
}

fn with_session(
    shared: &Arc<Shared>,
    id: u64,
    session: u64,
    f: impl FnOnce(&mut Session) -> Response,
) -> Response {
    // Clone the Arc out and release the map lock before the (possibly
    // slow) placer operation, so other sessions stay responsive.
    let entry = shared.sessions.lock().get(&session).cloned();
    match entry {
        Some(s) => f(&mut s.lock()),
        None => Response::Error {
            id,
            message: format!("unknown session {session}"),
        },
    }
}

fn handle_open_session(shared: &Arc<Shared>, id: u64, region: &RegionSpec) -> Response {
    let region = match region.build() {
        Ok(region) => region,
        Err(e) => {
            return Response::Error {
                id,
                message: format!("region spec error: {e}"),
            }
        }
    };
    let session = shared.next_session.fetch_add(1, Ordering::Relaxed);
    shared.sessions.lock().insert(
        session,
        Arc::new(Mutex::new(Session {
            placer: OnlinePlacer::new(region),
            names: HashMap::new(),
        })),
    );
    shared.stats.lock().sessions_opened += 1;
    Response::SessionOpened { id, session }
}

fn handle_insert(shared: &Arc<Shared>, id: u64, session: u64, entry: &ModuleEntry) -> Response {
    let module = match resolve_module(entry) {
        Ok(module) => module,
        Err(e) => {
            return Response::Error {
                id,
                message: e.to_string(),
            }
        }
    };
    with_session(shared, id, session, |s| {
        let slot = s.placer.try_insert(&module);
        {
            let mut stats = shared.stats.lock();
            stats.online_inserts += 1;
            match slot {
                Some(_) => stats.online_accepted += 1,
                None => stats.online_rejected += 1,
            }
        }
        let placement = slot.and_then(|slot| {
            s.names.insert(slot, entry.name.clone());
            s.placer.placement_of(slot).map(|p| PlacedModuleReport {
                name: entry.name.clone(),
                shape: p.shape,
                x: p.x,
                y: p.y,
            })
        });
        Response::Inserted {
            id,
            session,
            slot,
            placement,
            utilization: s.placer.utilization(),
        }
    })
}

/// The degradation ladder (see the crate docs): optimal CP within the
/// deadline → LNS over a greedy seed → raw greedy — always returning a
/// verified floorplan when one exists.
fn handle_place(
    shared: &Arc<Shared>,
    id: u64,
    spec: &FlowSpec,
    deadline_ms: Option<u64>,
    accepted_at: Instant,
) -> Response {
    shared.stats.lock().place_requests += 1;
    let deadline = accepted_at
        + Duration::from_millis(deadline_ms.unwrap_or(shared.config.default_deadline_ms));
    let (canonical, map) = canonicalize(spec);
    let key = cache_key(&canonical);
    let remaining = deadline.saturating_duration_since(Instant::now());

    // Cached results are only reused when they cannot be beaten by this
    // request's budget: proven outcomes always, degraded/unproven ones
    // only for requests at least as deadline-starved as the one that
    // produced them (see [`CacheEntry::servable_within`]). Anything else
    // is recomputed with the bigger budget and the entry overwritten.
    let mut bypassed_degraded = false;
    let served = {
        let cache = shared.cache.lock();
        match cache.get(&key) {
            Some(entry) if entry.servable_within(remaining) => Some(entry.clone()),
            Some(_) => {
                bypassed_degraded = true;
                None
            }
            None => None,
        }
    };
    if let Some(entry) = served {
        shared.stats.lock().cache_hits += 1;
        return Response::Placed {
            id,
            method: entry.method,
            cache_hit: true,
            report: remap_report(&entry.report, &map),
            elapsed_ms: accepted_at.elapsed().as_millis() as u64,
        };
    }
    {
        let mut stats = shared.stats.lock();
        stats.cache_misses += 1;
        if bypassed_degraded {
            stats.cache_bypass_degraded += 1;
        }
    }

    let region = match canonical.region.build() {
        Ok(region) => region,
        Err(e) => {
            return Response::Error {
                id,
                message: format!("region spec error: {e}"),
            }
        }
    };
    let modules: Result<Vec<_>, _> = canonical.modules.iter().map(resolve_module).collect();
    let modules = match modules {
        Ok(modules) => modules,
        Err(e) => {
            return Response::Error {
                id,
                message: e.to_string(),
            }
        }
    };
    let problem = PlacementProblem::new(region, modules);

    let stop = Arc::new(AtomicBool::new(false));
    shared.watchdog.register(deadline, Arc::clone(&stop));
    let solve_started = Instant::now();
    // The budget that produced the result is cached alongside it, so a
    // later, roomier request knows to recompute rather than trust a
    // deadline-degraded answer.
    let solve_budget = deadline.saturating_duration_since(solve_started);

    // Rung 1: the CP placer, unless the budget is already tight.
    let mut picked: Option<(Floorplan, PlaceMethod, bool, SolveStats)> = None;
    let mut proven_infeasible = false;
    if solve_budget >= TIGHT_BUDGET {
        let mut config = canonical.placer.to_config_with_stop(Arc::clone(&stop));
        config.time_limit = Some(match config.time_limit {
            Some(limit) => limit.min(solve_budget),
            None => solve_budget,
        });
        let outcome = cp::place(&problem, &config);
        if let Some(plan) = outcome.plan {
            let method = if outcome.proven {
                PlaceMethod::Optimal
            } else {
                PlaceMethod::CpIncumbent
            };
            picked = Some((plan, method, outcome.proven, outcome.stats));
        } else {
            proven_infeasible = outcome.proven;
        }
    }

    // Rungs 2 and 3: greedy seed, LNS-polished if time remains.
    if picked.is_none() && !proven_infeasible {
        if let Some(seed) = baseline::bottom_left(&problem) {
            let rest = deadline.saturating_duration_since(Instant::now());
            if rest >= LNS_WORTHWHILE {
                let improved = lns_improve_with_stop(
                    &problem,
                    seed,
                    &LnsConfig {
                        time_limit: rest,
                        ..LnsConfig::default()
                    },
                    Some(Arc::clone(&stop)),
                );
                picked = Some((
                    improved.plan,
                    PlaceMethod::Lns,
                    false,
                    SolveStats::default(),
                ));
            } else {
                picked = Some((seed, PlaceMethod::BottomLeft, false, SolveStats::default()));
            }
        }
    }

    let solve_ms = solve_started.elapsed().as_millis() as u64;
    shared.stats.lock().record_solve_ms(solve_ms);

    let Some((plan, method, proven, mut solve_stats)) = picked else {
        shared.stats.lock().infeasible += 1;
        let report = FlowReport {
            feasible: false,
            proven: proven_infeasible,
            extent: None,
            placements: vec![],
            metrics: None,
            stats: SolveStats::default(),
            floorplan: None,
        };
        shared.cache.lock().insert(
            key,
            CacheEntry {
                method: PlaceMethod::Infeasible,
                report: report.clone(),
                budget: solve_budget,
            },
        );
        return Response::Placed {
            id,
            method: PlaceMethod::Infeasible,
            cache_hit: false,
            report,
            elapsed_ms: accepted_at.elapsed().as_millis() as u64,
        };
    };

    // The contract: every returned floorplan is independently verified.
    let violations = verify::verify(&problem.region, &problem.modules, &plan);
    if !violations.is_empty() {
        return Response::Error {
            id,
            message: format!("placer produced {} constraint violations", violations.len()),
        };
    }

    solve_stats.duration = solve_started.elapsed();
    let placements = plan
        .placements
        .iter()
        .map(|p| PlacedModuleReport {
            name: problem.modules[p.module].name.clone(),
            shape: p.shape,
            x: p.x,
            y: p.y,
        })
        .collect();
    let extent = plan.x_extent(&problem.modules, problem.region.bounds().x) as i64;
    let report = FlowReport {
        feasible: true,
        proven,
        extent: Some(extent),
        placements,
        metrics: Some(metrics(&problem.region, &problem.modules, &plan)),
        stats: solve_stats,
        floorplan: Some(plan),
    };

    {
        let mut stats = shared.stats.lock();
        match method {
            PlaceMethod::Optimal => stats.placed_optimal += 1,
            PlaceMethod::CpIncumbent => stats.placed_cp_incumbent += 1,
            PlaceMethod::Lns => stats.placed_lns += 1,
            PlaceMethod::BottomLeft => stats.placed_bottom_left += 1,
            PlaceMethod::Infeasible => unreachable!("picked implies a floorplan"),
        }
    }
    shared.cache.lock().insert(
        key,
        CacheEntry {
            method,
            report: report.clone(),
            budget: solve_budget,
        },
    );
    Response::Placed {
        id,
        method,
        cache_hit: false,
        report: remap_report(&report, &map),
        elapsed_ms: accepted_at.elapsed().as_millis() as u64,
    }
}
