//! Overload-resilience policy: the degraded-mode circuit breaker and the
//! backpressure arithmetic behind `overloaded` rejections.
//!
//! The daemon sheds load *before* spending solver budget on requests that
//! cannot meet their deadlines anyway. Two mechanisms cooperate:
//!
//! * **Admission control** (see `server::dispatch`): a full bounded queue
//!   rejects immediately, and a `place` request whose estimated queue
//!   wait already exceeds its deadline is shed up front. Both rejections
//!   are structured `overloaded` responses carrying a `retry_after_ms`
//!   backpressure hint derived from the observed solve-latency histogram
//!   ([`retry_after_ms`]), so clients back off for roughly as long as the
//!   congestion will actually take to clear.
//! * **The circuit breaker** ([`Breaker`]): when the CP rung has recently
//!   blown its deadline repeatedly, the breaker trips *open* and `place`
//!   requests route straight to the greedy/LNS ladder — predictable
//!   latency instead of budget burned on searches that will be cut off.
//!   After a cooldown the breaker goes *half-open* and lets exactly one
//!   probe request try CP again; a healthy probe closes the breaker, a
//!   blown one re-opens it. State and transition counters are surfaced in
//!   `stats_detail`.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Smallest hint an `overloaded` response will carry, in milliseconds —
/// retrying faster than this is never useful against a congested daemon.
pub const RETRY_AFTER_MIN_MS: u64 = 25;
/// Largest hint — congestion estimates beyond this are noise; clients
/// with their own deadlines should give up rather than wait longer.
pub const RETRY_AFTER_MAX_MS: u64 = 10_000;
/// The solve-latency estimate used before any solve has been observed.
const DEFAULT_SOLVE_US: u64 = 50_000;

/// The backpressure hint for an `overloaded` rejection: roughly how long
/// the current backlog needs to drain, from the observed p50 solve
/// latency (`None` before the first solve), the queue depth at rejection
/// time, and the worker count — clamped to
/// [`RETRY_AFTER_MIN_MS`]..=[`RETRY_AFTER_MAX_MS`].
pub fn retry_after_ms(solve_p50_us: Option<u64>, queue_depth: usize, workers: usize) -> u64 {
    let p50 = solve_p50_us.unwrap_or(DEFAULT_SOLVE_US).max(1);
    let drain_us =
        (queue_depth as u64).saturating_add(1).saturating_mul(p50) / workers.max(1) as u64;
    (drain_us / 1000).clamp(RETRY_AFTER_MIN_MS, RETRY_AFTER_MAX_MS)
}

/// Estimated queue wait for a newly admitted request, in milliseconds:
/// everything already queued must be solved first, spread over the
/// worker pool. `None` until a solve latency has been observed — no
/// estimate, no shedding.
pub fn estimated_wait_ms(
    solve_p50_us: Option<u64>,
    queue_depth: usize,
    workers: usize,
) -> Option<u64> {
    let p50 = solve_p50_us?;
    Some((queue_depth as u64).saturating_mul(p50) / workers.max(1) as u64 / 1000)
}

/// The breaker's position. Serialized lowercase into `stats_detail`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum BreakerState {
    /// Healthy: every `place` request may try the CP rung.
    Closed,
    /// Tripped: CP is skipped outright until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request may try CP; its
    /// outcome decides between `Closed` and another `Open` round.
    HalfOpen,
}

impl BreakerState {
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Circuit breaker over the CP rung of the degradation ladder.
///
/// A *failure* is a CP attempt that blew its deadline: it neither proved
/// a result nor finished early — the stop flag (or time limit) cut it
/// off. `threshold` consecutive failures trip the breaker open for
/// `cooldown`; then one half-open probe decides whether CP has recovered.
#[derive(Debug)]
pub struct Breaker {
    state: BreakerState,
    threshold: u32,
    cooldown: Duration,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// Transition counters surfaced in `stats_detail`.
    opens: u64,
    closes: u64,
    half_open_probes: u64,
    skipped_open: u64,
}

impl Breaker {
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            opened_at: None,
            opens: 0,
            closes: 0,
            half_open_probes: 0,
            skipped_open: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May this request try the CP rung? `Closed` always admits; `Open`
    /// admits nothing until the cooldown elapses, at which point the
    /// breaker moves to `HalfOpen` and admits exactly one probe;
    /// `HalfOpen` admits nothing while that probe is outstanding.
    pub fn admit_cp(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                self.skipped_open += 1;
                false
            }
            BreakerState::Open => {
                let elapsed = self
                    .opened_at
                    .map(|at| now.duration_since(at))
                    .unwrap_or(Duration::ZERO);
                if elapsed >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.half_open_probes += 1;
                    true
                } else {
                    self.skipped_open += 1;
                    false
                }
            }
        }
    }

    /// Record the outcome of a CP attempt that [`admit_cp`] admitted.
    /// `blew_deadline` means the attempt was cut off by its budget
    /// without proving anything.
    pub fn record_cp(&mut self, blew_deadline: bool, now: Instant) {
        if blew_deadline {
            self.consecutive_failures += 1;
            let trip = match self.state {
                // A failed half-open probe re-opens immediately.
                BreakerState::HalfOpen => true,
                BreakerState::Closed => self.consecutive_failures >= self.threshold,
                BreakerState::Open => false,
            };
            if trip {
                self.state = BreakerState::Open;
                self.opened_at = Some(now);
                self.opens += 1;
            }
        } else {
            self.consecutive_failures = 0;
            if self.state != BreakerState::Closed {
                self.closes += 1;
            }
            self.state = BreakerState::Closed;
            self.opened_at = None;
        }
    }

    pub fn stats(&self) -> BreakerStats {
        BreakerStats {
            state: self.state.as_str().to_string(),
            opens: self.opens,
            closes: self.closes,
            half_open_probes: self.half_open_probes,
            cp_skipped_open: self.skipped_open,
        }
    }
}

/// Breaker state and transition counters, as carried by `stats_detail`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakerStats {
    /// `closed`, `open`, or `half_open`.
    pub state: String,
    /// Times the breaker tripped open.
    pub opens: u64,
    /// Times a probe (or a healthy closed-state success) closed it again.
    pub closes: u64,
    /// Half-open probes admitted to the CP rung.
    pub half_open_probes: u64,
    /// `place` requests that skipped CP because the breaker was open.
    pub cp_skipped_open: u64,
}

impl Default for BreakerStats {
    fn default() -> BreakerStats {
        Breaker::new(1, Duration::ZERO).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_is_clamped_and_scales_with_depth() {
        // No history: the default estimate applies.
        let idle = retry_after_ms(None, 0, 4);
        assert!((RETRY_AFTER_MIN_MS..=RETRY_AFTER_MAX_MS).contains(&idle));
        // Deeper queues never shrink the hint (monotone in depth).
        let mut last = 0;
        for depth in [0, 1, 4, 16, 64, 256] {
            let hint = retry_after_ms(Some(200_000), depth, 2);
            assert!(hint >= last, "hint must be monotone in queue depth");
            assert!((RETRY_AFTER_MIN_MS..=RETRY_AFTER_MAX_MS).contains(&hint));
            last = hint;
        }
        // Huge backlogs clamp at the cap rather than overflowing.
        assert_eq!(
            retry_after_ms(Some(u64::MAX), usize::MAX, 1),
            RETRY_AFTER_MAX_MS
        );
    }

    #[test]
    fn wait_estimate_needs_history() {
        assert_eq!(estimated_wait_ms(None, 100, 2), None);
        assert_eq!(estimated_wait_ms(Some(100_000), 4, 2), Some(200));
        assert_eq!(estimated_wait_ms(Some(100_000), 0, 2), Some(0));
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_half_open() {
        let t0 = Instant::now();
        let mut b = Breaker::new(3, Duration::from_millis(100));
        assert_eq!(b.state(), BreakerState::Closed);

        // Two failures stay closed; the third trips.
        for _ in 0..2 {
            assert!(b.admit_cp(t0));
            b.record_cp(true, t0);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.admit_cp(t0));
        b.record_cp(true, t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().opens, 1);

        // Open: everything is skipped until the cooldown elapses.
        assert!(!b.admit_cp(t0 + Duration::from_millis(50)));
        assert!(b.stats().cp_skipped_open >= 1);

        // Cooldown over: exactly one probe gets through.
        let later = t0 + Duration::from_millis(150);
        assert!(b.admit_cp(later));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit_cp(later), "only one probe while half-open");

        // A failed probe re-opens (below threshold — one strike is
        // enough while probing) ...
        b.record_cp(true, later);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().opens, 2);

        // ... and a successful probe after another cooldown closes.
        let done = later + Duration::from_millis(150);
        assert!(b.admit_cp(done));
        b.record_cp(false, done);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().closes, 1);
        // Closed again: normal admission resumes.
        assert!(b.admit_cp(done));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let t0 = Instant::now();
        let mut b = Breaker::new(2, Duration::from_millis(10));
        b.record_cp(true, t0);
        b.record_cp(false, t0);
        b.record_cp(true, t0);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "non-consecutive failures must not trip"
        );
        b.record_cp(true, t0);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn breaker_stats_roundtrip() {
        let stats = BreakerStats::default();
        assert_eq!(stats.state, "closed");
        let json = serde_json::to_string(&stats).unwrap();
        let back: BreakerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
