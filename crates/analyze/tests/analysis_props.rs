//! Property tests pinning the analyzer to independent oracles:
//!
//! * a *proven infeasible* verdict is checked against an exhaustive
//!   brute-force placement search — the proof must never be wrong;
//! * a *dead alternative* finding is checked against a naive full anchor
//!   scan written without the geost kernel;
//! * the solver's `analyze_prune` must never change the proven-optimal
//!   extent or the resulting utilization (on equal-area alternatives,
//!   the generated-workload norm).

use proptest::prelude::*;
use rrf_analyze::{analyze, Code};
use rrf_core::{cp, metrics, Module, PlacementProblem, PlacerConfig};
use rrf_fabric::{Fabric, Region, ResourceKind};
use rrf_geost::{ShapeDef, ShiftedBox};
use std::collections::BTreeSet;

fn region(w: i32, h: i32) -> Region {
    Region::whole(Fabric::homogeneous(w, h).unwrap())
}

fn clb_bar(w: i32, h: i32) -> ShapeDef {
    ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
}

/// Every anchor of `shape` in `region`, by scanning the full bounds and
/// checking each tile directly — no geost involved.
fn anchors_naive(region: &Region, shape: &ShapeDef) -> Vec<(i32, i32)> {
    let b = region.bounds();
    let mut out = Vec::new();
    for y in b.y..b.y + b.h {
        for x in b.x..b.x + b.w {
            if shape
                .tiles_at(x, y)
                .all(|(p, k)| region.accepts(p.x, p.y, k))
            {
                out.push((x, y));
            }
        }
    }
    out
}

/// Exhaustive search: does ANY complete non-overlapping placement exist?
fn brute_force(
    region: &Region,
    modules: &[Module],
    idx: usize,
    occupied: &mut BTreeSet<(i32, i32)>,
) -> bool {
    if idx == modules.len() {
        return true;
    }
    for shape in modules[idx].shapes() {
        for (x, y) in anchors_naive(region, shape) {
            let tiles: Vec<(i32, i32)> = shape.tiles_at(x, y).map(|(p, _)| (p.x, p.y)).collect();
            if tiles.iter().any(|t| occupied.contains(t)) {
                continue;
            }
            occupied.extend(tiles.iter().copied());
            if brute_force(region, modules, idx + 1, occupied) {
                return true;
            }
            for t in &tiles {
                occupied.remove(t);
            }
        }
    }
    false
}

/// 1–3 modules of 1–2 rectangular CLB alternatives each, sized so that
/// on a 5x3 region a healthy share of instances is infeasible.
fn modules_strategy() -> impl Strategy<Value = Vec<Module>> {
    proptest::collection::vec(
        proptest::collection::vec((1i32..=4, 1i32..=4), 1..=2),
        1..=3,
    )
    .prop_map(|mods| {
        mods.into_iter()
            .enumerate()
            .map(|(i, rects)| {
                let shapes = rects.into_iter().map(|(w, h)| clb_bar(w, h)).collect();
                Module::new(format!("m{i}"), shapes)
            })
            .collect()
    })
}

/// 1–2 modules whose alternatives all cover the same area (a rectangle,
/// its transpose, and a duplicate), so any two optimal-extent plans have
/// identical utilization.
fn equal_area_modules_strategy() -> impl Strategy<Value = Vec<Module>> {
    proptest::collection::vec((1i32..=3, 1i32..=2), 1..=2).prop_map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(i, (w, h))| {
                Module::new(
                    format!("m{i}"),
                    vec![clb_bar(w, h), clb_bar(h, w), clb_bar(w, h)],
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RRF004/RRF005 are *proofs*: whenever the analyzer claims proven
    /// infeasibility, exhaustive search must agree that no placement
    /// exists.
    #[test]
    fn proven_infeasible_means_brute_force_finds_nothing(
        modules in modules_strategy()
    ) {
        let r = region(5, 3);
        let analysis = analyze(&r, &modules);
        if analysis.proven_infeasible {
            let mut occupied = BTreeSet::new();
            prop_assert!(
                !brute_force(&r, &modules, 0, &mut occupied),
                "analyzer proved infeasible but a placement exists: {:?}",
                analysis.diagnostics
            );
        }
    }

    /// RRF003 means the eq. 2-3 anchor set is empty — confirmed by an
    /// independent full scan; and every unflagged alternative has at
    /// least one anchor.
    #[test]
    fn dead_alternative_means_no_anchor_anywhere(
        modules in modules_strategy()
    ) {
        let r = region(5, 3);
        let analysis = analyze(&r, &modules);
        let dead: BTreeSet<(usize, usize)> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::DeadAlternative)
            .map(|d| (d.module.unwrap(), d.shape.unwrap()))
            .collect();
        for (mi, module) in modules.iter().enumerate() {
            for (si, shape) in module.shapes().iter().enumerate() {
                let anchors = anchors_naive(&r, shape);
                if dead.contains(&(mi, si)) {
                    prop_assert!(
                        anchors.is_empty(),
                        "m{mi}[{si}] flagged dead but anchors at {anchors:?}"
                    );
                } else {
                    prop_assert!(
                        !anchors.is_empty(),
                        "m{mi}[{si}] not flagged dead yet has no anchor"
                    );
                }
            }
        }
    }

    /// The static prune never changes the proven-optimal extent, and on
    /// equal-area alternatives it never changes utilization either.
    #[test]
    fn prune_preserves_optimum_and_utilization(
        modules in equal_area_modules_strategy()
    ) {
        let r = region(8, 4);
        let problem = PlacementProblem::new(r, modules);
        let run = |analyze_prune: bool| {
            let config = PlacerConfig {
                analyze_prune,
                ..PlacerConfig::exact()
            };
            cp::place(&problem, &config)
        };
        let pruned = run(true);
        let full = run(false);
        prop_assert!(pruned.proven && full.proven);
        prop_assert_eq!(pruned.extent, full.extent);
        // Every generated module has a duplicate alternative, so the
        // prune must actually have fired.
        prop_assert!(pruned.stats.shapes_pruned >= problem.modules.len());
        prop_assert_eq!(full.stats.shapes_pruned, 0);
        match (&pruned.plan, &full.plan) {
            (Some(a), Some(b)) => {
                let ma = metrics(&problem.region, &problem.modules, a);
                let mb = metrics(&problem.region, &problem.modules, b);
                prop_assert_eq!(ma.utilization, mb.utilization);
                prop_assert_eq!(ma.occupied_tiles, mb.occupied_tiles);
                prop_assert_eq!(ma.extent_cols, mb.extent_cols);
            }
            (None, None) => {}
            other => prop_assert!(false, "prune changed feasibility: {other:?}"),
        }
    }
}
