//! # rrf-analyze — static model analysis
//!
//! Inspects a placement instance — the problem spec plus the materialized
//! [`rrf_fabric::Region`] (optionally with injected faults) — **without
//! solving anything**, and emits stable machine-readable diagnostics:
//!
//! | code   | severity | finding |
//! |--------|----------|---------|
//! | RRF001 | error    | malformed shape (no/degenerate/overlapping tilesets) |
//! | RRF002 | error    | tileset requests an unplaceable resource kind |
//! | RRF003 | warn     | dead alternative: empty eq. 2–3 anchor set |
//! | RRF004 | error    | dead module: every alternative dead or malformed |
//! | RRF005 | error    | counting bound proves the workload cannot fit |
//! | RRF006 | warn     | duplicate alternative (identical tile cover) |
//! | RRF007 | info     | dominated alternative (strict superset, no reach) |
//!
//! RRF004 and RRF005 are *proofs* of infeasibility: the placement server's
//! preflight rejects such requests before spending any solver budget, and
//! `rrf_core::place` strips RRF003/RRF006/RRF007 shapes from the model
//! when `PlacerConfig::analyze_prune` is set (never changing the optimal
//! extent — see `rrf_geost::classify_shapes` for the soundness argument).
//!
//! Output is deterministic: the same instance produces byte-identical
//! NDJSON, which `ci.sh` exploits as a regression gate over the bench
//! workloads. The `rrf-analyze` CLI exposes everything with exit codes
//! (0 clean/info, 1 warnings, 2 errors, 3 usage).

#![forbid(unsafe_code)]

pub mod diagnostic;
pub mod passes;

pub use diagnostic::{Code, Diagnostic, Severity};
pub use passes::{analyze, preflight, Analysis};
