//! Exit-code CLI over the static analyzer.
//!
//! ```text
//! rrf-analyze --spec job.json
//! rrf-analyze --workload paper:42 --fault column:17 --format ndjson
//! ```
//!
//! Exit codes: 0 = clean or info-only findings, 1 = warnings,
//! 2 = errors (including proven infeasibility), 3 = usage or I/O error.
//! NDJSON goes to stdout (byte-deterministic for a given input); the
//! human summary goes to stderr so piped output stays machine-clean.

#![forbid(unsafe_code)]

use rrf_analyze::Severity;
use rrf_core::Module;
use rrf_fabric::{device, Fabric, Fault, Region};
use std::process::ExitCode;

const USAGE: &str = "\
rrf-analyze: static model analysis (dead/duplicate/dominated alternatives,
capacity bounds, well-formedness) with zero solving.

USAGE:
    rrf-analyze --spec FILE [OPTIONS]
    rrf-analyze --workload paper:SEED [OPTIONS]
    rrf-analyze --workload small:MODULES:SEED [OPTIONS]

OPTIONS:
    --spec FILE          analyze a flow job file (JSON, see rrf-flow)
    --workload KIND      analyze a generated workload on a columns region
    --width N            region width for --workload (default 240)
    --height N           region height for --workload (default 16)
    --bram-period N      BRAM column period (default 10)
    --bram-offset N      BRAM column offset (default 4)
    --fault SPEC         inject a fault first; repeatable.
                         SPEC = column:X | tile:X,Y | rect:X,Y,W,H
    --format FMT         text (default) or ndjson
    -h, --help           print this help
    -V, --version        print the tool version

EXIT CODES:
    0  clean, or info-level findings only
    1  warnings (dead/duplicate alternatives)
    2  errors (malformed input or proven infeasibility)
    3  usage or I/O error
";

struct Options {
    spec: Option<String>,
    workload: Option<String>,
    width: i32,
    height: i32,
    bram_period: i32,
    bram_offset: i32,
    faults: Vec<Fault>,
    ndjson: bool,
}

fn usage_error(message: &str) -> String {
    format!("rrf-analyze: {message}\n\n{USAGE}")
}

fn parse_fault(spec: &str) -> Result<Fault, String> {
    let bad = || format!("bad --fault `{spec}` (column:X | tile:X,Y | rect:X,Y,W,H)");
    let (kind, rest) = spec.split_once(':').ok_or_else(bad)?;
    let nums: Vec<i32> = rest
        .split(',')
        .map(|s| s.trim().parse::<i32>())
        .collect::<Result<_, _>>()
        .map_err(|_| bad())?;
    match (kind, nums.as_slice()) {
        ("column", [x]) => Ok(Fault::Column { x: *x }),
        ("tile", [x, y]) => Ok(Fault::Tile { x: *x, y: *y }),
        ("rect", [x, y, w, h]) => Ok(Fault::Rect {
            x: *x,
            y: *y,
            w: *w,
            h: *h,
        }),
        _ => Err(bad()),
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        spec: None,
        workload: None,
        width: 240,
        height: 16,
        bram_period: 10,
        bram_offset: 4,
        faults: Vec::new(),
        ndjson: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| usage_error(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--spec" => opts.spec = Some(value("--spec")?),
            "--workload" => opts.workload = Some(value("--workload")?),
            "--width" => opts.width = parse_i32(&value("--width")?, "--width")?,
            "--height" => opts.height = parse_i32(&value("--height")?, "--height")?,
            "--bram-period" => {
                opts.bram_period = parse_i32(&value("--bram-period")?, "--bram-period")?
            }
            "--bram-offset" => {
                opts.bram_offset = parse_i32(&value("--bram-offset")?, "--bram-offset")?
            }
            "--fault" => opts
                .faults
                .push(parse_fault(&value("--fault")?).map_err(|e| usage_error(&e))?),
            "--format" => match value("--format")?.as_str() {
                "text" => opts.ndjson = false,
                "ndjson" => opts.ndjson = true,
                other => return Err(usage_error(&format!("unknown --format `{other}`"))),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "-V" | "--version" => {
                println!("rrf-analyze {}", env!("CARGO_PKG_VERSION"));
                std::process::exit(0);
            }
            other => return Err(usage_error(&format!("unknown argument `{other}`"))),
        }
    }
    match (&opts.spec, &opts.workload) {
        (Some(_), Some(_)) => Err(usage_error("give either --spec or --workload, not both")),
        (None, None) => Err(usage_error("one of --spec or --workload is required")),
        _ => Ok(opts),
    }
}

fn parse_i32(s: &str, name: &str) -> Result<i32, String> {
    s.parse::<i32>()
        .map_err(|_| usage_error(&format!("{name} expects an integer, got `{s}`")))
}

/// Build a generated workload's modules (mirrors the bench harness).
fn workload_modules(kind: &str) -> Result<Vec<Module>, String> {
    let parts: Vec<&str> = kind.split(':').collect();
    let spec = match parts.as_slice() {
        ["paper", seed] => rrf_modgen::WorkloadSpec::paper(
            seed.parse().map_err(|_| usage_error("bad paper seed"))?,
        ),
        ["small", modules, seed] => rrf_modgen::WorkloadSpec::small(
            modules
                .parse()
                .map_err(|_| usage_error("bad small module count"))?,
            seed.parse().map_err(|_| usage_error("bad small seed"))?,
        ),
        _ => {
            return Err(usage_error(&format!(
                "unknown --workload `{kind}` (paper:SEED | small:MODULES:SEED)"
            )))
        }
    };
    let workload = rrf_modgen::generate_workload(&spec);
    Ok(workload
        .modules
        .iter()
        .map(|m| Module::new(m.name.clone(), m.shapes.clone()))
        .collect())
}

fn columns_region(opts: &Options) -> Region {
    let fabric: Fabric = device::columns(
        opts.width,
        opts.height,
        device::ColumnLayout {
            bram_period: opts.bram_period,
            bram_offset: opts.bram_offset,
            dsp_period: 0,
            dsp_offset: 0,
            io_ring: 0,
            center_clock: false,
        },
    );
    Region::whole(fabric)
}

fn build_instance(opts: &Options) -> Result<(Region, Vec<Module>), String> {
    let (mut region, modules) = if let Some(path) = &opts.spec {
        let spec = rrf_flow::io::load_spec(std::path::Path::new(path))
            .map_err(|e| format!("rrf-analyze: cannot read `{path}`: {e}"))?;
        let region = spec
            .region
            .build()
            .map_err(|e| format!("rrf-analyze: bad region in `{path}`: {e}"))?;
        let modules = spec
            .modules
            .iter()
            .map(rrf_flow::resolve_module)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("rrf-analyze: `{path}`: {e}"))?;
        (region, modules)
    } else {
        let kind = opts.workload.as_ref().expect("parse_args guarantees one");
        (columns_region(opts), workload_modules(kind)?)
    };
    for &fault in &opts.faults {
        region.inject_fault(fault);
    }
    Ok((region, modules))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(3);
        }
    };
    let (region, modules) = match build_instance(&opts) {
        Ok(pair) => pair,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(3);
        }
    };

    let analysis = rrf_analyze::analyze(&region, &modules);
    if opts.ndjson {
        print!("{}", analysis.to_ndjson());
        eprintln!(
            "{} diagnostic(s); {}/{} alternatives prunable; {}",
            analysis.diagnostics.len(),
            analysis.shapes_prunable,
            analysis.shapes_total,
            if analysis.proven_infeasible {
                "proven infeasible"
            } else {
                "not proven infeasible"
            }
        );
    } else {
        print!("{analysis}");
    }

    match analysis.max_severity() {
        None | Some(Severity::Info) => ExitCode::SUCCESS,
        Some(Severity::Warn) => ExitCode::from(1),
        Some(Severity::Error) => ExitCode::from(2),
    }
}
