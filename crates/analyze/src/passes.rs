//! The analysis passes.
//!
//! [`analyze`] inspects a placement instance — a [`Region`] plus a module
//! list — without solving anything, and reports findings as
//! [`Diagnostic`]s in a deterministic order: per module (input order),
//! well-formedness first, then dead alternatives, then the dead-module
//! verdict, then duplicates and dominated alternatives; workload-level
//! capacity bounds come last. Running the same input twice yields
//! byte-identical NDJSON.
//!
//! [`preflight`] is the cheap error-only subset the placement server runs
//! on every request before spending solver budget.

use crate::diagnostic::{Code, Diagnostic, Severity};
use rrf_core::Module;
use rrf_fabric::{Region, ResourceKind};
use rrf_geost::{first_anchor, ShapeDef, ShapeFate};
use std::fmt;

/// The result of a full analysis run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Analysis {
    /// All findings, in the deterministic order documented on the module.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether any finding proves no floorplan exists (RRF004/RRF005).
    pub proven_infeasible: bool,
    /// Total design alternatives across the workload.
    pub shapes_total: usize,
    /// Alternatives the solver prune would strip (dead + duplicate +
    /// dominated, counting malformed ones too — they never reach the
    /// model).
    pub shapes_prunable: usize,
}

impl Analysis {
    /// Highest severity present, `None` when the instance is clean.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// One JSON object per line, trailing newline, byte-deterministic.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&serde_json::to_string(d).expect("diagnostic serializes"));
            out.push('\n');
        }
        out
    }

    /// Diagnostics per code, `(code string, count)`, sorted by code and
    /// omitting zero counts. Stable shape for trace sinks and stats.
    pub fn code_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.code.as_str()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "{} diagnostic(s); {}/{} alternatives prunable; {}",
            self.diagnostics.len(),
            self.shapes_prunable,
            self.shapes_total,
            if self.proven_infeasible {
                "proven infeasible"
            } else {
                "not proven infeasible"
            }
        )
    }
}

/// Structural soundness of one shape, checked before any geometry pass.
/// Shapes arrive through deserialized job files, which bypass the
/// assertions in `ShapeDef::new`, so nothing here may assume invariants.
fn well_formedness(shape: &ShapeDef) -> Option<Diagnostic> {
    if shape.boxes().is_empty() {
        return Some(Diagnostic::new(
            Code::MalformedShape,
            "shape has no tilesets",
        ));
    }
    for (i, b) in shape.boxes().iter().enumerate() {
        if b.w <= 0 || b.h <= 0 {
            return Some(Diagnostic::new(
                Code::MalformedShape,
                format!("tileset {i} is degenerate ({}x{})", b.w, b.h),
            ));
        }
    }
    for (i, a) in shape.boxes().iter().enumerate() {
        for (j, b) in shape.boxes().iter().enumerate().skip(i + 1) {
            if a.local().intersects(&b.local()) {
                return Some(Diagnostic::new(
                    Code::MalformedShape,
                    format!("tilesets {i} and {j} overlap"),
                ));
            }
        }
    }
    for (i, b) in shape.boxes().iter().enumerate() {
        if !b.resource.is_placeable() {
            return Some(
                Diagnostic::new(
                    Code::UnplaceableResource,
                    format!(
                        "tileset {i} requests {:?} tiles, which modules can never occupy",
                        b.resource
                    ),
                )
                .with_resource(b.resource),
            );
        }
    }
    None
}

/// Run every pass over the instance. Pure inspection: no model is built
/// and no search happens; cost is dominated by one anchor scan per shape.
pub fn analyze(region: &Region, modules: &[Module]) -> Analysis {
    let mut diagnostics = Vec::new();
    let mut shapes_total = 0;
    let mut shapes_prunable = 0;
    // Per module: the elementwise-minimum resource demand over its live
    // alternatives, for the capacity bound. `None` once a module is dead
    // (its RRF004 already proves infeasibility; it must not weaken the
    // bound for the others).
    let mut min_demand: Vec<Option<[i64; 6]>> = Vec::with_capacity(modules.len());

    for (mi, module) in modules.iter().enumerate() {
        shapes_total += module.num_shapes();

        // Pass 1: well-formedness. Malformed shapes are excluded from the
        // geometry passes — `bounding_box()` and the anchor scan assume
        // the `ShapeDef::new` invariants they violate.
        let mut sound: Vec<usize> = Vec::new();
        for (si, shape) in module.shapes().iter().enumerate() {
            match well_formedness(shape) {
                Some(d) => {
                    shapes_prunable += 1;
                    diagnostics.push(d.for_module(mi, &module.name).for_shape(si));
                }
                None => sound.push(si),
            }
        }

        // Pass 2: dead / duplicate / dominated, on the sound shapes only.
        // `classify_shapes` indices are positions in `sound`; map back.
        let shapes: Vec<ShapeDef> = sound
            .iter()
            .map(|&si| module.shapes()[si].clone())
            .collect();
        let fates = rrf_geost::classify_shapes(region, &shapes);

        for (k, fate) in fates.iter().enumerate() {
            if *fate == ShapeFate::Dead {
                shapes_prunable += 1;
                diagnostics.push(
                    Diagnostic::new(
                        Code::DeadAlternative,
                        "no valid anchor anywhere in the region (eq. 2-3 anchor set is empty)",
                    )
                    .for_module(mi, &module.name)
                    .for_shape(sound[k]),
                );
            }
        }

        let live: Vec<usize> = fates
            .iter()
            .enumerate()
            .filter(|(_, f)| **f != ShapeFate::Dead)
            .map(|(k, _)| k)
            .collect();

        if live.is_empty() {
            diagnostics.push(
                Diagnostic::new(
                    Code::DeadModule,
                    format!(
                        "all {} design alternative(s) are dead or malformed: instance is infeasible",
                        module.num_shapes()
                    ),
                )
                .for_module(mi, &module.name),
            );
            min_demand.push(None);
            continue;
        }

        for &k in &live {
            match fates[k] {
                ShapeFate::DuplicateOf(j) => {
                    shapes_prunable += 1;
                    diagnostics.push(
                        Diagnostic::new(
                            Code::DuplicateAlternative,
                            format!(
                                "covers the same tiles as alternative {} (e.g. a 180-degree \
                                 rotation of a symmetric layout)",
                                sound[j]
                            ),
                        )
                        .for_module(mi, &module.name)
                        .for_shape(sound[k])
                        .with_other_shape(sound[j]),
                    );
                }
                ShapeFate::DominatedBy(j) => {
                    shapes_prunable += 1;
                    diagnostics.push(
                        Diagnostic::new(
                            Code::DominatedAlternative,
                            format!(
                                "strict superset of alternative {} with no greater rightward \
                                 extent; the subset always serves",
                                sound[j]
                            ),
                        )
                        .for_module(mi, &module.name)
                        .for_shape(sound[k])
                        .with_other_shape(sound[j]),
                    );
                }
                ShapeFate::Keep | ShapeFate::Dead => {}
            }
        }

        let mut min = [i64::MAX; 6];
        for &k in &live {
            let ms = shapes[k].resource_multiset();
            for r in 0..6 {
                min[r] = min[r].min(ms[r]);
            }
        }
        min_demand.push(Some(min));
    }

    // Pass 3: per-resource-kind counting bound over the whole workload.
    // Whatever alternative each module ends up using, it needs at least
    // its minimum demand of every kind; if the sums exceed what the
    // region offers, no floorplan exists (faults and masks included,
    // since `Region::kind_at` reports those tiles as `Static`).
    for kind in ResourceKind::PLACEABLE {
        let demand: i64 = min_demand.iter().flatten().map(|m| m[kind.index()]).sum();
        let capacity = region.count(kind) as i64;
        if demand > capacity {
            diagnostics.push(
                Diagnostic::new(
                    Code::CapacityExceeded,
                    format!(
                        "workload needs at least {demand} {kind:?} tile(s) but the region \
                         has {capacity}"
                    ),
                )
                .with_resource(kind),
            );
        }
    }
    let total_demand: i64 = min_demand
        .iter()
        .flatten()
        .map(|m| {
            ResourceKind::PLACEABLE
                .iter()
                .map(|k| m[k.index()])
                .sum::<i64>()
        })
        .sum();
    let total_capacity = region.placeable_count() as i64;
    if total_demand > total_capacity {
        diagnostics.push(Diagnostic::new(
            Code::CapacityExceeded,
            format!(
                "workload needs at least {total_demand} placeable tile(s) but the region \
                 has {total_capacity}"
            ),
        ));
    }

    let proven_infeasible = diagnostics.iter().any(|d| d.code.proves_infeasible());
    Analysis {
        diagnostics,
        proven_infeasible,
        shapes_total,
        shapes_prunable,
    }
}

/// The cheap error-only subset: well-formedness, dead modules, and the
/// capacity bound — exactly the findings that prove a request can never
/// succeed. Returns the first such finding, or `None` when the request
/// deserves solver time. Skips the duplicate/dominance set computations,
/// and the per-shape anchor scans early-exit on the first valid anchor.
pub fn preflight(region: &Region, modules: &[Module]) -> Option<Diagnostic> {
    let mut min_demand: Vec<[i64; 6]> = Vec::with_capacity(modules.len());
    for (mi, module) in modules.iter().enumerate() {
        let mut live_min: Option<[i64; 6]> = None;
        let mut first_error: Option<Diagnostic> = None;
        for (si, shape) in module.shapes().iter().enumerate() {
            if let Some(d) = well_formedness(shape) {
                if first_error.is_none() {
                    first_error = Some(d.for_module(mi, &module.name).for_shape(si));
                }
                continue;
            }
            if first_anchor(region, shape).is_none() {
                continue;
            }
            let ms = shape.resource_multiset();
            let min = live_min.get_or_insert([i64::MAX; 6]);
            for r in 0..6 {
                min[r] = min[r].min(ms[r]);
            }
        }
        match live_min {
            Some(min) => min_demand.push(min),
            None => {
                // A malformed shape is the more actionable report when
                // one caused the module to die.
                return Some(first_error.unwrap_or_else(|| {
                    Diagnostic::new(
                        Code::DeadModule,
                        format!(
                            "all {} design alternative(s) are dead or malformed: instance \
                             is infeasible",
                            module.num_shapes()
                        ),
                    )
                    .for_module(mi, &module.name)
                }));
            }
        }
    }

    for kind in ResourceKind::PLACEABLE {
        let demand: i64 = min_demand.iter().map(|m| m[kind.index()]).sum();
        let capacity = region.count(kind) as i64;
        if demand > capacity {
            return Some(
                Diagnostic::new(
                    Code::CapacityExceeded,
                    format!(
                        "workload needs at least {demand} {kind:?} tile(s) but the region \
                         has {capacity}"
                    ),
                )
                .with_resource(kind),
            );
        }
    }
    let total_demand: i64 = min_demand
        .iter()
        .map(|m| {
            ResourceKind::PLACEABLE
                .iter()
                .map(|k| m[k.index()])
                .sum::<i64>()
        })
        .sum();
    let total_capacity = region.placeable_count() as i64;
    if total_demand > total_capacity {
        return Some(Diagnostic::new(
            Code::CapacityExceeded,
            format!(
                "workload needs at least {total_demand} placeable tile(s) but the region \
                 has {total_capacity}"
            ),
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_fabric::Fabric;
    use rrf_geost::ShiftedBox;

    fn region(w: i32, h: i32) -> Region {
        Region::whole(Fabric::homogeneous(w, h).unwrap())
    }

    fn clb_bar(w: i32, h: i32) -> ShapeDef {
        ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
    }

    /// Build a shape that violates `ShapeDef::new` invariants the way a
    /// deserialized job file can.
    fn malformed(json: &str) -> ShapeDef {
        serde_json::from_str(json).unwrap()
    }

    #[test]
    fn clean_instance_is_clean() {
        let r = region(8, 4);
        let modules = vec![
            Module::new("a", vec![clb_bar(2, 2), clb_bar(4, 1)]),
            Module::new("b", vec![clb_bar(3, 2)]),
        ];
        let a = analyze(&r, &modules);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert!(!a.proven_infeasible);
        assert_eq!(a.shapes_total, 3);
        assert_eq!(a.shapes_prunable, 0);
        assert_eq!(a.max_severity(), None);
        assert!(preflight(&r, &modules).is_none());
    }

    #[test]
    fn malformed_shapes_are_reported_not_crashed_on() {
        let r = region(8, 4);
        let empty = malformed(r#"{"boxes": []}"#);
        let degenerate = malformed(r#"{"boxes": [{"dx":0,"dy":0,"w":0,"h":2,"resource":"Clb"}]}"#);
        let overlapping = malformed(
            r#"{"boxes": [{"dx":0,"dy":0,"w":2,"h":2,"resource":"Clb"},
                          {"dx":1,"dy":0,"w":2,"h":2,"resource":"Clb"}]}"#,
        );
        let unplaceable = malformed(r#"{"boxes": [{"dx":0,"dy":0,"w":2,"h":2,"resource":"Io"}]}"#);
        let modules = vec![Module::new(
            "m",
            vec![empty, degenerate, overlapping, unplaceable, clb_bar(2, 2)],
        )];
        let a = analyze(&r, &modules);
        let codes: Vec<Code> = a.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                Code::MalformedShape,
                Code::MalformedShape,
                Code::MalformedShape,
                Code::UnplaceableResource,
            ]
        );
        assert_eq!(a.shapes_prunable, 4);
        // One sound live shape remains, so not a dead module.
        assert!(!a.proven_infeasible);
        // Preflight reports the malformed shape only when the module dies;
        // here it survives on the last alternative.
        assert!(preflight(&r, &modules).is_none());
    }

    #[test]
    fn dead_alternative_and_dead_module() {
        let r = region(8, 3);
        let m_live = Module::new("live", vec![clb_bar(2, 2), clb_bar(1, 6)]);
        let m_dead = Module::new("dead", vec![clb_bar(1, 5), clb_bar(9, 1)]);
        let a = analyze(&r, &[m_live.clone(), m_dead.clone()]);
        let codes: Vec<Code> = a.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                Code::DeadAlternative, // live[1], too tall
                Code::DeadAlternative, // dead[0]
                Code::DeadAlternative, // dead[1]
                Code::DeadModule,
            ]
        );
        assert!(a.proven_infeasible);
        assert_eq!(a.shapes_prunable, 3);
        assert_eq!(a.diagnostics[0].module, Some(0));
        assert_eq!(a.diagnostics[0].shape, Some(1));
        assert_eq!(a.diagnostics[3].module, Some(1));
        assert_eq!(a.diagnostics[3].shape, None);

        let p = preflight(&r, &[m_live, m_dead]).expect("preflight rejects");
        assert_eq!(p.code, Code::DeadModule);
        assert_eq!(p.module, Some(1));
    }

    #[test]
    fn duplicate_and_dominated_are_flagged() {
        let r = region(10, 4);
        // Shape 1 duplicates shape 0 via a different box decomposition;
        // shape 2 is a strict superset of shape 0 reaching no further
        // right (taller, same width) — dominated.
        let split = ShapeDef::new(vec![
            ShiftedBox::new(0, 0, 1, 2, ResourceKind::Clb),
            ShiftedBox::new(1, 0, 2, 2, ResourceKind::Clb),
        ]);
        let superset = clb_bar(3, 3);
        let m = Module::new("m", vec![clb_bar(3, 2), split, superset]);
        let a = analyze(&r, &[m]);
        let codes: Vec<Code> = a.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![Code::DuplicateAlternative, Code::DominatedAlternative]
        );
        assert_eq!(a.diagnostics[0].shape, Some(1));
        assert_eq!(a.diagnostics[0].other_shape, Some(0));
        assert_eq!(a.diagnostics[1].shape, Some(2));
        assert_eq!(a.diagnostics[1].other_shape, Some(0));
        assert_eq!(a.shapes_prunable, 2);
        assert!(!a.proven_infeasible);
    }

    #[test]
    fn capacity_bound_per_kind_and_total() {
        // 10x2 columns-free homogeneous region: 20 CLBs, 0 BRAMs.
        let r = region(10, 2);
        let bram = ShapeDef::new(vec![ShiftedBox::new(0, 0, 1, 1, ResourceKind::Bram)]);
        let m_bram = Module::new("needs-bram", vec![bram]);
        let a = analyze(&r, &[m_bram]);
        // The BRAM shape is dead (no BRAM tile exists) so the module dies
        // before the capacity pass sees it.
        assert!(a.proven_infeasible);
        assert!(a.diagnostics.iter().any(|d| d.code == Code::DeadModule));

        // Capacity without any dead module: three 3x2 modules = 18 tiles
        // minimum in a 4x4 region of 16.
        let r = region(4, 4);
        let mods: Vec<Module> = (0..3)
            .map(|i| Module::new(format!("m{i}"), vec![clb_bar(3, 2), clb_bar(2, 3)]))
            .collect();
        let a = analyze(&r, &mods);
        assert!(a.proven_infeasible);
        let caps: Vec<&Diagnostic> = a
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::CapacityExceeded)
            .collect();
        assert_eq!(caps.len(), 2, "{:?}", a.diagnostics);
        assert_eq!(caps[0].resource, Some(ResourceKind::Clb));
        assert_eq!(caps[1].resource, None);
        let p = preflight(&r, &mods).expect("preflight rejects");
        assert_eq!(p.code, Code::CapacityExceeded);
    }

    #[test]
    fn ndjson_is_byte_deterministic() {
        let r = region(8, 3);
        let modules = vec![
            Module::new("a", vec![clb_bar(2, 2), clb_bar(2, 2), clb_bar(1, 6)]),
            Module::new("b", vec![clb_bar(1, 5)]),
        ];
        let first = analyze(&r, &modules);
        let second = analyze(&r, &modules);
        assert_eq!(first, second);
        assert_eq!(first.to_ndjson(), second.to_ndjson());
        assert!(!first.to_ndjson().is_empty());
        for line in first.to_ndjson().lines() {
            let d: Diagnostic = serde_json::from_str(line).unwrap();
            assert!(first.diagnostics.contains(&d));
        }
    }

    #[test]
    fn code_counts_aggregate_and_sort() {
        let r = region(5, 3);
        // "b" is entirely unplaceable (too tall twice over): RRF003 x2 +
        // RRF004; the clean module contributes nothing.
        let modules = vec![
            Module::new("a", vec![clb_bar(2, 2)]),
            Module::new("b", vec![clb_bar(1, 5), clb_bar(1, 6)]),
        ];
        let a = analyze(&r, &modules);
        let counts = a.code_counts();
        assert!(counts.iter().all(|&(_, n)| n > 0));
        assert!(counts.windows(2).all(|w| w[0].0 < w[1].0));
        let total: u64 = counts.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, a.diagnostics.len() as u64);
        assert!(counts.iter().any(|&(c, n)| c == "RRF003" && n == 2));
        assert!(counts.iter().any(|&(c, _)| c == "RRF004"));
    }

    #[test]
    fn faults_kill_alternatives() {
        use rrf_fabric::Fault;
        let mut r = region(4, 2);
        let m = Module::new("m", vec![clb_bar(4, 1)]);
        assert!(analyze(&r, std::slice::from_ref(&m)).diagnostics.is_empty());
        // A fault in every row of column 2 leaves no 4-wide span.
        r.inject_fault(Fault::Column { x: 2 });
        let a = analyze(&r, std::slice::from_ref(&m));
        assert!(a.proven_infeasible, "{:?}", a.diagnostics);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == Code::DeadAlternative));
        assert!(preflight(&r, &[m]).is_some());
    }
}
