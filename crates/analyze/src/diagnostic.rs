//! Stable machine-readable diagnostics.
//!
//! Every finding the analyzer can make has a fixed code (`RRF001`…), a
//! fixed severity, and a span naming the module/shape it is about. The
//! set of codes is append-only: codes are never renumbered or reused, so
//! committed expected-diagnostic files (the CI regression gate) and any
//! client switching on `code` stay valid across releases.

use rrf_fabric::ResourceKind;
use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Diagnostic severity. `Error` findings make the instance unusable as
/// given (malformed input or a proof of infeasibility); `Warn` findings
/// mean wasted model size the solver prune removes; `Info` findings are
/// advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// The analyzer's diagnostic codes (append-only; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// A shape is structurally invalid: no boxes, a degenerate box
    /// (non-positive width/height), or internally overlapping boxes.
    /// Such shapes reach us through deserialized job files, which bypass
    /// `ShapeDef::new`'s assertions.
    MalformedShape,
    /// A box requests a resource kind modules can never occupy
    /// (`Static`, `Io`, `Clock`).
    UnplaceableResource,
    /// A design alternative with no valid anchor anywhere in the region
    /// (its eq. 2–3 anchor set is empty, faults included).
    DeadAlternative,
    /// Every alternative of a module is dead or malformed: the instance
    /// is proven infeasible.
    DeadModule,
    /// A per-resource-kind counting bound proves the workload cannot
    /// fit: summed minimum demand exceeds the region's capacity.
    CapacityExceeded,
    /// Two alternatives of a module cover identical anchor-relative tile
    /// sets (e.g. the 180° rotation of a symmetric layout).
    DuplicateAlternative,
    /// An alternative whose tiles are a strict superset of a sibling's
    /// that reaches no further right — the sibling always serves.
    DominatedAlternative,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::MalformedShape => "RRF001",
            Code::UnplaceableResource => "RRF002",
            Code::DeadAlternative => "RRF003",
            Code::DeadModule => "RRF004",
            Code::CapacityExceeded => "RRF005",
            Code::DuplicateAlternative => "RRF006",
            Code::DominatedAlternative => "RRF007",
        }
    }

    pub fn parse(s: &str) -> Option<Code> {
        Some(match s {
            "RRF001" => Code::MalformedShape,
            "RRF002" => Code::UnplaceableResource,
            "RRF003" => Code::DeadAlternative,
            "RRF004" => Code::DeadModule,
            "RRF005" => Code::CapacityExceeded,
            "RRF006" => Code::DuplicateAlternative,
            "RRF007" => Code::DominatedAlternative,
            _ => return None,
        })
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::MalformedShape
            | Code::UnplaceableResource
            | Code::DeadModule
            | Code::CapacityExceeded => Severity::Error,
            Code::DeadAlternative | Code::DuplicateAlternative => Severity::Warn,
            Code::DominatedAlternative => Severity::Info,
        }
    }

    /// Whether this code constitutes a proof that no floorplan exists.
    pub fn proves_infeasible(self) -> bool {
        matches!(self, Code::DeadModule | Code::CapacityExceeded)
    }
}

// The vendored serde derive cannot rename variants to "RRF001"-style
// strings, so code and severity serialize by hand.
impl Serialize for Code {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Code {
    fn from_value(v: &Value) -> Result<Code, DeError> {
        match v {
            Value::Str(s) => {
                Code::parse(s).ok_or_else(|| DeError::unknown_variant(s, "diagnostic code"))
            }
            _ => Err(DeError::expected("string", "diagnostic code")),
        }
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Severity {
    fn from_value(v: &Value) -> Result<Severity, DeError> {
        match v {
            Value::Str(s) => match s.as_str() {
                "info" => Ok(Severity::Info),
                "warn" => Ok(Severity::Warn),
                "error" => Ok(Severity::Error),
                other => Err(DeError::unknown_variant(other, "severity")),
            },
            _ => Err(DeError::expected("string", "severity")),
        }
    }
}

/// One analyzer finding. The span fields are `None` when the finding is
/// not about a specific module/shape (e.g. a workload-level capacity
/// bound names only a resource kind).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Module index in the input order.
    #[serde(default)]
    pub module: Option<usize>,
    /// The module's name, for human consumption.
    #[serde(default)]
    pub module_name: Option<String>,
    /// Shape (design-alternative) index within the module.
    #[serde(default)]
    pub shape: Option<usize>,
    /// A second shape index the finding relates to (the kept duplicate,
    /// the dominating sibling).
    #[serde(default)]
    pub other_shape: Option<usize>,
    /// Resource kind a capacity/well-formedness finding is about.
    #[serde(default)]
    pub resource: Option<ResourceKind>,
    pub message: String,
}

impl Diagnostic {
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            module: None,
            module_name: None,
            shape: None,
            other_shape: None,
            resource: None,
            message: message.into(),
        }
    }

    pub fn for_module(mut self, module: usize, name: &str) -> Diagnostic {
        self.module = Some(module);
        self.module_name = Some(name.to_string());
        self
    }

    pub fn for_shape(mut self, shape: usize) -> Diagnostic {
        self.shape = Some(shape);
        self
    }

    pub fn with_other_shape(mut self, other: usize) -> Diagnostic {
        self.other_shape = Some(other);
        self
    }

    pub fn with_resource(mut self, kind: ResourceKind) -> Diagnostic {
        self.resource = Some(kind);
        self
    }
}

impl fmt::Display for Diagnostic {
    /// Human-readable one-liner:
    /// `RRF003 warn m07[2]: dead alternative: no valid anchor`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code.as_str(), self.severity.as_str())?;
        match (&self.module_name, self.module) {
            (Some(name), _) => write!(f, " {name}")?,
            (None, Some(i)) => write!(f, " module#{i}")?,
            (None, None) => {}
        }
        if let Some(s) = self.shape {
            write!(f, "[{s}]")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_keep_severity() {
        for code in [
            Code::MalformedShape,
            Code::UnplaceableResource,
            Code::DeadAlternative,
            Code::DeadModule,
            Code::CapacityExceeded,
            Code::DuplicateAlternative,
            Code::DominatedAlternative,
        ] {
            assert_eq!(Code::parse(code.as_str()), Some(code));
            assert_eq!(
                code.proves_infeasible(),
                matches!(code, Code::DeadModule | Code::CapacityExceeded)
            );
        }
        assert_eq!(Code::parse("RRF999"), None);
    }

    #[test]
    fn diagnostic_json_roundtrip() {
        let d = Diagnostic::new(Code::DuplicateAlternative, "same tiles as shape 0")
            .for_module(3, "m03")
            .for_shape(1)
            .with_other_shape(0);
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains(r#""code":"RRF006""#), "{json}");
        assert!(json.contains(r#""severity":"warn""#), "{json}");
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn display_is_compact() {
        let d = Diagnostic::new(Code::DeadAlternative, "no valid anchor")
            .for_module(7, "m07")
            .for_shape(2);
        assert_eq!(d.to_string(), "RRF003 warn m07[2]: no valid anchor");
    }
}
