//! `rrf-flow` — command-line front end of the design flow.
//!
//! ```text
//! rrf-flow run <job.json> [-o report.json] [--render]
//! rrf-flow example <out.json>     # write a starter job file
//! ```
//!
//! The job-file format is `rrf_flow::spec::FlowSpec`; see the crate docs
//! and `examples/design_flow.rs`.

#![forbid(unsafe_code)]
use rrf_flow::{io, run, DeviceSpec, FlowSpec, ModuleEntry, PlacerSettings, RegionSpec};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  rrf-flow run <job.json> [-o <report.json>] [--render]");
    eprintln!("  rrf-flow example <out.json>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("example") => cmd_example(&args[1..]),
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(job_path) = args.first() else {
        return usage();
    };
    let mut out_path: Option<PathBuf> = None;
    let mut render = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = Some(PathBuf::from(p)),
                    None => return usage(),
                }
            }
            "--render" => render = true,
            _ => return usage(),
        }
        i += 1;
    }

    let spec = match io::load_spec(Path::new(job_path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rrf-flow: cannot load {job_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match run(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rrf-flow: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "feasible={} proven={} extent={:?}",
        report.feasible, report.proven, report.extent
    );
    for p in &report.placements {
        println!("  {} shape {} at ({}, {})", p.name, p.shape, p.x, p.y);
    }
    if let Some(m) = &report.metrics {
        println!("utilization {:.1}%", m.utilization * 100.0);
    }
    if render && report.feasible {
        match (spec.region.build(), report.floorplan.as_ref()) {
            (Ok(region), Some(plan)) => {
                let modules: Vec<rrf_core::Module> = spec
                    .modules
                    .iter()
                    .map(|m| rrf_core::Module::new(m.name.clone(), m.shapes.clone()))
                    .collect();
                println!("{}", rrf_viz::render_floorplan(&region, &modules, plan));
            }
            _ => eprintln!("rrf-flow: nothing to render"),
        }
    }
    if let Some(out) = out_path {
        if let Err(e) = io::save_report(&out, &report) {
            eprintln!("rrf-flow: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("report written to {}", out.display());
    }
    if report.feasible {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

fn cmd_example(args: &[String]) -> ExitCode {
    let Some(out) = args.first() else {
        return usage();
    };
    let spec = FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Columns {
                width: 48,
                height: 8,
                bram_period: 10,
                bram_offset: 4,
                dsp_period: 0,
                dsp_offset: 0,
                io_ring: 0,
                center_clock: false,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules: vec![ModuleEntry {
            name: "example".into(),
            shapes: vec![rrf_geost::ShapeDef::new(vec![rrf_geost::ShiftedBox::new(
                0,
                0,
                4,
                3,
                rrf_fabric::ResourceKind::Clb,
            )])],
            netlist: None,
        }],
        placer: PlacerSettings::default(),
    };
    match io::save_spec(Path::new(out), &spec) {
        Ok(()) => {
            println!("starter job written to {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rrf-flow: cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}
