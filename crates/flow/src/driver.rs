//! The Fig. 2 pipeline: specs in, optimal placement out.

use crate::report::{FlowReport, PlacedModuleReport};
use crate::spec::{FlowSpec, ModuleEntry};
use rrf_core::{cp, metrics, verify, Module, PlacementProblem};
use std::fmt;

/// Errors surfaced by the flow driver.
#[derive(Debug)]
pub enum FlowError {
    /// The region spec could not be materialized.
    Region(rrf_fabric::FabricError),
    /// A module entry has neither shapes nor a netlist, or its netlist is
    /// broken or needs resources the layout generator cannot synthesize.
    Module { name: String, message: String },
    /// The placer returned a floorplan violating its own constraints —
    /// a solver bug, surfaced loudly instead of silently reported.
    InvalidPlacement(Vec<verify::Violation>),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Region(e) => write!(f, "region spec error: {e}"),
            FlowError::Module { name, message } => {
                write!(f, "module {name:?}: {message}")
            }
            FlowError::InvalidPlacement(v) => {
                write!(f, "placer produced {} constraint violations", v.len())
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Resolve one module entry to concrete design alternatives: either the
/// explicit shapes, or the netlist packed and laid out by the generator.
/// Public so services embedding the flow (e.g. `rrf-server`) resolve
/// modules exactly the way the batch driver does.
pub fn resolve_module(entry: &ModuleEntry) -> Result<Module, FlowError> {
    let err = |message: String| FlowError::Module {
        name: entry.name.clone(),
        message,
    };
    if let Some(source) = &entry.netlist {
        if !entry.shapes.is_empty() {
            return Err(err("give either shapes or a netlist, not both".into()));
        }
        let netlist = rrf_netlist::parse(&source.text).map_err(|e| err(e.to_string()))?;
        let demand = rrf_netlist::pack(&netlist, &rrf_netlist::PackRules::default());
        if demand.dsps > 0 {
            return Err(err(
                "DSP cells are not supported by the layout generator".into()
            ));
        }
        if demand.clbs == 0 {
            return Err(err("netlist packs to zero CLBs".into()));
        }
        let spec = rrf_modgen::ModuleSpec {
            clbs: demand.clbs,
            brams: demand.brams,
            height: source.height.max(2),
        };
        let shapes = rrf_modgen::derive_alternatives(
            &spec,
            &rrf_modgen::layout::LayoutParams::default(),
            source.alternatives,
            (source.height - 2).max(2),
        );
        return Ok(Module::new(entry.name.clone(), shapes));
    }
    if entry.shapes.is_empty() {
        return Err(err("module has neither shapes nor a netlist".into()));
    }
    Ok(Module::new(entry.name.clone(), entry.shapes.clone()))
}

/// Run the full flow for one job description.
pub fn run(spec: &FlowSpec) -> Result<FlowReport, FlowError> {
    let region = spec.region.build().map_err(FlowError::Region)?;
    let modules: Vec<Module> = spec
        .modules
        .iter()
        .map(resolve_module)
        .collect::<Result<_, _>>()?;
    let problem = PlacementProblem::new(region, modules);
    let config = spec.placer.to_config();
    let outcome = cp::place(&problem, &config);

    let (placements, metric, floorplan) = match &outcome.plan {
        Some(plan) => {
            let violations = verify::verify(&problem.region, &problem.modules, plan);
            if !violations.is_empty() {
                return Err(FlowError::InvalidPlacement(violations));
            }
            let placements = plan
                .placements
                .iter()
                .map(|p| PlacedModuleReport {
                    name: problem.modules[p.module].name.clone(),
                    shape: p.shape,
                    x: p.x,
                    y: p.y,
                })
                .collect();
            let metric = metrics(&problem.region, &problem.modules, plan);
            (placements, Some(metric), Some(plan.clone()))
        }
        None => (Vec::new(), None, None),
    };

    Ok(FlowReport {
        feasible: outcome.plan.is_some(),
        proven: outcome.proven,
        extent: outcome.extent,
        placements,
        metrics: metric,
        stats: outcome.stats,
        floorplan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DeviceSpec, ModuleEntry, PlacerSettings, RegionSpec};
    use rrf_fabric::ResourceKind;
    use rrf_geost::{ShapeDef, ShiftedBox};

    fn clb_shape(w: i32, h: i32) -> ShapeDef {
        ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
    }

    fn simple_spec() -> FlowSpec {
        FlowSpec {
            region: RegionSpec {
                device: DeviceSpec::Homogeneous {
                    width: 8,
                    height: 4,
                },
                bounds: None,
                static_masks: vec![],
            },
            modules: vec![
                ModuleEntry {
                    name: "alu".into(),
                    shapes: vec![clb_shape(4, 2), clb_shape(2, 4)],
                    netlist: None,
                },
                ModuleEntry {
                    name: "fir".into(),
                    shapes: vec![clb_shape(4, 2), clb_shape(2, 4)],
                    netlist: None,
                },
            ],
            placer: PlacerSettings {
                time_limit_ms: None,
                ..PlacerSettings::default()
            },
        }
    }

    #[test]
    fn end_to_end_success() {
        let report = run(&simple_spec()).unwrap();
        assert!(report.feasible);
        assert!(report.proven);
        assert_eq!(report.extent, Some(4)); // both modules pick 2x4
        assert_eq!(report.placements.len(), 2);
        assert_eq!(report.placements[0].name, "alu");
        let m = report.metrics.unwrap();
        assert!((m.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_reported_not_errored() {
        let mut spec = simple_spec();
        spec.modules.push(ModuleEntry {
            name: "huge".into(),
            shapes: vec![clb_shape(8, 4)],
            netlist: None,
        });
        let report = run(&spec).unwrap();
        assert!(!report.feasible);
        assert!(report.proven);
        assert!(report.placements.is_empty());
        assert!(report.metrics.is_none());
    }

    #[test]
    fn netlist_module_resolves_and_places() {
        let mut spec = simple_spec();
        spec.region.device = DeviceSpec::Columns {
            width: 40,
            height: 8,
            bram_period: 10,
            bram_offset: 4,
            dsp_period: 0,
            dsp_offset: 0,
            io_ring: 0,
            center_clock: false,
        };
        spec.modules = vec![ModuleEntry {
            name: "packed".into(),
            shapes: vec![],
            netlist: Some(crate::spec::NetlistSource {
                text: "\ncell l0 lut\ncell l1 lut\ncell l2 lut\ncell l3 lut\n\
                       cell l4 lut\ncell f0 ff\ncell b0 bram\nnet n0 l0 f0\n\
                       net n1 l1 b0\n"
                    .into(),
                height: 4,
                alternatives: 4,
            }),
        }];
        let report = run(&spec).unwrap();
        assert!(report.feasible);
        // 5 LUTs / 1 FF → 2 CLBs; 1 BRAM block.
        assert_eq!(report.placements.len(), 1);
    }

    #[test]
    fn empty_module_entry_is_error() {
        let mut spec = simple_spec();
        spec.modules.push(ModuleEntry {
            name: "void".into(),
            shapes: vec![],
            netlist: None,
        });
        assert!(matches!(run(&spec), Err(FlowError::Module { .. })));
    }

    #[test]
    fn broken_netlist_is_error() {
        let mut spec = simple_spec();
        spec.modules = vec![ModuleEntry {
            name: "broken".into(),
            shapes: vec![],
            netlist: Some(crate::spec::NetlistSource {
                text: "cell a gate".into(),
                height: 4,
                alternatives: 1,
            }),
        }];
        assert!(matches!(run(&spec), Err(FlowError::Module { .. })));
    }

    #[test]
    fn bad_region_is_error() {
        let mut spec = simple_spec();
        spec.region.device = DeviceSpec::Art { art: "x".into() };
        assert!(matches!(run(&spec), Err(FlowError::Region(_))));
    }
}
