//! The flow's JSON result.

use rrf_core::{Floorplan, PlacementMetrics, SolveStats};
use serde::{Deserialize, Serialize};

/// One module's placement, with the human-readable name resolved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedModuleReport {
    pub name: String,
    pub shape: usize,
    pub x: i32,
    pub y: i32,
}

/// The full flow result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowReport {
    /// Whether a placement was found.
    pub feasible: bool,
    /// Whether the result is proven (optimal, or proven infeasible).
    pub proven: bool,
    /// Spatial extent (rightmost occupied column + 1), when feasible.
    pub extent: Option<i64>,
    /// Per-module placements, in module order.
    pub placements: Vec<PlacedModuleReport>,
    /// Utilization metrics, when feasible.
    pub metrics: Option<PlacementMetrics>,
    /// Solver effort.
    pub stats: SolveStats,
    /// The raw floorplan (for downstream tooling).
    pub floorplan: Option<Floorplan>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_roundtrip() {
        let report = FlowReport {
            feasible: true,
            proven: true,
            extent: Some(12),
            placements: vec![PlacedModuleReport {
                name: "alu".into(),
                shape: 1,
                x: 3,
                y: 0,
            }],
            metrics: None,
            stats: SolveStats::default(),
            floorplan: None,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: FlowReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.extent, Some(12));
        assert_eq!(back.placements, report.placements);
    }
}
