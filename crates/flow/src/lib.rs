//! # rrf-flow — the design flow around the placer
//!
//! The paper's placer is "planned to be a part of the ReCoBus-Builder
//! framework": it consumes a *partial region description* and *module
//! specifications* and produces optimal placement positions (Fig. 2). This
//! crate reproduces that interface as files:
//!
//! * [`spec::FlowSpec`] — the JSON job description (region + modules +
//!   placer configuration);
//! * [`driver::run`] — the pipeline: build the region, assemble modules,
//!   run the CP placer, compute metrics, verify;
//! * [`io`] — load/save helpers;
//! * [`report::FlowReport`] — the JSON result (floorplan, metrics, solver
//!   statistics, per-module positions).

#![forbid(unsafe_code)]

pub mod driver;
pub mod io;
pub mod report;
pub mod spec;

pub use driver::{resolve_module, run, FlowError};
pub use report::{FlowReport, PlacedModuleReport};
pub use spec::{DeviceSpec, FlowSpec, ModuleEntry, PlacerSettings, RegionSpec};
