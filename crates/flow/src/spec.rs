//! The flow's JSON job description.

use rrf_fabric::Rect;
use rrf_geost::ShapeDef;
use serde::{Deserialize, Serialize};

/// How to build the device fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DeviceSpec {
    /// All-CLB reference device.
    Homogeneous { width: i32, height: i32 },
    /// Virtex-style regular column layout (see `rrf_fabric::device`).
    Columns {
        width: i32,
        height: i32,
        bram_period: i32,
        bram_offset: i32,
        #[serde(default)]
        dsp_period: i32,
        #[serde(default)]
        dsp_offset: i32,
        #[serde(default)]
        io_ring: i32,
        #[serde(default)]
        center_clock: bool,
    },
    /// Newer-generation irregular heterogeneity, seeded.
    Irregular { width: i32, height: i32, seed: u64 },
    /// Explicit string-art fabric (testing / tiny examples).
    Art { art: String },
}

impl DeviceSpec {
    /// Materialize the fabric.
    pub fn build(&self) -> Result<rrf_fabric::Fabric, rrf_fabric::FabricError> {
        use rrf_fabric::device;
        match self {
            DeviceSpec::Homogeneous { width, height } => {
                rrf_fabric::Fabric::homogeneous(*width, *height)
            }
            DeviceSpec::Columns {
                width,
                height,
                bram_period,
                bram_offset,
                dsp_period,
                dsp_offset,
                io_ring,
                center_clock,
            } => Ok(device::columns(
                *width,
                *height,
                device::ColumnLayout {
                    bram_period: *bram_period,
                    bram_offset: *bram_offset,
                    dsp_period: *dsp_period,
                    dsp_offset: *dsp_offset,
                    io_ring: *io_ring,
                    center_clock: *center_clock,
                },
            )),
            DeviceSpec::Irregular {
                width,
                height,
                seed,
            } => Ok(device::irregular(*width, *height, *seed)),
            DeviceSpec::Art { art } => rrf_fabric::Fabric::from_art(art),
        }
    }
}

/// The partial region description: a device plus the reconfigurable bounds
/// and static-region masks (Fig. 4c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    pub device: DeviceSpec,
    /// Reconfigurable bounding box; `None` = whole device.
    #[serde(default)]
    pub bounds: Option<Rect>,
    /// Rectangles reserved for the static design.
    #[serde(default)]
    pub static_masks: Vec<Rect>,
}

impl RegionSpec {
    /// Materialize the region.
    pub fn build(&self) -> Result<rrf_fabric::Region, rrf_fabric::FabricError> {
        let fabric = self.device.build()?;
        let mut region = match self.bounds {
            Some(b) => rrf_fabric::Region::with_bounds(fabric, b)?,
            None => rrf_fabric::Region::whole(fabric),
        };
        for &mask in &self.static_masks {
            region.add_static_mask(mask);
        }
        Ok(region)
    }
}

/// One module: a name plus either pre-synthesized design alternatives or
/// a netlist the flow packs and lays out itself (the paper's "unplaced
/// and unrouted netlists" input, with the module height as the user's
/// bounding-box hint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleEntry {
    pub name: String,
    /// Explicit layouts. May be empty when `netlist` is given.
    #[serde(default)]
    pub shapes: Vec<ShapeDef>,
    /// Netlist source to pack and lay out instead of explicit shapes.
    #[serde(default)]
    pub netlist: Option<NetlistSource>,
}

/// A netlist module source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistSource {
    /// The netlist in `rrf-netlist`'s text format.
    pub text: String,
    /// Bounding-box height hint for the layout generator.
    pub height: i32,
    /// Design alternatives to derive (1–4).
    #[serde(default = "default_alternatives")]
    pub alternatives: usize,
}

fn default_alternatives() -> usize {
    4
}

/// Placer knobs exposed in the job file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacerSettings {
    /// Wall-clock budget in milliseconds (`None` = exact).
    #[serde(default)]
    pub time_limit_ms: Option<u64>,
    #[serde(default = "default_true")]
    pub warm_start: bool,
    #[serde(default = "default_true")]
    pub redundant_cumulative: bool,
    /// Portfolio workers; 0 or 1 = sequential.
    #[serde(default)]
    pub workers: usize,
    /// Strip dead/duplicate/dominated design alternatives before the
    /// solve (static analysis prune; never changes the optimal extent).
    #[serde(default = "default_true")]
    pub analyze_prune: bool,
}

fn default_true() -> bool {
    true
}

impl Default for PlacerSettings {
    fn default() -> PlacerSettings {
        PlacerSettings {
            time_limit_ms: Some(30_000),
            warm_start: true,
            redundant_cumulative: true,
            workers: 0,
            analyze_prune: true,
        }
    }
}

impl PlacerSettings {
    /// Convert to the core placer configuration.
    pub fn to_config(&self) -> rrf_core::PlacerConfig {
        rrf_core::PlacerConfig {
            time_limit: self.time_limit_ms.map(std::time::Duration::from_millis),
            fail_limit: None,
            warm_start: self.warm_start,
            redundant_cumulative: self.redundant_cumulative,
            strategy: if self.workers > 1 {
                rrf_core::SearchStrategy::Portfolio(self.workers)
            } else {
                rrf_core::SearchStrategy::Sequential
            },
            heuristic: rrf_core::Heuristic::InputOrderMin,
            analyze_prune: self.analyze_prune,
            stop: None,
            tracer: Default::default(),
        }
    }

    /// Like [`PlacerSettings::to_config`], but wired to an external stop
    /// flag so a caller (e.g. the placement server) can cancel the solve
    /// from another thread.
    pub fn to_config_with_stop(
        &self,
        stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    ) -> rrf_core::PlacerConfig {
        self.to_config().with_stop(stop)
    }
}

/// The full job description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    pub region: RegionSpec,
    pub modules: Vec<ModuleEntry>,
    #[serde(default)]
    pub placer: PlacerSettings,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrf_fabric::ResourceKind;
    use rrf_geost::ShiftedBox;

    #[test]
    fn device_specs_build() {
        assert_eq!(
            DeviceSpec::Homogeneous {
                width: 4,
                height: 3
            }
            .build()
            .unwrap()
            .count(ResourceKind::Clb),
            12
        );
        let art = DeviceSpec::Art {
            art: "cB\ncc".into(),
        }
        .build()
        .unwrap();
        assert_eq!(art.count(ResourceKind::Bram), 1);
        let irr = DeviceSpec::Irregular {
            width: 20,
            height: 10,
            seed: 3,
        }
        .build()
        .unwrap();
        assert!(irr.count(ResourceKind::Bram) > 0);
    }

    #[test]
    fn region_spec_applies_bounds_and_masks() {
        let spec = RegionSpec {
            device: DeviceSpec::Homogeneous {
                width: 8,
                height: 4,
            },
            bounds: Some(Rect::new(0, 0, 6, 4)),
            static_masks: vec![Rect::new(4, 0, 2, 4)],
        };
        let region = spec.build().unwrap();
        assert_eq!(region.placeable_count(), 16);
    }

    #[test]
    fn bad_art_is_error() {
        let spec = RegionSpec {
            device: DeviceSpec::Art { art: "c?".into() },
            bounds: None,
            static_masks: vec![],
        };
        assert!(spec.build().is_err());
    }

    #[test]
    fn settings_to_config() {
        let s = PlacerSettings {
            time_limit_ms: Some(500),
            workers: 4,
            ..PlacerSettings::default()
        };
        let c = s.to_config();
        assert_eq!(c.time_limit, Some(std::time::Duration::from_millis(500)));
        assert!(matches!(c.strategy, rrf_core::SearchStrategy::Portfolio(4)));
        let seq = PlacerSettings::default().to_config();
        assert!(matches!(seq.strategy, rrf_core::SearchStrategy::Sequential));
    }

    #[test]
    fn flow_spec_json_roundtrip() {
        let spec = FlowSpec {
            region: RegionSpec {
                device: DeviceSpec::Columns {
                    width: 40,
                    height: 16,
                    bram_period: 10,
                    bram_offset: 4,
                    dsp_period: 0,
                    dsp_offset: 0,
                    io_ring: 0,
                    center_clock: false,
                },
                bounds: None,
                static_masks: vec![],
            },
            modules: vec![ModuleEntry {
                name: "alu".into(),
                shapes: vec![ShapeDef::new(vec![ShiftedBox::new(
                    0,
                    0,
                    3,
                    2,
                    ResourceKind::Clb,
                )])],
                netlist: None,
            }],
            placer: PlacerSettings::default(),
        };
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: FlowSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn minimal_json_uses_defaults() {
        let json = r#"{
            "region": {"device": {"kind": "homogeneous", "width": 4, "height": 4}},
            "modules": []
        }"#;
        let spec: FlowSpec = serde_json::from_str(json).unwrap();
        assert!(spec.placer.warm_start);
        assert_eq!(spec.placer.workers, 0);
    }
}
