//! File-level helpers: specs and reports as JSON on disk.

use crate::report::FlowReport;
use crate::spec::FlowSpec;
use std::fs;
use std::io;
use std::path::Path;

/// Load a job description from a JSON file.
pub fn load_spec(path: &Path) -> io::Result<FlowSpec> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Save a job description as pretty JSON.
pub fn save_spec(path: &Path, spec: &FlowSpec) -> io::Result<()> {
    let text = serde_json::to_string_pretty(spec).map_err(io::Error::other)?;
    fs::write(path, text)
}

/// Save a flow report as pretty JSON.
pub fn save_report(path: &Path, report: &FlowReport) -> io::Result<()> {
    let text = serde_json::to_string_pretty(report).map_err(io::Error::other)?;
    fs::write(path, text)
}

/// Load a report back (round-trip for tooling).
pub fn load_report(path: &Path) -> io::Result<FlowReport> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DeviceSpec, PlacerSettings, RegionSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rrf-flow-io-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn spec_file_roundtrip() {
        let spec = FlowSpec {
            region: RegionSpec {
                device: DeviceSpec::Homogeneous {
                    width: 4,
                    height: 4,
                },
                bounds: None,
                static_masks: vec![],
            },
            modules: vec![],
            placer: PlacerSettings::default(),
        };
        let path = tmp("spec.json");
        save_spec(&path, &spec).unwrap();
        let back = load_spec(&path).unwrap();
        assert_eq!(back, spec);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn report_file_roundtrip() {
        let report = crate::driver::run(&FlowSpec {
            region: RegionSpec {
                device: DeviceSpec::Homogeneous {
                    width: 4,
                    height: 4,
                },
                bounds: None,
                static_masks: vec![],
            },
            modules: vec![],
            placer: PlacerSettings::default(),
        })
        .unwrap();
        let path = tmp("report.json");
        save_report(&path, &report).unwrap();
        let back = load_report(&path).unwrap();
        assert_eq!(back.feasible, report.feasible);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn malformed_spec_is_invalid_data() {
        let path = tmp("bad.json");
        fs::write(&path, "{not json").unwrap();
        let err = load_spec(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_not_found() {
        let err = load_spec(Path::new("/nonexistent/rrf.json")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
