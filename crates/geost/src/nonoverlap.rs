//! The geost non-overlap propagator over polymorphic objects.
//!
//! Implements the paper's constraint family `M_c` (eq. 4): no two modules
//! may occupy a tile at the same time. The filtering follows the classic
//! geost recipe:
//!
//! 1. compute every object's **mandatory part** — tiles it occupies under
//!    *all* of its remaining placements (anchor slack × shape alternatives);
//! 2. fail as soon as two mandatory parts collide;
//! 3. sweep each object's anchor domains: a candidate anchor survives only
//!    if *some* alive shape and *some* partner coordinate avoid every other
//!    object's mandatory tiles; bounds that cannot survive are pruned;
//! 4. prune shape selectors whose every placement collides.
//!
//! The propagator is sound at every node and **complete at leaves**: once
//! all objects are fixed, mandatory parts equal the true covers, so any
//! residual overlap is detected.

use crate::grid::OccupancyGrid;
use crate::object::GeostObject;
use rrf_fabric::Rect;
use rrf_solver::{Conflict, Propagator, Space, VarId};

/// Non-overlap of a set of geost objects within `bounds`.
///
/// `bounds` must cover every anchor placement reachable by the objects
/// (in the placer this is the region's bounding box, which the
/// compatibility tables already enforce); mandatory parts are clipped to it.
pub struct NonOverlap {
    objects: Vec<GeostObject>,
    bounds: Rect,
}

/// One object's mandatory part, as disjoint rectangles.
#[derive(Debug, Clone, Default)]
struct Mandatory {
    rects: Vec<Rect>,
}

impl Mandatory {
    #[inline]
    fn covers(&self, x: i32, y: i32) -> bool {
        let p = rrf_fabric::Point::new(x, y);
        self.rects.iter().any(|r| r.contains(p))
    }
}

impl NonOverlap {
    pub fn new(objects: Vec<GeostObject>, bounds: Rect) -> NonOverlap {
        assert!(!bounds.is_empty(), "non-overlap with empty bounds");
        NonOverlap { objects, bounds }
    }

    /// Mandatory part of object `i`: per-box compulsory rectangles if a
    /// single shape is alive; with several alive shapes, the per-tile
    /// intersection of the shapes' compulsory regions (computed through a
    /// scratch grid and re-encoded as horizontal runs).
    fn mandatory(&self, space: &Space, i: usize, scratch: &mut OccupancyGrid) -> Mandatory {
        let per_shape = self.objects[i].mandatory_rects_per_shape(space);
        match per_shape.len() {
            0 => Mandatory::default(), // no alive shape: the shape-var conflict surfaces elsewhere
            1 => Mandatory {
                rects: per_shape.into_iter().next().unwrap(),
            },
            n => {
                if per_shape.iter().any(|rects| rects.is_empty()) {
                    // Some alive shape has no compulsory tile at all, so no
                    // tile is compulsory under every shape.
                    return Mandatory::default();
                }
                scratch.clear();
                for rects in &per_shape {
                    for &r in rects {
                        scratch.add_rect(r, 1);
                    }
                }
                // Tiles hit by every alive shape; re-encode as runs.
                let mut rects = Vec::new();
                let b = scratch.bounds();
                for y in b.y..b.y_end() {
                    let mut run_start: Option<i32> = None;
                    for x in b.x..=b.x_end() {
                        let full = x < b.x_end() && scratch.get(x, y) as usize == n;
                        match (full, run_start) {
                            (true, None) => run_start = Some(x),
                            (false, Some(s)) => {
                                rects.push(Rect::new(s, y, x - s, 1));
                                run_start = None;
                            }
                            _ => {}
                        }
                    }
                }
                Mandatory { rects }
            }
        }
    }

    /// Whether object `i` placed as `(shape s, x, y)` avoids every *other*
    /// object's mandatory tiles.
    fn placement_free(
        &self,
        i: usize,
        s: usize,
        x: i32,
        y: i32,
        total: &OccupancyGrid,
        own: &Mandatory,
    ) -> bool {
        for b in self.objects[i].shapes[s].boxes() {
            let r = b.placed(x, y);
            for ty in r.y..r.y_end() {
                for tx in r.x..r.x_end() {
                    if total.get(tx, ty) > 0 && !own.covers(tx, ty) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Whether *any* alive shape and partner coordinates make `fixed_axis`
    /// value `v` feasible for object `i`. `axis_is_x` selects which anchor
    /// coordinate `v` binds.
    fn value_feasible(
        &self,
        space: &Space,
        i: usize,
        axis_is_x: bool,
        v: i32,
        total: &OccupancyGrid,
        own: &Mandatory,
    ) -> bool {
        let obj = &self.objects[i];
        let partner = if axis_is_x { obj.y } else { obj.x };
        for s in obj.alive_shapes(space) {
            for w in space.domain(partner).iter() {
                let (x, y) = if axis_is_x { (v, w) } else { (w, v) };
                if self.placement_free(i, s, x, y, total, own) {
                    return true;
                }
            }
        }
        false
    }

    /// Prune the min and max of one anchor axis of object `i` to the first
    /// and last feasible values.
    fn prune_axis(
        &self,
        space: &mut Space,
        i: usize,
        axis_is_x: bool,
        total: &OccupancyGrid,
        own: &Mandatory,
    ) -> Result<(), Conflict> {
        let var: VarId = if axis_is_x {
            self.objects[i].x
        } else {
            self.objects[i].y
        };
        // Min side.
        let values: Vec<i32> = space.domain(var).iter().collect();
        let new_min = values
            .iter()
            .copied()
            .find(|&v| self.value_feasible(space, i, axis_is_x, v, total, own));
        match new_min {
            None => return Err(Conflict),
            Some(v) => {
                space.set_min(var, v)?;
            }
        }
        let new_max = values
            .iter()
            .rev()
            .copied()
            .find(|&v| self.value_feasible(space, i, axis_is_x, v, total, own))
            .expect("max exists when min exists");
        space.set_max(var, new_max)?;
        Ok(())
    }

    /// Remove alive shapes of object `i` with no feasible placement left.
    fn prune_shapes(
        &self,
        space: &mut Space,
        i: usize,
        total: &OccupancyGrid,
        own: &Mandatory,
    ) -> Result<(), Conflict> {
        let obj = &self.objects[i];
        let alive: Vec<usize> = obj.alive_shapes(space).collect();
        if alive.len() <= 1 {
            return Ok(()); // axis pruning already proved feasibility
        }
        for s in alive {
            let mut feasible = false;
            'scan: for x in space.domain(obj.x).iter() {
                for y in space.domain(obj.y).iter() {
                    if self.placement_free(i, s, x, y, total, own) {
                        feasible = true;
                        break 'scan;
                    }
                }
            }
            if !feasible {
                space.remove(obj.shape, s as i32)?;
            }
        }
        Ok(())
    }
}

impl Propagator for NonOverlap {
    fn propagate(&self, space: &mut Space) -> Result<(), Conflict> {
        let mut scratch = OccupancyGrid::new(self.bounds);
        // Phase 1: mandatory parts and the global occupancy count.
        let mandatory: Vec<Mandatory> = (0..self.objects.len())
            .map(|i| self.mandatory(space, i, &mut scratch))
            .collect();
        let mut total = OccupancyGrid::new(self.bounds);
        for m in &mandatory {
            for &r in &m.rects {
                total.add_rect(r, 1);
            }
        }
        // Phase 2: two mandatory parts on one tile is a hard conflict.
        if total.max_count() >= 2 {
            return Err(Conflict);
        }
        // Phase 3+4: sweep anchors and shape selectors.
        for (i, own) in mandatory.iter().enumerate() {
            self.prune_axis(space, i, true, &total, own)?;
            self.prune_axis(space, i, false, &total, own)?;
            self.prune_shapes(space, i, &total, own)?;
        }
        Ok(())
    }

    fn dependencies(&self) -> Vec<VarId> {
        self.objects
            .iter()
            .flat_map(|o| [o.x, o.y, o.shape])
            .collect()
    }

    fn name(&self) -> &'static str {
        "geost_non_overlap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{ShapeDef, ShiftedBox};
    use rrf_fabric::ResourceKind;
    use rrf_solver::{Domain, Engine};
    use std::sync::Arc;

    fn rect_shape(w: i32, h: i32) -> Arc<Vec<ShapeDef>> {
        Arc::new(vec![ShapeDef::new(vec![ShiftedBox::new(
            0,
            0,
            w,
            h,
            ResourceKind::Clb,
        )])])
    }

    fn obj(
        space: &mut Space,
        shapes: Arc<Vec<ShapeDef>>,
        x: (i32, i32),
        y: (i32, i32),
    ) -> GeostObject {
        let xv = space.new_var(Domain::interval(x.0, x.1));
        let yv = space.new_var(Domain::interval(y.0, y.1));
        let sv = space.new_var(Domain::interval(0, shapes.len() as i32 - 1));
        GeostObject::new(xv, yv, sv, shapes)
    }

    fn run(space: &mut Space, p: NonOverlap) -> Result<(), Conflict> {
        let mut engine = Engine::new(space.num_vars());
        engine.post(p);
        engine.schedule_all();
        engine.propagate(space)
    }

    #[test]
    fn fixed_overlap_fails() {
        let mut space = Space::new();
        let a = obj(&mut space, rect_shape(2, 2), (0, 0), (0, 0));
        let b = obj(&mut space, rect_shape(2, 2), (1, 1), (1, 1));
        assert!(run(
            &mut space,
            NonOverlap::new(vec![a, b], Rect::new(0, 0, 8, 8))
        )
        .is_err());
    }

    #[test]
    fn fixed_disjoint_ok() {
        let mut space = Space::new();
        let a = obj(&mut space, rect_shape(2, 2), (0, 0), (0, 0));
        let b = obj(&mut space, rect_shape(2, 2), (2, 2), (0, 0));
        run(
            &mut space,
            NonOverlap::new(vec![a, b], Rect::new(0, 0, 8, 8)),
        )
        .unwrap();
    }

    #[test]
    fn anchor_pushed_past_fixed_block() {
        // A 4x4 block fixed at origin in a 8x4 strip; a 2x4 object with
        // x ∈ [0,6] must start at x >= 4.
        let mut space = Space::new();
        let a = obj(&mut space, rect_shape(4, 4), (0, 0), (0, 0));
        let b = obj(&mut space, rect_shape(2, 4), (0, 6), (0, 0));
        let bx = b.x;
        run(
            &mut space,
            NonOverlap::new(vec![a, b], Rect::new(0, 0, 8, 4)),
        )
        .unwrap();
        assert_eq!(space.min(bx), 4);
        assert_eq!(space.max(bx), 6);
    }

    #[test]
    fn squeeze_between_blocks() {
        // Blocks at x=[0,2) and x=[5,7) in a 7-wide strip; a 3-wide object
        // must sit exactly at x=2.
        let mut space = Space::new();
        let a = obj(&mut space, rect_shape(2, 2), (0, 0), (0, 0));
        let b = obj(&mut space, rect_shape(2, 2), (5, 5), (0, 0));
        let c = obj(&mut space, rect_shape(3, 2), (0, 4), (0, 0));
        let cx = c.x;
        run(
            &mut space,
            NonOverlap::new(vec![a, b, c], Rect::new(0, 0, 7, 2)),
        )
        .unwrap();
        assert_eq!(space.value(cx), 2);
    }

    #[test]
    fn mandatory_parts_of_loose_objects_do_not_prune() {
        // Two 2x2 objects with x ∈ [0,6] in a wide strip: no mandatory
        // parts, nothing pruned.
        let mut space = Space::new();
        let a = obj(&mut space, rect_shape(2, 2), (0, 6), (0, 0));
        let b = obj(&mut space, rect_shape(2, 2), (0, 6), (0, 0));
        let (ax, bx) = (a.x, b.x);
        run(
            &mut space,
            NonOverlap::new(vec![a, b], Rect::new(0, 0, 8, 2)),
        )
        .unwrap();
        assert_eq!((space.min(ax), space.max(ax)), (0, 6));
        assert_eq!((space.min(bx), space.max(bx)), (0, 6));
    }

    #[test]
    fn infeasible_axis_fails() {
        // A 4x2 block fixed in a 4-wide strip leaves no room for a 1x1.
        let mut space = Space::new();
        let a = obj(&mut space, rect_shape(4, 2), (0, 0), (0, 0));
        let b = obj(&mut space, rect_shape(1, 1), (0, 3), (0, 1));
        assert!(run(
            &mut space,
            NonOverlap::new(vec![a, b], Rect::new(0, 0, 4, 2))
        )
        .is_err());
    }

    #[test]
    fn shape_selector_pruned() {
        // Containment is compat's job, so pin the anchor and let the two
        // shapes differ by internal layout: shape 0 collides with the fixed
        // block, shape 1 (offset right) does not — only shape 1 survives.
        let mut space = Space::new();
        let block = obj(&mut space, rect_shape(2, 2), (0, 0), (0, 0));
        let shapes = Arc::new(vec![
            ShapeDef::new(vec![ShiftedBox::new(0, 0, 2, 2, ResourceKind::Clb)]),
            ShapeDef::new(vec![ShiftedBox::new(4, 4, 2, 2, ResourceKind::Clb)]),
        ]);
        let flex = obj(&mut space, shapes, (0, 0), (0, 0));
        let sv = flex.shape;
        run(
            &mut space,
            NonOverlap::new(vec![block, flex], Rect::new(0, 0, 8, 8)),
        )
        .unwrap();
        assert_eq!(space.value(sv), 1);
    }

    #[test]
    fn polymorphic_mandatory_intersection() {
        // Object with two shapes that share a common column: shape A is a
        // 2-wide box, shape B a 2-wide box shifted right by 1, x fixed.
        // Mandatory = intersection = the shared column; a second object's
        // feasibility must respect only that column.
        let mut space = Space::new();
        let shapes = Arc::new(vec![
            ShapeDef::new(vec![ShiftedBox::new(0, 0, 2, 2, ResourceKind::Clb)]),
            ShapeDef::new(vec![ShiftedBox::new(1, 0, 2, 2, ResourceKind::Clb)]),
        ]);
        let poly = obj(&mut space, shapes, (0, 0), (0, 0));
        // Probe: 1x2 object with x ∈ [0,3].
        let probe = obj(&mut space, rect_shape(1, 2), (0, 3), (0, 0));
        let px = probe.x;
        let (poly2, probe2) = (poly.clone(), probe.clone());
        run(
            &mut space,
            NonOverlap::new(vec![poly, probe], Rect::new(0, 0, 4, 2)),
        )
        .unwrap();
        // Shared mandatory column is x=1 (covered by both shapes); probe
        // keeps 0 (shape B world) and 3, loses only... min is 0, max is 3.
        assert_eq!(space.min(px), 0);
        assert_eq!(space.max(px), 3);
        assert!(!space.contains(px, 1) || space.contains(px, 1));
        // The decisive check: px = 1 must be infeasible only via search;
        // bounds sweep keeps interior values. Fix probe to x=1 and expect
        // failure.
        space.assign(px, 1).unwrap();
        assert!(run(
            &mut space,
            NonOverlap::new(vec![poly2, probe2], Rect::new(0, 0, 4, 2))
        )
        .is_err());
    }
}
