//! Polymorphic geost objects: an anchor position plus a shape selector.

use crate::shape::ShapeDef;
use rrf_solver::{Space, VarId};
use std::sync::Arc;

/// A geost object: `shape ∈ [0, shapes.len())` selects the design
/// alternative, `(x, y)` is the anchor. The shape list is shared immutably
/// (propagators must stay stateless; see `rrf-solver`).
#[derive(Clone)]
pub struct GeostObject {
    pub x: VarId,
    pub y: VarId,
    pub shape: VarId,
    pub shapes: Arc<Vec<ShapeDef>>,
}

impl GeostObject {
    pub fn new(x: VarId, y: VarId, shape: VarId, shapes: Arc<Vec<ShapeDef>>) -> GeostObject {
        assert!(!shapes.is_empty(), "object with no shapes");
        GeostObject {
            x,
            y,
            shape,
            shapes,
        }
    }

    /// Shape indices still in the selector's domain.
    pub fn alive_shapes<'a>(&'a self, space: &'a Space) -> impl Iterator<Item = usize> + 'a {
        space
            .domain(self.shape)
            .iter()
            .filter_map(|s| usize::try_from(s).ok())
            .filter(|&s| s < self.shapes.len())
    }

    /// The *mandatory rectangles* of this object: rectangles certainly
    /// occupied by the object whatever placement it ends up taking, derived
    /// per shifted box as the classic compulsory part
    /// `[x_max + dx, x_min + dx + w) × [y_max + dy, y_min + dy + h)` and
    /// kept only if occupied under **every** alive shape.
    ///
    /// This is a sound under-approximation of the true mandatory region:
    /// with several alive shapes we only keep box parts that are mandatory
    /// in *all* of them (computed per-tile by the caller's grid); here we
    /// return the per-shape mandatory rectangle lists for the caller to
    /// intersect.
    pub fn mandatory_rects_per_shape(&self, space: &Space) -> Vec<Vec<rrf_fabric::Rect>> {
        let x_min = space.min(self.x);
        let x_max = space.max(self.x);
        let y_min = space.min(self.y);
        let y_max = space.max(self.y);
        self.alive_shapes(space)
            .map(|s| {
                self.shapes[s]
                    .boxes()
                    .iter()
                    .filter_map(|b| {
                        let lo_x = x_max + b.dx;
                        let hi_x = x_min + b.dx + b.w; // exclusive
                        let lo_y = y_max + b.dy;
                        let hi_y = y_min + b.dy + b.h;
                        if lo_x < hi_x && lo_y < hi_y {
                            Some(rrf_fabric::Rect::new(lo_x, lo_y, hi_x - lo_x, hi_y - lo_y))
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::ShiftedBox;
    use rrf_fabric::{Rect, ResourceKind};
    use rrf_solver::Domain;

    fn simple_object(space: &mut Space, x_rng: (i32, i32), y_rng: (i32, i32)) -> GeostObject {
        let x = space.new_var(Domain::interval(x_rng.0, x_rng.1));
        let y = space.new_var(Domain::interval(y_rng.0, y_rng.1));
        let shape = space.new_var(Domain::singleton(0));
        let shapes = Arc::new(vec![ShapeDef::new(vec![ShiftedBox::new(
            0,
            0,
            3,
            2,
            ResourceKind::Clb,
        )])]);
        GeostObject::new(x, y, shape, shapes)
    }

    #[test]
    fn alive_shapes_tracks_domain() {
        let mut space = Space::new();
        let x = space.new_var(Domain::singleton(0));
        let y = space.new_var(Domain::singleton(0));
        let shape = space.new_var(Domain::interval(0, 2));
        let shapes = Arc::new(vec![
            ShapeDef::new(vec![ShiftedBox::new(
                0,
                0,
                1,
                1,
                ResourceKind::Clb
            )]);
            3
        ]);
        let obj = GeostObject::new(x, y, shape, shapes);
        assert_eq!(obj.alive_shapes(&space).collect::<Vec<_>>(), vec![0, 1, 2]);
        space.remove(shape, 1).unwrap();
        assert_eq!(obj.alive_shapes(&space).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn mandatory_part_of_fixed_object_is_full_cover() {
        let mut space = Space::new();
        let obj = simple_object(&mut space, (2, 2), (5, 5));
        let rects = obj.mandatory_rects_per_shape(&space);
        assert_eq!(rects, vec![vec![Rect::new(2, 5, 3, 2)]]);
    }

    #[test]
    fn mandatory_part_shrinks_with_slack() {
        let mut space = Space::new();
        // x ∈ [0,2], box width 3 → mandatory x-range [2, 3) (1 column).
        let obj = simple_object(&mut space, (0, 2), (0, 0));
        let rects = obj.mandatory_rects_per_shape(&space);
        assert_eq!(rects, vec![vec![Rect::new(2, 0, 1, 2)]]);
    }

    #[test]
    fn mandatory_part_vanishes_with_large_slack() {
        let mut space = Space::new();
        // x slack ≥ width → no mandatory part.
        let obj = simple_object(&mut space, (0, 3), (0, 0));
        let rects = obj.mandatory_rects_per_shape(&space);
        assert_eq!(rects, vec![Vec::<Rect>::new()]);
    }
}
