//! A small counting occupancy grid used by the non-overlap sweep.

use rrf_fabric::Rect;

/// Per-tile occupation counts over a fixed extent. Counts (rather than
/// bits) let the sweep subtract one object's own mandatory contribution
/// when testing its candidate placements against "everyone else".
#[derive(Debug, Clone)]
pub struct OccupancyGrid {
    bounds: Rect,
    counts: Vec<u16>,
}

impl OccupancyGrid {
    /// An all-zero grid covering `bounds`.
    pub fn new(bounds: Rect) -> OccupancyGrid {
        assert!(!bounds.is_empty(), "empty occupancy grid");
        OccupancyGrid {
            bounds,
            counts: vec![0; (bounds.w as usize) * (bounds.h as usize)],
        }
    }

    #[inline]
    fn idx(&self, x: i32, y: i32) -> Option<usize> {
        if x < self.bounds.x
            || x >= self.bounds.x_end()
            || y < self.bounds.y
            || y >= self.bounds.y_end()
        {
            return None;
        }
        Some(((y - self.bounds.y) as usize) * self.bounds.w as usize + (x - self.bounds.x) as usize)
    }

    /// The covered extent.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Occupation count at `(x, y)`; tiles outside the grid count as 0.
    #[inline]
    pub fn get(&self, x: i32, y: i32) -> u16 {
        self.idx(x, y).map_or(0, |i| self.counts[i])
    }

    /// Add `delta` to every tile of `rect` (clipped to the grid).
    pub fn add_rect(&mut self, rect: Rect, delta: i16) {
        let Some(clipped) = rect.intersection(&self.bounds) else {
            return;
        };
        for y in clipped.y..clipped.y_end() {
            let row = ((y - self.bounds.y) as usize) * self.bounds.w as usize;
            for x in clipped.x..clipped.x_end() {
                let i = row + (x - self.bounds.x) as usize;
                self.counts[i] = (self.counts[i] as i32 + delta as i32)
                    .try_into()
                    .expect("occupancy count under/overflow");
            }
        }
    }

    /// Largest count anywhere.
    pub fn max_count(&self) -> u16 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Reset all counts to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    /// FNV-1a digest over the bounds and every per-tile count — a cheap
    /// fingerprint for "bit-identical occupancy" assertions (crash-recovery
    /// tests compare grids across process restarts by this digest).
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut mix = |v: i64| {
            for b in v.to_le_bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(PRIME);
            }
        };
        mix(self.bounds.x as i64);
        mix(self.bounds.y as i64);
        mix(self.bounds.w as i64);
        mix(self.bounds.h as i64);
        for &c in &self.counts {
            mix(c as i64);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut g = OccupancyGrid::new(Rect::new(0, 0, 4, 4));
        g.add_rect(Rect::new(1, 1, 2, 2), 1);
        g.add_rect(Rect::new(2, 2, 2, 2), 1);
        assert_eq!(g.get(1, 1), 1);
        assert_eq!(g.get(2, 2), 2);
        assert_eq!(g.get(3, 3), 1);
        assert_eq!(g.get(0, 0), 0);
        assert_eq!(g.max_count(), 2);
    }

    #[test]
    fn outside_reads_zero_and_writes_clip() {
        let mut g = OccupancyGrid::new(Rect::new(0, 0, 2, 2));
        g.add_rect(Rect::new(-5, -5, 20, 20), 1);
        assert_eq!(g.get(0, 0), 1);
        assert_eq!(g.get(1, 1), 1);
        assert_eq!(g.get(5, 5), 0);
        assert_eq!(g.get(-1, 0), 0);
    }

    #[test]
    fn negative_delta_and_clear() {
        let mut g = OccupancyGrid::new(Rect::new(0, 0, 3, 3));
        g.add_rect(Rect::new(0, 0, 3, 3), 2);
        g.add_rect(Rect::new(0, 0, 1, 1), -2);
        assert_eq!(g.get(0, 0), 0);
        assert_eq!(g.get(1, 1), 2);
        g.clear();
        assert_eq!(g.max_count(), 0);
    }

    #[test]
    fn offset_bounds() {
        let mut g = OccupancyGrid::new(Rect::new(10, 20, 2, 2));
        g.add_rect(Rect::new(10, 20, 1, 1), 1);
        assert_eq!(g.get(10, 20), 1);
        assert_eq!(g.get(0, 0), 0);
    }

    #[test]
    fn digest_tracks_content_not_history() {
        let mut a = OccupancyGrid::new(Rect::new(0, 0, 4, 4));
        let mut b = OccupancyGrid::new(Rect::new(0, 0, 4, 4));
        a.add_rect(Rect::new(0, 0, 2, 2), 1);
        b.add_rect(Rect::new(0, 0, 2, 2), 2);
        b.add_rect(Rect::new(0, 0, 2, 2), -1);
        assert_eq!(a.digest(), b.digest(), "same counts, same digest");
        b.add_rect(Rect::new(3, 3, 1, 1), 1);
        assert_ne!(a.digest(), b.digest());
        // Same counts over different bounds must not collide trivially.
        let c = OccupancyGrid::new(Rect::new(1, 0, 4, 4));
        let d = OccupancyGrid::new(Rect::new(0, 0, 4, 4));
        assert_ne!(c.digest(), d.digest());
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut g = OccupancyGrid::new(Rect::new(0, 0, 2, 2));
        g.add_rect(Rect::new(0, 0, 1, 1), -1);
    }
}
