//! # rrf-geost — a geometric constraint kernel with resource properties
//!
//! The paper implements its placer "based on the geost constraint kernel by
//! N. Beldiceanu et al." (§IV): objects are finite sets of *shapes*, shapes
//! are sets of *shifted boxes*, and a sweep-based propagator keeps objects
//! from overlapping. The original kernel is purely geometric; the paper
//! extends it in two ways, both implemented here:
//!
//! 1. **boxes carry a resource property** ([`shape::ShiftedBox::resource`]),
//! 2. **forbidden regions carry a resource property** — realized by
//!    [`compat`], which turns a heterogeneous fabric region into the set of
//!    anchor positions where every box of a shape lands on matching
//!    resources (the fabric's non-matching tiles act as resource-typed
//!    forbidden regions for that box).
//!
//! [`nonoverlap::NonOverlap`] is the geometric core: a propagator over
//! polymorphic objects (shape variable + anchor variables) that prunes
//! anchor bounds against the *mandatory parts* of all other objects and
//! fails as soon as two mandatory parts collide.

#![forbid(unsafe_code)]

pub mod compat;
pub mod grid;
pub mod nonoverlap;
pub mod object;
pub mod shape;

pub use compat::{
    allowed_anchors, anchor_rows, canonical_tiles, classify_shapes, first_anchor,
    post_placement_table, ShapeFate,
};
pub use grid::OccupancyGrid;
pub use nonoverlap::NonOverlap;
pub use object::GeostObject;
pub use shape::{ShapeDef, ShiftedBox};
