//! Shapes as sets of resource-typed shifted boxes.
//!
//! geost defines a shape as a set of boxes, each with an offset from the
//! object's anchor and a size. Our boxes additionally carry the resource
//! kind their tiles require — extension (1) of the paper.

use rrf_fabric::{Point, Rect, ResourceKind};
use serde::{Deserialize, Serialize};

/// A box of `w × h` tiles of a single resource kind, offset `(dx, dy)` from
/// the shape's anchor (the anchor is the shape's local origin; offsets are
/// non-negative by convention but not by requirement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShiftedBox {
    pub dx: i32,
    pub dy: i32,
    pub w: i32,
    pub h: i32,
    pub resource: ResourceKind,
}

impl ShiftedBox {
    pub fn new(dx: i32, dy: i32, w: i32, h: i32, resource: ResourceKind) -> ShiftedBox {
        assert!(w > 0 && h > 0, "degenerate shifted box {w}x{h}");
        ShiftedBox {
            dx,
            dy,
            w,
            h,
            resource,
        }
    }

    /// The box's rectangle when the anchor sits at `(x, y)`.
    #[inline]
    pub fn placed(&self, x: i32, y: i32) -> Rect {
        Rect::new(x + self.dx, y + self.dy, self.w, self.h)
    }

    /// The box's rectangle relative to the anchor.
    #[inline]
    pub fn local(&self) -> Rect {
        Rect::new(self.dx, self.dy, self.w, self.h)
    }

    /// Tile count.
    #[inline]
    pub fn area(&self) -> i64 {
        self.w as i64 * self.h as i64
    }
}

/// One layout of a module: a non-empty set of shifted boxes. The paper's
/// *shape* (a set of tilesets); a module is then a set of `ShapeDef`s — its
/// design alternatives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeDef {
    boxes: Vec<ShiftedBox>,
}

impl ShapeDef {
    /// Build from boxes. Panics on an empty box set (the paper requires
    /// shapes to be non-empty) or on internally overlapping boxes, which
    /// would double-count area.
    pub fn new(boxes: Vec<ShiftedBox>) -> ShapeDef {
        assert!(!boxes.is_empty(), "shape with no boxes");
        for (i, a) in boxes.iter().enumerate() {
            for b in &boxes[i + 1..] {
                assert!(
                    !a.local().intersects(&b.local()),
                    "overlapping boxes within one shape: {:?} vs {:?}",
                    a,
                    b
                );
            }
        }
        ShapeDef { boxes }
    }

    /// Build a shape from unit tiles, greedily merged into maximal boxes:
    /// first horizontal runs per row and resource kind, then vertical
    /// stacking of equal runs. The result covers exactly the input tiles.
    ///
    /// Duplicated tiles are an error (a tile cannot carry two kinds).
    pub fn from_tiles(tiles: &[(Point, ResourceKind)]) -> ShapeDef {
        assert!(!tiles.is_empty(), "shape with no tiles");
        let mut sorted: Vec<(Point, ResourceKind)> = tiles.to_vec();
        sorted.sort_by_key(|(p, _)| (p.y, p.x));
        for w in sorted.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate tile {} in shape", w[0].0);
        }
        // Horizontal runs per row.
        #[derive(Clone, Copy, PartialEq)]
        struct Run {
            x: i32,
            y: i32,
            w: i32,
            kind: ResourceKind,
        }
        let mut runs: Vec<Run> = Vec::new();
        for &(p, kind) in &sorted {
            match runs.last_mut() {
                Some(run) if run.y == p.y && run.kind == kind && run.x + run.w == p.x => {
                    run.w += 1;
                }
                _ => runs.push(Run {
                    x: p.x,
                    y: p.y,
                    w: 1,
                    kind,
                }),
            }
        }
        // Vertical merge of identical runs on consecutive rows.
        let mut boxes: Vec<ShiftedBox> = Vec::new();
        let mut consumed = vec![false; runs.len()];
        for i in 0..runs.len() {
            if consumed[i] {
                continue;
            }
            let base = runs[i];
            let mut h = 1;
            'grow: loop {
                let want_y = base.y + h;
                for (j, other) in runs.iter().enumerate() {
                    if !consumed[j]
                        && other.y == want_y
                        && other.x == base.x
                        && other.w == base.w
                        && other.kind == base.kind
                    {
                        consumed[j] = true;
                        h += 1;
                        continue 'grow;
                    }
                }
                break;
            }
            boxes.push(ShiftedBox::new(base.x, base.y, base.w, h, base.kind));
        }
        ShapeDef::new(boxes)
    }

    pub fn boxes(&self) -> &[ShiftedBox] {
        &self.boxes
    }

    /// Total tile count.
    pub fn area(&self) -> i64 {
        self.boxes.iter().map(ShiftedBox::area).sum()
    }

    /// Tight bounding box in anchor-relative coordinates.
    pub fn bounding_box(&self) -> Rect {
        let mut bb = self.boxes[0].local();
        for b in &self.boxes[1..] {
            bb = bb.union_bbox(&b.local());
        }
        bb
    }

    /// Width/height of the bounding box.
    pub fn width(&self) -> i32 {
        self.bounding_box().w
    }

    pub fn height(&self) -> i32 {
        self.bounding_box().h
    }

    /// Iterate all `(tile, kind)` pairs relative to the anchor.
    pub fn tiles(&self) -> impl Iterator<Item = (Point, ResourceKind)> + '_ {
        self.boxes
            .iter()
            .flat_map(|b| b.local().tiles().map(move |p| (p, b.resource)))
    }

    /// Iterate all tiles when the anchor sits at `(x, y)`.
    pub fn tiles_at(&self, x: i32, y: i32) -> impl Iterator<Item = (Point, ResourceKind)> + '_ {
        self.tiles().map(move |(p, k)| (p.offset(x, y), k))
    }

    /// Tile count per resource kind, as a multiset fingerprint. Two design
    /// alternatives of the same module typically (not necessarily) share
    /// this fingerprint.
    pub fn resource_multiset(&self) -> [i64; 6] {
        let mut counts = [0i64; 6];
        for b in &self.boxes {
            counts[b.resource.index()] += b.area();
        }
        counts
    }

    /// The shape rotated 180° about its bounding-box center — the paper's
    /// canonical design alternative ("the second layout is a 180 degree
    /// rotation of the first"). The rotated shape is re-anchored so its
    /// bounding box again starts at the anchor.
    pub fn rotated_180(&self) -> ShapeDef {
        let bb = self.bounding_box();
        let boxes = self
            .boxes
            .iter()
            .map(|b| {
                // Rotate the box rect: its far corner maps to the new
                // origin corner.
                let new_dx = (bb.x_end() - (b.dx + b.w)) + bb.x;
                let new_dy = (bb.y_end() - (b.dy + b.h)) + bb.y;
                ShiftedBox::new(new_dx, new_dy, b.w, b.h, b.resource)
            })
            .collect();
        ShapeDef::new(boxes)
    }

    /// The shape mirrored across the x=y diagonal (every box's offset and
    /// size swap coordinates).
    pub fn transposed(&self) -> ShapeDef {
        ShapeDef::new(
            self.boxes
                .iter()
                .map(|b| ShiftedBox::new(b.dy, b.dx, b.h, b.w, b.resource))
                .collect(),
        )
    }

    /// Translate all boxes so the bounding box origin is `(0, 0)` —
    /// normalization used by generators and the verifier.
    pub fn normalized(&self) -> ShapeDef {
        let bb = self.bounding_box();
        if bb.x == 0 && bb.y == 0 {
            return self.clone();
        }
        ShapeDef::new(
            self.boxes
                .iter()
                .map(|b| ShiftedBox::new(b.dx - bb.x, b.dy - bb.y, b.w, b.h, b.resource))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clb() -> ResourceKind {
        ResourceKind::Clb
    }

    #[test]
    fn box_placement() {
        let b = ShiftedBox::new(1, 2, 3, 4, clb());
        assert_eq!(b.placed(10, 20), Rect::new(11, 22, 3, 4));
        assert_eq!(b.local(), Rect::new(1, 2, 3, 4));
        assert_eq!(b.area(), 12);
    }

    #[test]
    #[should_panic]
    fn degenerate_box_panics() {
        let _ = ShiftedBox::new(0, 0, 0, 3, clb());
    }

    #[test]
    #[should_panic]
    fn overlapping_boxes_panic() {
        let _ = ShapeDef::new(vec![
            ShiftedBox::new(0, 0, 2, 2, clb()),
            ShiftedBox::new(1, 1, 2, 2, clb()),
        ]);
    }

    #[test]
    fn shape_metrics() {
        // L-shape: 3x1 bottom bar + 1x2 left column above it.
        let s = ShapeDef::new(vec![
            ShiftedBox::new(0, 0, 3, 1, clb()),
            ShiftedBox::new(0, 1, 1, 2, ResourceKind::Bram),
        ]);
        assert_eq!(s.area(), 5);
        assert_eq!(s.bounding_box(), Rect::new(0, 0, 3, 3));
        assert_eq!(s.width(), 3);
        assert_eq!(s.height(), 3);
        let ms = s.resource_multiset();
        assert_eq!(ms[ResourceKind::Clb.index()], 3);
        assert_eq!(ms[ResourceKind::Bram.index()], 2);
    }

    #[test]
    fn from_tiles_rectangle() {
        let tiles: Vec<(Point, ResourceKind)> =
            Rect::new(0, 0, 3, 2).tiles().map(|p| (p, clb())).collect();
        let s = ShapeDef::from_tiles(&tiles);
        assert_eq!(s.boxes().len(), 1);
        assert_eq!(s.boxes()[0], ShiftedBox::new(0, 0, 3, 2, clb()));
    }

    #[test]
    fn from_tiles_mixed_kinds() {
        // ccB / ccB — CLB 2x2 box plus BRAM 1x2 box.
        let mut tiles = Vec::new();
        for y in 0..2 {
            for x in 0..2 {
                tiles.push((Point::new(x, y), clb()));
            }
            tiles.push((Point::new(2, y), ResourceKind::Bram));
        }
        let s = ShapeDef::from_tiles(&tiles);
        assert_eq!(s.boxes().len(), 2);
        assert_eq!(s.area(), 6);
        let covered: std::collections::BTreeSet<(i32, i32)> =
            s.tiles().map(|(p, _)| (p.x, p.y)).collect();
        assert_eq!(covered.len(), 6);
    }

    #[test]
    fn from_tiles_covers_exactly_input() {
        // An awkward disconnected pattern.
        let tiles = vec![
            (Point::new(0, 0), clb()),
            (Point::new(2, 0), clb()),
            (Point::new(0, 1), clb()),
            (Point::new(2, 2), ResourceKind::Dsp),
        ];
        let s = ShapeDef::from_tiles(&tiles);
        let mut covered: Vec<(Point, ResourceKind)> = s.tiles().collect();
        covered.sort_by_key(|(p, _)| (p.y, p.x));
        let mut expect = tiles.clone();
        expect.sort_by_key(|(p, _)| (p.y, p.x));
        assert_eq!(covered, expect);
    }

    #[test]
    #[should_panic]
    fn from_tiles_duplicate_panics() {
        let tiles = vec![(Point::new(0, 0), clb()), (Point::new(0, 0), clb())];
        let _ = ShapeDef::from_tiles(&tiles);
    }

    #[test]
    fn tiles_at_translates() {
        let s = ShapeDef::new(vec![ShiftedBox::new(0, 0, 2, 1, clb())]);
        let placed: Vec<Point> = s.tiles_at(5, 7).map(|(p, _)| p).collect();
        assert_eq!(placed, vec![Point::new(5, 7), Point::new(6, 7)]);
    }

    #[test]
    fn rotation_involution() {
        let s = ShapeDef::new(vec![
            ShiftedBox::new(0, 0, 3, 1, clb()),
            ShiftedBox::new(0, 1, 1, 2, ResourceKind::Bram),
        ]);
        let r = s.rotated_180();
        // Same area/footprint metrics, same bounding box size.
        assert_eq!(r.area(), s.area());
        assert_eq!(r.width(), s.width());
        assert_eq!(r.height(), s.height());
        assert_eq!(r.resource_multiset(), s.resource_multiset());
        // Rotating twice returns the original.
        assert_eq!(r.rotated_180(), s);
        // And the rotation actually moved the BRAM column to the right.
        let bram_tiles: Vec<Point> = r
            .tiles()
            .filter(|(_, k)| *k == ResourceKind::Bram)
            .map(|(p, _)| p)
            .collect();
        assert_eq!(bram_tiles, vec![Point::new(2, 0), Point::new(2, 1)]);
    }

    #[test]
    fn rotation_of_symmetric_shape_is_identity() {
        let s = ShapeDef::new(vec![ShiftedBox::new(0, 0, 2, 2, clb())]);
        assert_eq!(s.rotated_180(), s);
    }

    #[test]
    fn transposed_swaps_axes() {
        let s = ShapeDef::new(vec![
            ShiftedBox::new(0, 0, 3, 1, clb()),
            ShiftedBox::new(0, 1, 1, 2, ResourceKind::Bram),
        ]);
        let t = s.transposed();
        assert_eq!(t.width(), s.height());
        assert_eq!(t.height(), s.width());
        assert_eq!(t.area(), s.area());
        assert_eq!(t.resource_multiset(), s.resource_multiset());
        assert_eq!(t.transposed(), s);
        let tiles: std::collections::BTreeSet<(i32, i32)> =
            t.tiles().map(|(p, _)| (p.x, p.y)).collect();
        let expected: std::collections::BTreeSet<(i32, i32)> =
            s.tiles().map(|(p, _)| (p.y, p.x)).collect();
        assert_eq!(tiles, expected);
    }

    #[test]
    fn normalized_moves_origin() {
        let s = ShapeDef::new(vec![ShiftedBox::new(3, 4, 2, 2, clb())]);
        let n = s.normalized();
        assert_eq!(n.bounding_box(), Rect::new(0, 0, 2, 2));
        assert_eq!(n.area(), s.area());
        // Idempotent.
        assert_eq!(n.normalized(), n);
    }

    #[test]
    fn serde_roundtrip() {
        let s = ShapeDef::new(vec![
            ShiftedBox::new(0, 0, 3, 1, clb()),
            ShiftedBox::new(0, 1, 1, 2, ResourceKind::Bram),
        ]);
        let json = serde_json::to_string(&s).unwrap();
        let back: ShapeDef = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
