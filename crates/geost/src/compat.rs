//! Resource compatibility: anchor filtering against a heterogeneous region.
//!
//! This module realizes the paper's constraint subsets `M_a` (eq. 2 — every
//! tile inside the constrained region) and `M_b` (eq. 3 — every tile on a
//! fabric tile of identical resource type), and is the second geost
//! extension: the fabric's non-matching and static tiles act as
//! *resource-typed forbidden regions* for each box of each shape.
//!
//! The output is the explicit set of valid `(shape, x, y)` triples per
//! object, posted to the solver as a table constraint — generalized arc
//! consistency over exactly the paper's two constraint families.

use crate::shape::ShapeDef;
use rrf_fabric::{Point, Region, ResourceKind};
use rrf_solver::{Model, VarId};
use std::collections::BTreeSet;

/// All anchor positions where every tile of `shape` lies inside the
/// region's bounds and on a fabric tile of its own resource kind.
///
/// The scan is restricted to anchors that keep the shape's bounding box
/// inside the region's bounding box — anything else violates eq. 2 anyway.
pub fn allowed_anchors(region: &Region, shape: &ShapeDef) -> Vec<Point> {
    debug_assert!(
        shape.boxes().iter().all(|b| b.w > 0 && b.h > 0),
        "degenerate box reached anchor enumeration"
    );
    let bounds = region.bounds();
    let bb = shape.bounding_box();
    let mut anchors = Vec::new();
    // Anchor range such that bb (at offset bb.x..) stays inside bounds.
    let x_lo = bounds.x - bb.x;
    let x_hi = bounds.x_end() - bb.x_end(); // inclusive
    let y_lo = bounds.y - bb.y;
    let y_hi = bounds.y_end() - bb.y_end();
    for y in y_lo..=y_hi {
        'anchor: for x in x_lo..=x_hi {
            for b in shape.boxes() {
                let r = b.placed(x, y);
                for ty in r.y..r.y_end() {
                    for tx in r.x..r.x_end() {
                        if !region.accepts(tx, ty, b.resource) {
                            continue 'anchor;
                        }
                    }
                }
            }
            debug_assert!(
                bounds.contains_rect(&rrf_fabric::Rect::new(x + bb.x, y + bb.y, bb.w, bb.h)),
                "anchor admits a bounding box escaping the region"
            );
            anchors.push(Point::new(x, y));
        }
    }
    anchors
}

/// The first valid anchor for `shape` on `region`, scanning the same
/// order as [`allowed_anchors`] but returning at the first hit — the
/// cheap "is this alternative dead?" query used by pre-solve analysis
/// and the server's submit-time preflight.
pub fn first_anchor(region: &Region, shape: &ShapeDef) -> Option<Point> {
    let bounds = region.bounds();
    let bb = shape.bounding_box();
    let x_lo = bounds.x - bb.x;
    let x_hi = bounds.x_end() - bb.x_end();
    let y_lo = bounds.y - bb.y;
    let y_hi = bounds.y_end() - bb.y_end();
    for y in y_lo..=y_hi {
        'anchor: for x in x_lo..=x_hi {
            for b in shape.boxes() {
                let r = b.placed(x, y);
                for ty in r.y..r.y_end() {
                    for tx in r.x..r.x_end() {
                        if !region.accepts(tx, ty, b.resource) {
                            continue 'anchor;
                        }
                    }
                }
            }
            return Some(Point::new(x, y));
        }
    }
    None
}

/// What pre-solve analysis concluded about one design alternative of a
/// module, relative to its siblings on a concrete region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeFate {
    /// No reason to drop this shape.
    Keep,
    /// No valid anchor anywhere in the region (eq. 2–3 empty).
    Dead,
    /// Identical anchor-relative tile set as the (kept) shape at this
    /// index — e.g. the 180° rotation of a symmetric layout.
    DuplicateOf(usize),
    /// The (kept) shape at this index covers a strict subset of this
    /// shape's tiles and extends no further right, so every placement of
    /// this shape can be replaced by one of the dominating shape without
    /// increasing the extent objective.
    DominatedBy(usize),
}

/// The canonical anchor-relative tile set of a shape — box-decomposition
/// independent, so two `ShapeDef`s covering the same tiles with different
/// box splits compare equal.
pub fn canonical_tiles(shape: &ShapeDef) -> BTreeSet<(i32, i32, ResourceKind)> {
    shape.tiles().map(|(p, k)| (p.y, p.x, k)).collect()
}

/// Classify a module's design alternatives on `region`: dead shapes,
/// duplicates (first occurrence kept), and dominated shapes. The returned
/// vector is index-aligned with `shapes`; referenced indices always point
/// at a `Keep` entry, and classification is deterministic (earlier index
/// wins among duplicates, smallest dominating index is recorded).
///
/// Dropping every non-`Keep` shape is sound for the extent-minimizing
/// objective: dead shapes admit no placement, duplicates admit exactly
/// the same placements as their keeper, and a dominated shape's placement
/// can always be replaced by its dominator's (a tile subset at the same
/// anchor, reaching no further right).
pub fn classify_shapes(region: &Region, shapes: &[ShapeDef]) -> Vec<ShapeFate> {
    let mut fates = vec![ShapeFate::Keep; shapes.len()];
    let tiles: Vec<BTreeSet<(i32, i32, ResourceKind)>> =
        shapes.iter().map(canonical_tiles).collect();

    for (i, shape) in shapes.iter().enumerate() {
        if first_anchor(region, shape).is_none() {
            fates[i] = ShapeFate::Dead;
        }
    }
    // Duplicates: identical tile sets collapse onto the smallest live
    // index (a duplicate of a dead shape is itself dead).
    for i in 0..shapes.len() {
        if fates[i] != ShapeFate::Keep {
            continue;
        }
        for j in 0..i {
            if fates[j] == ShapeFate::Keep && tiles[j] == tiles[i] {
                fates[i] = ShapeFate::DuplicateOf(j);
                break;
            }
        }
    }
    // Dominance: strict tile-subset with no larger right extent. Strict
    // subset is a strict partial order, so the minimal elements survive
    // and the keep set can never empty out from mutual elimination. Two
    // phases: mark everything dominated by any live sibling, then point
    // each dominated shape at a surviving (minimal) dominator — one
    // exists by transitivity of the subset order.
    let dominates = |j: usize, i: usize| {
        tiles[j].len() < tiles[i].len()
            && shapes[j].bounding_box().x_end() <= shapes[i].bounding_box().x_end()
            && tiles[j].is_subset(&tiles[i])
    };
    let live: Vec<usize> = (0..shapes.len())
        .filter(|&i| fates[i] == ShapeFate::Keep)
        .collect();
    let dominated: Vec<usize> = live
        .iter()
        .copied()
        .filter(|&i| live.iter().any(|&j| j != i && dominates(j, i)))
        .collect();
    for &i in &dominated {
        let keeper = live
            .iter()
            .copied()
            .find(|&j| !dominated.contains(&j) && dominates(j, i))
            .expect("a minimal dominator survives");
        fates[i] = ShapeFate::DominatedBy(keeper);
    }
    fates
}

/// The `(shape, x, y)` rows valid for an object with the given design
/// alternatives on `region` — the paper's `M_a ∩ M_b` per module.
pub fn anchor_rows(region: &Region, shapes: &[ShapeDef]) -> Vec<Vec<i32>> {
    let mut rows = Vec::new();
    for (s, shape) in shapes.iter().enumerate() {
        for p in allowed_anchors(region, shape) {
            rows.push(vec![s as i32, p.x, p.y]);
        }
    }
    rows
}

/// Post the placement table `(shape, x, y) ∈ anchor_rows` for one object.
/// Returns the number of rows (0 means the model is already infeasible —
/// the table propagator will fail it).
pub fn post_placement_table(
    model: &mut Model,
    region: &Region,
    shapes: &[ShapeDef],
    shape_var: VarId,
    x: VarId,
    y: VarId,
) -> usize {
    let rows = anchor_rows(region, shapes);
    let n = rows.len();
    model.table(vec![shape_var, x, y], rows);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::ShiftedBox;
    use rrf_fabric::{device, Fabric, Rect, ResourceKind};

    fn clb_box(w: i32, h: i32) -> ShapeDef {
        ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)])
    }

    #[test]
    fn homogeneous_region_full_sliding_window() {
        let region = Region::whole(device::homogeneous(5, 4));
        let anchors = allowed_anchors(&region, &clb_box(2, 2));
        // (5-2+1) * (4-2+1) = 12 anchors.
        assert_eq!(anchors.len(), 12);
        assert!(anchors.contains(&Point::new(0, 0)));
        assert!(anchors.contains(&Point::new(3, 2)));
        assert!(!anchors.contains(&Point::new(4, 0)));
    }

    #[test]
    fn bram_column_blocks_clb_shape() {
        // Fabric: columns c c B c c — a 2-wide CLB shape cannot straddle x=2.
        let fabric = Fabric::from_art("ccBcc\nccBcc").unwrap();
        let region = Region::whole(fabric);
        let anchors = allowed_anchors(&region, &clb_box(2, 1));
        let xs: Vec<i32> = anchors.iter().map(|p| p.x).collect();
        assert!(xs.contains(&0));
        assert!(xs.contains(&3));
        assert!(!xs.contains(&1));
        assert!(!xs.contains(&2));
    }

    #[test]
    fn bram_shape_snaps_to_bram_column() {
        let fabric = Fabric::from_art("ccBcc\nccBcc").unwrap();
        let region = Region::whole(fabric);
        let shape = ShapeDef::new(vec![ShiftedBox::new(0, 0, 1, 2, ResourceKind::Bram)]);
        let anchors = allowed_anchors(&region, &shape);
        assert_eq!(anchors, vec![Point::new(2, 0)]);
    }

    #[test]
    fn mixed_shape_requires_both_resources() {
        // Shape: 1 CLB tile at (0,0) + 1 BRAM tile at (1,0).
        let fabric = Fabric::from_art("cBcB").unwrap();
        let region = Region::whole(fabric);
        let shape = ShapeDef::new(vec![
            ShiftedBox::new(0, 0, 1, 1, ResourceKind::Clb),
            ShiftedBox::new(1, 0, 1, 1, ResourceKind::Bram),
        ]);
        let anchors = allowed_anchors(&region, &shape);
        assert_eq!(anchors, vec![Point::new(0, 0), Point::new(2, 0)]);
    }

    #[test]
    fn static_mask_forbids() {
        let mut region = Region::whole(device::homogeneous(4, 2));
        region.add_static_mask(Rect::new(2, 0, 2, 2));
        let anchors = allowed_anchors(&region, &clb_box(2, 2));
        assert_eq!(anchors, vec![Point::new(0, 0)]);
    }

    #[test]
    fn faulted_tiles_are_forbidden_regions() {
        // The fault path needs no geost changes: a faulted tile reads as
        // `Static` from the region, so the same resource-typed forbidden
        // region machinery that models the static design excludes it.
        let mut region = Region::whole(device::homogeneous(4, 2));
        let before = allowed_anchors(&region, &clb_box(2, 2));
        assert_eq!(before.len(), 3);
        region.inject_fault(rrf_fabric::Fault::Tile { x: 1, y: 0 });
        let anchors = allowed_anchors(&region, &clb_box(2, 2));
        assert_eq!(anchors, vec![Point::new(2, 0)]);
        for p in &anchors {
            for (tile, _) in clb_box(2, 2).tiles_at(p.x, p.y) {
                assert!(!region.is_faulted(tile.x, tile.y));
            }
        }
        region.clear_fault(rrf_fabric::Fault::Tile { x: 1, y: 0 });
        assert_eq!(allowed_anchors(&region, &clb_box(2, 2)), before);
    }

    #[test]
    fn column_fault_splits_anchor_space_like_bram_column() {
        // A dead column behaves exactly like a resource-mismatched column:
        // shapes cannot straddle it (cf. `bram_column_blocks_clb_shape`).
        let mut region = Region::whole(device::homogeneous(5, 2));
        region.inject_fault(rrf_fabric::Fault::Column { x: 2 });
        let anchors = allowed_anchors(&region, &clb_box(2, 1));
        let xs: Vec<i32> = anchors.iter().map(|p| p.x).collect();
        assert!(xs.contains(&0) && xs.contains(&3));
        assert!(!xs.contains(&1) && !xs.contains(&2));
        // The table constraint shrinks accordingly — the solver sees the
        // fault purely through the anchor rows.
        let rows = anchor_rows(&region, &[clb_box(2, 1)]);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn oversized_shape_has_no_anchor() {
        let region = Region::whole(device::homogeneous(3, 3));
        assert!(allowed_anchors(&region, &clb_box(4, 1)).is_empty());
    }

    #[test]
    fn rows_enumerate_all_shapes() {
        let region = Region::whole(device::homogeneous(3, 1));
        let shapes = vec![clb_box(1, 1), clb_box(2, 1)];
        let rows = anchor_rows(&region, &shapes);
        // Shape 0: 3 anchors; shape 1: 2 anchors.
        assert_eq!(rows.len(), 5);
        assert!(rows.contains(&vec![0, 2, 0]));
        assert!(rows.contains(&vec![1, 1, 0]));
        assert!(!rows.contains(&vec![1, 2, 0]));
    }

    #[test]
    fn first_anchor_agrees_with_full_scan() {
        let fabric = Fabric::from_art("ccBcc\nccBcc").unwrap();
        let region = Region::whole(fabric);
        for shape in [clb_box(2, 1), clb_box(2, 2), clb_box(5, 1), clb_box(6, 1)] {
            let all = allowed_anchors(&region, &shape);
            assert_eq!(first_anchor(&region, &shape), all.first().copied());
        }
    }

    #[test]
    fn classify_marks_dead_and_keeps_live() {
        let region = Region::whole(device::homogeneous(4, 3));
        let fates = classify_shapes(&region, &[clb_box(2, 2), clb_box(5, 1), clb_box(1, 4)]);
        assert_eq!(
            fates,
            vec![ShapeFate::Keep, ShapeFate::Dead, ShapeFate::Dead]
        );
    }

    #[test]
    fn classify_collapses_duplicates_onto_first() {
        // Same tiles, different box decomposition: still a duplicate.
        let region = Region::whole(device::homogeneous(6, 4));
        let split = ShapeDef::new(vec![
            ShiftedBox::new(0, 0, 2, 1, ResourceKind::Clb),
            ShiftedBox::new(0, 1, 2, 1, ResourceKind::Clb),
        ]);
        let fates = classify_shapes(&region, &[clb_box(2, 2), split, clb_box(2, 2)]);
        assert_eq!(
            fates,
            vec![
                ShapeFate::Keep,
                ShapeFate::DuplicateOf(0),
                ShapeFate::DuplicateOf(0)
            ]
        );
    }

    #[test]
    fn classify_prunes_dominated_superset() {
        // The L-shape strictly contains the bar's tiles and reaches no
        // further right, so the bar dominates it.
        let region = Region::whole(device::homogeneous(8, 4));
        let bar = clb_box(2, 1);
        let ell = ShapeDef::new(vec![
            ShiftedBox::new(0, 0, 2, 1, ResourceKind::Clb),
            ShiftedBox::new(0, 1, 1, 1, ResourceKind::Clb),
        ]);
        let fates = classify_shapes(&region, &[ell.clone(), bar.clone()]);
        assert_eq!(fates, vec![ShapeFate::DominatedBy(1), ShapeFate::Keep]);
        // A dominance chain keeps only the minimal element and every
        // reference points at a kept shape.
        let single = clb_box(1, 1);
        let fates = classify_shapes(&region, &[ell, bar, single]);
        assert_eq!(
            fates,
            vec![
                ShapeFate::DominatedBy(2),
                ShapeFate::DominatedBy(2),
                ShapeFate::Keep
            ]
        );
    }

    #[test]
    fn classify_keeps_equal_area_alternatives() {
        // Rotated/transposed equal-area shapes never dominate each other.
        let region = Region::whole(device::homogeneous(8, 8));
        let fates = classify_shapes(&region, &[clb_box(3, 2), clb_box(2, 3)]);
        assert_eq!(fates, vec![ShapeFate::Keep, ShapeFate::Keep]);
    }

    #[test]
    fn post_table_prunes_model() {
        let region = Region::whole(device::homogeneous(4, 1));
        let shapes = vec![clb_box(3, 1)];
        let mut model = Model::new();
        let s = model.new_var(0, 0);
        let x = model.new_var(0, 100);
        let y = model.new_var(0, 100);
        let n = post_placement_table(&mut model, &region, &shapes, s, x, y);
        assert_eq!(n, 2);
        let out = rrf_solver::solve(model, rrf_solver::SearchConfig::default());
        assert_eq!(out.stats.solutions, 2);
    }
}
