//! Property tests of the geometric kernel: rectangle decomposition,
//! mandatory-part correctness, and anchor-table consistency.

use proptest::prelude::*;
use rrf_fabric::{device, Point, Rect, Region, ResourceKind};
use rrf_geost::{allowed_anchors, anchor_rows, GeostObject, NonOverlap, ShapeDef, ShiftedBox};
use rrf_solver::{Domain, Engine, Space};
use std::collections::BTreeSet;
use std::sync::Arc;

fn tiles_strategy() -> impl Strategy<Value = Vec<(Point, ResourceKind)>> {
    proptest::collection::btree_set((0i32..5, 0i32..5), 1..10).prop_map(|set| {
        set.into_iter()
            .map(|(x, y)| (Point::new(x, y), ResourceKind::Clb))
            .collect()
    })
}

proptest! {
    /// from_tiles merges tiles into boxes that cover exactly the input and
    /// never overlap each other.
    #[test]
    fn decomposition_partitions_tiles(tiles in tiles_strategy()) {
        let shape = ShapeDef::from_tiles(&tiles);
        // Exact cover.
        let covered: BTreeSet<(i32, i32)> =
            shape.tiles().map(|(p, _)| (p.x, p.y)).collect();
        let expected: BTreeSet<(i32, i32)> =
            tiles.iter().map(|(p, _)| (p.x, p.y)).collect();
        prop_assert_eq!(covered, expected);
        // Disjoint boxes (ShapeDef::new would have panicked otherwise, but
        // check the areas add up as an independent signal).
        let box_area: i64 = shape.boxes().iter().map(|b| b.area()).sum();
        prop_assert_eq!(box_area, tiles.len() as i64);
        // Fewer boxes than tiles unless every tile is isolated.
        prop_assert!(shape.boxes().len() <= tiles.len());
    }

    /// An object's mandatory tiles are occupied under EVERY remaining
    /// placement.
    #[test]
    fn mandatory_part_is_sound(x_lo in 0i32..4, x_slack in 0i32..4,
                               y_lo in 0i32..3, y_slack in 0i32..3,
                               w in 1i32..4, h in 1i32..3) {
        let mut space = Space::new();
        let xv = space.new_var(Domain::interval(x_lo, x_lo + x_slack));
        let yv = space.new_var(Domain::interval(y_lo, y_lo + y_slack));
        let sv = space.new_var(Domain::singleton(0));
        let shape = ShapeDef::new(vec![ShiftedBox::new(0, 0, w, h, ResourceKind::Clb)]);
        let obj = GeostObject::new(xv, yv, sv, Arc::new(vec![shape.clone()]));
        let mandatory = obj.mandatory_rects_per_shape(&space);
        prop_assert_eq!(mandatory.len(), 1);
        for rect in &mandatory[0] {
            for tile in rect.tiles() {
                // Every placement in the domains covers this tile.
                for x in x_lo..=x_lo + x_slack {
                    for y in y_lo..=y_lo + y_slack {
                        let covered = shape
                            .tiles_at(x, y)
                            .any(|(p, _)| p == tile);
                        prop_assert!(covered,
                            "tile {tile} not covered at anchor ({x},{y})");
                    }
                }
            }
        }
        // And the mandatory part is exact for rectangles: a tile covered by
        // all placements is in some mandatory rect.
        if x_slack < w && y_slack < h {
            prop_assert!(!mandatory[0].is_empty());
        }
    }

    /// anchor_rows is exactly the union over shapes of allowed_anchors.
    #[test]
    fn anchor_rows_match_per_shape_anchors(seed in 0u64..200) {
        let region = Region::whole(device::irregular(14, 7, seed));
        let shapes = vec![
            ShapeDef::new(vec![ShiftedBox::new(0, 0, 2, 2, ResourceKind::Clb)]),
            ShapeDef::new(vec![ShiftedBox::new(0, 0, 1, 3, ResourceKind::Clb)]),
        ];
        let rows = anchor_rows(&region, &shapes);
        let mut expected = Vec::new();
        for (s, shape) in shapes.iter().enumerate() {
            for a in allowed_anchors(&region, shape) {
                expected.push(vec![s as i32, a.x, a.y]);
            }
        }
        prop_assert_eq!(rows, expected);
    }
}

// Non-overlap leaf semantics on polymorphic objects: random fixed
// (shape, x, y) triples accepted iff tile sets are disjoint.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn polymorphic_leaf_check(x1 in 0i32..6, y1 in 0i32..4, s1 in 0usize..2,
                              x2 in 0i32..6, y2 in 0i32..4, s2 in 0usize..2) {
        let shapes = Arc::new(vec![
            ShapeDef::new(vec![ShiftedBox::new(0, 0, 2, 2, ResourceKind::Clb)]),
            ShapeDef::new(vec![
                ShiftedBox::new(0, 0, 1, 2, ResourceKind::Clb),
                ShiftedBox::new(1, 0, 2, 1, ResourceKind::Clb),
            ]),
        ]);
        let mut space = Space::new();
        let mk = |space: &mut Space, x: i32, y: i32, s: usize| {
            let xv = space.new_var(Domain::singleton(x));
            let yv = space.new_var(Domain::singleton(y));
            let sv = space.new_var(Domain::singleton(s as i32));
            GeostObject::new(xv, yv, sv, Arc::clone(&shapes))
        };
        let a = mk(&mut space, x1, y1, s1);
        let b = mk(&mut space, x2, y2, s2);
        let tiles_a: BTreeSet<(i32, i32)> =
            shapes[s1].tiles_at(x1, y1).map(|(p, _)| (p.x, p.y)).collect();
        let tiles_b: BTreeSet<(i32, i32)> =
            shapes[s2].tiles_at(x2, y2).map(|(p, _)| (p.x, p.y)).collect();
        let overlap = !tiles_a.is_disjoint(&tiles_b);
        let mut engine = Engine::new(space.num_vars());
        engine.post(NonOverlap::new(vec![a, b], Rect::new(0, 0, 12, 8)));
        engine.schedule_all();
        let result = engine.propagate(&mut space);
        prop_assert_eq!(result.is_err(), overlap);
    }
}
