//! Shared seeded-workload machinery for the load benchmarks.
//!
//! Every stream-driving binary (`ablation_online`, `fault_storm`,
//! `serve_load`, `sched_load`) used to carry its own copy of the same
//! three ingredients: a decorrelated stream RNG, the with/without-
//! alternatives module arms, and an arrival policy. They live here once,
//! so the binaries stay comparable — identical seeds draw identical
//! streams across experiments.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rrf_core::Module;
use rrf_flow::{DeviceSpec, ModuleEntry, RegionSpec};
use rrf_modgen::{generate_workload, WorkloadSpec};

use crate::experiment::workload_modules;

/// Decorrelates stream seeds from workload seeds: the module mix for seed
/// `s` and the event stream for seed `s` share no RNG state.
pub const SEED_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// The event-stream RNG for one run.
pub fn stream_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ SEED_MIX)
}

/// The two arms of an alternatives ablation: the seeded workload's full
/// shape sets, and the same modules frozen to their first shape.
pub fn workload_arms(modules: usize, seed: u64) -> (Vec<Module>, Vec<Module>) {
    let workload = generate_workload(&WorkloadSpec {
        modules,
        seed,
        ..WorkloadSpec::default()
    });
    let with = workload_modules(&workload);
    let without = with.iter().map(Module::without_alternatives).collect();
    (with, without)
}

/// The closed-loop arrival policy of the online-stream ablations: always
/// arrive while nothing is live, lean toward arrivals (70%) below half
/// load, then 50/50.
pub fn arrive_next(rng: &mut ChaCha8Rng, live_empty: bool, utilization: f64) -> bool {
    live_empty || rng.gen_bool(if utilization < 0.5 { 0.7 } else { 0.5 })
}

/// Open-loop Poisson arrivals: exponentially distributed integer gaps
/// with the given mean, independent of how the consumer keeps up —
/// offered load is a parameter, not an outcome.
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    /// Mean inter-arrival gap in ticks.
    pub mean_gap: f64,
}

impl PoissonArrivals {
    /// The next inter-arrival gap, at least 1 tick.
    pub fn next_gap(&self, rng: &mut ChaCha8Rng) -> u64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (-u.ln() * self.mean_gap).ceil().max(1.0) as u64
    }
}

/// The region the small `rrf-modgen` workloads are generated for (BRAM
/// column period matching the generator's layout parameters).
pub fn small_region_spec() -> RegionSpec {
    RegionSpec {
        device: DeviceSpec::Columns {
            width: 60,
            height: 8,
            bram_period: 10,
            bram_offset: 4,
            dsp_period: 0,
            dsp_offset: 0,
            io_ring: 0,
            center_clock: false,
        },
        bounds: None,
        static_masks: vec![],
    }
}

/// The region the paper-scale (§V) workloads are generated for: the
/// 240×16 column device with the generator's BRAM layout.
pub fn paper_region_spec() -> RegionSpec {
    RegionSpec {
        device: DeviceSpec::Columns {
            width: 240,
            height: 16,
            bram_period: 10,
            bram_offset: 4,
            dsp_period: 0,
            dsp_offset: 0,
            io_ring: 0,
            center_clock: false,
        },
        bounds: None,
        static_masks: vec![],
    }
}

/// One small seeded module entry, cycled by index — the online-session
/// insert mix of the service benchmarks.
pub fn small_online_module(i: u64) -> ModuleEntry {
    let workload = generate_workload(&WorkloadSpec::small(1, 100 + i % 7));
    let m = workload.modules.into_iter().next().expect("one module");
    ModuleEntry {
        name: m.name,
        shapes: m.shapes,
        netlist: None,
    }
}

/// Nearest-rank percentile over an ascending-sorted sample, reported in
/// milliseconds (input in microseconds).
pub fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    percentile_us(sorted_us, p) as f64 / 1000.0
}

/// Nearest-rank percentile over an ascending-sorted sample, microseconds.
pub fn percentile_us(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_share_names_and_differ_in_shapes() {
        let (with, without) = workload_arms(6, 3);
        assert_eq!(with.len(), without.len());
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(a.name, b.name);
            assert_eq!(b.shapes().len(), 1);
            assert!(a.shapes().len() >= b.shapes().len());
            assert_eq!(a.shapes()[0], b.shapes()[0]);
        }
        assert!(
            with.iter().any(|m| m.shapes().len() > 1),
            "the ablation needs at least one module with alternatives"
        );
    }

    #[test]
    fn poisson_gaps_are_deterministic_and_near_mean() {
        let arrivals = PoissonArrivals { mean_gap: 20.0 };
        let mut a = stream_rng(7);
        let mut b = stream_rng(7);
        let gaps: Vec<u64> = (0..2000).map(|_| arrivals.next_gap(&mut a)).collect();
        let again: Vec<u64> = (0..2000).map(|_| arrivals.next_gap(&mut b)).collect();
        assert_eq!(gaps, again, "same seed, same stream");
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        assert!(
            (mean - 20.0).abs() < 2.5,
            "mean gap {mean} far from configured 20 (ceil biases slightly high)"
        );
        assert!(gaps.iter().all(|&g| g >= 1));
    }

    #[test]
    fn percentiles_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&xs, 50.0), 50);
        assert_eq!(percentile_us(&xs, 99.0), 99);
        assert_eq!(percentile_us(&xs, 100.0), 100);
        assert_eq!(percentile_us(&[], 50.0), 0);
    }
}
