//! Seeded, deterministic trace workloads.
//!
//! Shared by the `trace_workload` binary (which regenerates the golden
//! logical traces under `tests/expected/trace/`), the replay test
//! (`tests/trace_replay.rs`), and the `trace_overhead` bench — one
//! definition of "the workload", three consumers, so the goldens can
//! never drift from what the tests run.
//!
//! Determinism contract: the placer runs the **sequential** strategy
//! under a **failure budget** (never a clock), so the logical trace
//! stream (`open`/`close`/`point`/`count` — no wall readings) is
//! byte-identical across runs and machines. See DESIGN.md §10.

use rrf_core::{cp, PlacementProblem, PlacerConfig, SearchStrategy};
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_trace::Tracer;

use crate::experiment::{workload_modules, ExperimentSetup};

/// Parse a workload name: `paper:SEED` or `small:MODULES:SEED`
/// (the same grammar as `rrf-analyze --workload`).
pub fn parse_workload(kind: &str) -> Result<WorkloadSpec, String> {
    let parts: Vec<&str> = kind.split(':').collect();
    match parts.as_slice() {
        ["paper", seed] => {
            let seed = seed.parse().map_err(|_| format!("bad seed `{seed}`"))?;
            Ok(WorkloadSpec::paper(seed))
        }
        ["small", modules, seed] => {
            let modules = modules
                .parse()
                .map_err(|_| format!("bad module count `{modules}`"))?;
            let seed = seed.parse().map_err(|_| format!("bad seed `{seed}`"))?;
            Ok(WorkloadSpec::small(modules, seed))
        }
        _ => Err(format!(
            "unknown workload `{kind}` (paper:SEED | small:MODULES:SEED)"
        )),
    }
}

/// Materialize the placement problem for a workload on the canonical
/// column-structured region at `width`.
pub fn trace_problem(spec: &WorkloadSpec, width: i32) -> PlacementProblem {
    let workload = generate_workload(spec);
    PlacementProblem::new(
        ExperimentSetup::with_width(width).region(),
        workload_modules(&workload),
    )
}

/// The deterministic placer configuration for trace workloads: a
/// failure budget instead of a wall clock, sequential search (a
/// portfolio's cross-thread improvement races would reorder the
/// logical stream), everything else at its defaults.
pub fn deterministic_config(fail_limit: u64, tracer: Tracer) -> PlacerConfig {
    PlacerConfig {
        time_limit: None,
        fail_limit: Some(fail_limit),
        strategy: SearchStrategy::Sequential,
        tracer,
        ..PlacerConfig::default()
    }
}

/// Run one traced placement of `problem` under `tracer`.
pub fn run_traced(
    problem: &PlacementProblem,
    fail_limit: u64,
    tracer: Tracer,
) -> cp::PlacementOutcome {
    cp::place(problem, &deterministic_config(fail_limit, tracer))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_grammar() {
        assert_eq!(parse_workload("paper:7").unwrap().seed, 7);
        let small = parse_workload("small:8:3").unwrap();
        assert_eq!(small.modules, 8);
        assert_eq!(small.seed, 3);
        assert!(parse_workload("paper").is_err());
        assert!(parse_workload("small:x:1").is_err());
        assert!(parse_workload("big:1").is_err());
    }

    #[test]
    fn config_is_clock_free() {
        let cfg = deterministic_config(100, Tracer::default());
        assert!(cfg.time_limit.is_none());
        assert_eq!(cfg.fail_limit, Some(100));
        assert!(matches!(cfg.strategy, SearchStrategy::Sequential));
    }
}
