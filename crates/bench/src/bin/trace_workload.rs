//! `trace_workload` — run a seeded placement under tracing and dump the
//! NDJSON stream.
//!
//! ```text
//! trace_workload --workload paper:1 [--width N] [--fail-limit N]
//!                [--out PATH] [--wall]
//! ```
//!
//! By default only the **logical** stream is written (no wall-clock
//! records), so the output is byte-deterministic for a given workload:
//! running the same command twice yields identical files. That property
//! is what the golden traces under `tests/expected/trace/` pin down —
//! regenerate them with this binary after a deliberate trace-schema or
//! search-order change:
//!
//! ```text
//! cargo run --release -p rrf-bench --bin trace_workload -- \
//!     --workload paper:1 --fail-limit 4000 \
//!     --out tests/expected/trace/paper1_w240.ndjson
//! ```
//!
//! `--wall` adds the wall-clock records back (useful for feeding the
//! `rrf-trace` CLI's `--phases` view; not reproducible byte-for-byte).

#![forbid(unsafe_code)]
use std::io::Write;
use std::sync::Arc;

use rrf_bench::{parse_workload, run_traced, trace_problem};
use rrf_trace::{NdjsonSink, Tracer};

fn usage() -> ! {
    eprintln!(
        "usage: trace_workload --workload paper:SEED|small:MODULES:SEED \
         [--width N] [--fail-limit N] [--out PATH] [--wall]"
    );
    std::process::exit(2);
}

fn main() {
    let mut workload = None;
    let mut width = 240;
    let mut fail_limit = 4_000u64;
    let mut out: Option<String> = None;
    let mut wall = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--workload" => workload = Some(value()),
            "--width" => width = value().parse().unwrap_or_else(|_| usage()),
            "--fail-limit" => fail_limit = value().parse().unwrap_or_else(|_| usage()),
            "--out" => out = Some(value()),
            "--wall" => wall = true,
            _ => usage(),
        }
    }
    let Some(workload) = workload else { usage() };
    let spec = match parse_workload(&workload) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("trace_workload: {e}");
            std::process::exit(2);
        }
    };

    let sink = match &out {
        Some(path) => match NdjsonSink::create(path) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("trace_workload: cannot create {path}: {e}");
                std::process::exit(1);
            }
        },
        None => NdjsonSink::new(Box::new(std::io::BufWriter::new(std::io::stdout()))),
    };
    let sink = if wall { sink } else { sink.logical_only() };
    let tracer = Tracer::new(Arc::new(sink));

    let problem = trace_problem(&spec, width);
    let outcome = run_traced(&problem, fail_limit, tracer.clone());
    tracer.flush();

    let mut err = std::io::stderr();
    let _ = writeln!(
        err,
        "trace_workload: {} modules, placed={}, proven={}, extent={:?}, {:.3}s",
        problem.modules.len(),
        outcome.plan.is_some(),
        outcome.proven,
        outcome.extent,
        outcome.stats.duration.as_secs_f64(),
    );
}
