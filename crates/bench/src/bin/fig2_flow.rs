//! Figure 2 reproduction: the design flow — partial region specification
//! and module specifications go into the constraint solver, an optimal
//! placement comes out.
//!
//! Writes a job description JSON, runs the flow driver on it, writes the
//! report JSON, and prints both paths plus a summary (the file formats are
//! the ReCoBus-Builder-style interface of the flow crate).

#![forbid(unsafe_code)]
use rrf_flow::{io, run, DeviceSpec, FlowSpec, ModuleEntry, PlacerSettings, RegionSpec};
use rrf_modgen::{generate_workload, WorkloadSpec};
use std::path::PathBuf;

fn main() {
    let workload = generate_workload(&WorkloadSpec::small(5, 2));
    let spec = FlowSpec {
        region: RegionSpec {
            device: DeviceSpec::Columns {
                width: 40,
                height: 8,
                bram_period: 10,
                bram_offset: 4,
                dsp_period: 0,
                dsp_offset: 0,
                io_ring: 0,
                center_clock: false,
            },
            bounds: None,
            static_masks: vec![],
        },
        modules: workload
            .modules
            .iter()
            .map(|m| ModuleEntry {
                name: m.name.clone(),
                shapes: m.shapes.clone(),
                netlist: None,
            })
            .collect(),
        placer: PlacerSettings {
            time_limit_ms: Some(10_000),
            ..PlacerSettings::default()
        },
    };

    let dir = std::env::temp_dir();
    let spec_path: PathBuf = dir.join("rrf_fig2_job.json");
    let report_path: PathBuf = dir.join("rrf_fig2_report.json");
    io::save_spec(&spec_path, &spec).expect("write job spec");

    println!("Figure 2 — the design flow");
    println!("  partial region + module specs: {}", spec_path.display());

    let loaded = io::load_spec(&spec_path).expect("read back job spec");
    let report = run(&loaded).expect("flow run");
    io::save_report(&report_path, &report).expect("write report");

    println!("  constraint solver:             rrf-core::cp (geost + tables + BnB)");
    println!("  optimal placement report:      {}", report_path.display());
    println!();
    println!(
        "  feasible={} proven={} extent={:?}",
        report.feasible, report.proven, report.extent
    );
    for p in &report.placements {
        println!("    {}: shape {} at ({}, {})", p.name, p.shape, p.x, p.y);
    }
    if let Some(m) = &report.metrics {
        println!(
            "  utilization {:.1}% over a {}-column window",
            m.utilization * 100.0,
            m.extent_cols
        );
    }
}
