//! `serve_load` — replay seeded `rrf-modgen` workloads against the
//! placement daemon and report throughput and latency percentiles.
//!
//! Each client thread drives its own connection with a deterministic mix
//! of requests: one-shot `place` jobs (a handful of distinct seeded specs,
//! shared across clients so the placement cache sees both misses and
//! hits), plus an online session it inserts into, removes from, and
//! defragments. Every response is checked — an unexpected `error` or a
//! mismatched correlation id counts as a protocol error and fails the run.
//!
//! Usage: `serve_load [clients] [requests_per_client] [seed]
//!         [--addr HOST:PORT] [--deadline-ms MS]`
//! (defaults 4, 30, 0; without `--addr` an in-process daemon is started).

#![forbid(unsafe_code)]
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rrf_bench::workload::{percentile_ms, small_online_module, small_region_spec};
use rrf_flow::{FlowSpec, ModuleEntry, PlacerSettings};
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_server::{start, Request, Response, ServerConfig};

/// Distinct place specs in rotation; small enough that a miss solves well
/// inside the deadline, few enough that most requests are cache hits.
const PLACE_SPECS: u64 = 5;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn roundtrip(&mut self, request: &Request) -> std::io::Result<Response> {
        let mut line = serde_json::to_string(request).expect("serialize request");
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply)?;
        serde_json::from_str(reply.trim())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

fn place_spec(seed: u64) -> FlowSpec {
    let workload = generate_workload(&WorkloadSpec::small(4, seed));
    FlowSpec {
        region: small_region_spec(),
        modules: workload
            .modules
            .into_iter()
            .map(|m| ModuleEntry {
                name: m.name,
                shapes: m.shapes,
                netlist: None,
            })
            .collect(),
        placer: PlacerSettings::default(),
    }
}

struct ClientOutcome {
    latencies_us: Vec<u64>,
    protocol_errors: Vec<String>,
    place_hits: u64,
    place_misses: u64,
    inserts_rejected: u64,
}

fn run_client(
    addr: &str,
    client_idx: u64,
    requests: u64,
    base_seed: u64,
    deadline_ms: u64,
) -> ClientOutcome {
    let mut out = ClientOutcome {
        latencies_us: Vec::with_capacity(requests as usize + 2),
        protocol_errors: Vec::new(),
        place_hits: 0,
        place_misses: 0,
        inserts_rejected: 0,
    };
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            out.protocol_errors.push(format!("connect: {e}"));
            return out;
        }
    };
    let mut next_id: u64 = client_idx * 1_000_000;
    let mut slots: Vec<u64> = Vec::new();

    let issue = |client: &mut Client, request: Request, out: &mut ClientOutcome| {
        let id = request.id();
        let started = Instant::now();
        match client.roundtrip(&request) {
            Ok(response) => {
                out.latencies_us.push(started.elapsed().as_micros() as u64);
                if response.id() != id {
                    out.protocol_errors
                        .push(format!("id mismatch: sent {id}, got {}", response.id()));
                    return None;
                }
                Some(response)
            }
            Err(e) => {
                out.protocol_errors.push(format!("request {id}: {e}"));
                None
            }
        }
    };

    // A session for the online part of the mix.
    next_id += 1;
    let session = match issue(
        &mut client,
        Request::OpenSession {
            id: next_id,
            region: small_region_spec(),
        },
        &mut out,
    ) {
        Some(Response::SessionOpened { session, .. }) => Some(session),
        Some(other) => {
            out.protocol_errors
                .push(format!("open_session: unexpected {other:?}"));
            None
        }
        None => None,
    };

    for i in 0..requests {
        next_id += 1;
        let id = next_id;
        let request = match (i % 6, session) {
            (0 | 3, _) => Request::Place {
                id,
                spec: place_spec(base_seed + (client_idx + i) % PLACE_SPECS),
                deadline_ms: Some(deadline_ms),
            },
            (1 | 4, Some(session)) => Request::Insert {
                id,
                session,
                module: small_online_module(client_idx + i),
            },
            (2, Some(session)) if !slots.is_empty() => Request::Remove {
                id,
                session,
                slot: slots.remove(0),
            },
            (5, Some(session)) => Request::Defrag { id, session },
            _ => Request::Ping { id },
        };
        match issue(&mut client, request, &mut out) {
            Some(Response::Placed { cache_hit, .. }) => {
                if cache_hit {
                    out.place_hits += 1;
                } else {
                    out.place_misses += 1;
                }
            }
            Some(Response::Inserted { slot, .. }) => match slot {
                Some(slot) => slots.push(slot),
                None => out.inserts_rejected += 1,
            },
            Some(Response::Error { message, .. }) => {
                out.protocol_errors.push(format!("request {id}: {message}"));
            }
            Some(_) | None => {}
        }
    }

    if let Some(session) = session {
        next_id += 1;
        issue(
            &mut client,
            Request::CloseSession {
                id: next_id,
                session,
            },
            &mut out,
        );
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut addr: Option<String> = None;
    let mut deadline_ms: u64 = 2_000;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(it.next().expect("--addr needs a value").clone()),
            "--deadline-ms" => {
                deadline_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--deadline-ms needs a number")
            }
            other => positional.push(other),
        }
    }
    let clients: u64 = positional.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let requests: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    let base_seed: u64 = positional.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);

    // Spawn an in-process daemon unless pointed at a running one.
    let handle = if addr.is_none() {
        Some(start(ServerConfig::default()).expect("start daemon"))
    } else {
        None
    };
    let addr = addr.unwrap_or_else(|| handle.as_ref().unwrap().addr().to_string());

    eprintln!(
        "serve_load: {clients} clients x {requests} requests (+session open/close) \
         against {addr}, deadline {deadline_ms}ms"
    );
    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let addr = &addr;
        let threads: Vec<_> = (0..clients)
            .map(|c| scope.spawn(move || run_client(addr, c, requests, base_seed, deadline_ms)))
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let errors: Vec<&String> = outcomes.iter().flat_map(|o| &o.protocol_errors).collect();
    let hits: u64 = outcomes.iter().map(|o| o.place_hits).sum();
    let misses: u64 = outcomes.iter().map(|o| o.place_misses).sum();
    let rejected: u64 = outcomes.iter().map(|o| o.inserts_rejected).sum();

    println!("requests:    {total} in {:.2}s", elapsed.as_secs_f64());
    println!(
        "throughput:  {:.1} req/s",
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "latency ms:  p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
        percentile_ms(&latencies, 50.0),
        percentile_ms(&latencies, 90.0),
        percentile_ms(&latencies, 99.0),
        percentile_ms(&latencies, 100.0),
    );
    println!("place cache: {hits} hits / {misses} misses");
    println!("online:      {rejected} inserts rejected (region full — not errors)");

    if let Ok(mut client) = Client::connect(&addr) {
        if let Ok(Response::Stats { stats, .. }) = client.roundtrip(&Request::Stats { id: 1 }) {
            println!(
                "server:      {} requests, {} fallbacks, {} backpressure rejections, \
                 histogram {:?}",
                stats.requests,
                stats.fallbacks(),
                stats.rejected_backpressure,
                stats.solve_ms_histogram
            );
        }
    }

    if !errors.is_empty() {
        eprintln!("{} protocol errors:", errors.len());
        for e in errors.iter().take(10) {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
    println!("protocol errors: 0");
}
