//! `cluster_load` — the horizontal-sharding ablation (A14): does routing
//! the same saturating placement load across four `rrf-serve` backends
//! through `rrf-router` recover the goodput a single backend sheds?
//!
//! Two arms, identical offered load — an **open-loop** stream of unique
//! placement specs at ~4x one backend's saturation point:
//!
//! * **four_backends** — four in-process daemons (2 workers each) behind
//!   one in-process router; stateless `place` requests spread by
//!   least-loaded routing.
//! * **one_backend** — one identical daemon behind the same router, so
//!   the router hop is paid in both arms and the ablation isolates
//!   exactly the horizontal capacity.
//!
//! Every spec pins its own CP budget (`time_limit_ms = SERVICE_MS`), so
//! per-request service cost is a constant and the capacity math is
//! exact: one backend serves `workers / service = ~13.3` req/s; the
//! offered load is `CLIENTS / GAP = ~53.3` req/s. A shallow queue
//! (`QUEUE_DEPTH = 8`) keeps worst-case queueing delay under the client
//! SLO, so the single backend fails *honestly* — by shedding at
//! admission — rather than by unbounded lateness, and within-SLO goodput
//! measures exactly what each arm could truly serve.
//!
//! **Goodput** is a response that is feasible *and arrived within the
//! client's SLO of the send time* — the same judge as `overload_load`
//! and `cache_load`. The binary writes both arms to `BENCH_cluster.json`
//! (shared `BenchRecord` schema); the `bench_gate` stage asserts
//! `four_backends >= 2.5x one_backend`.
//!
//! Usage: `cluster_load [requests_per_client] [seed] [--slo-ms MS] [--out PATH]`
//! (defaults 40, 0, 900).

#![forbid(unsafe_code)]
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rrf_bench::record::{write_records, BenchRecord};
use rrf_bench::workload::{percentile_ms, small_region_spec};
use rrf_flow::{FlowSpec, ModuleEntry, PlacerSettings};
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_router::{BackendSpec, RouterConfig, RouterHandle, RouterStats};
use rrf_server::{start, Request, Response, ServerConfig, ServerHandle};

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Per-backend capacity knobs — identical in both arms.
const WORKERS: usize = 2;
/// Shallow queue: worst-case queueing delay is `QUEUE_DEPTH x
/// SERVICE_MS / WORKERS = 600 ms`, under the default 900 ms SLO — excess
/// load is shed at the door, never served late.
const QUEUE_DEPTH: usize = 8;
/// Pinned per-request CP budget (the spec's own time limit).
const SERVICE_MS: u64 = 150;
/// Modules per generated spec (see `overload_load`).
const SPEC_MODULES: usize = 8;

/// The open-loop offered load: `CLIENTS / GAP_MS = ~53.3` req/s, 4x one
/// backend's `WORKERS / SERVICE_MS = ~13.3` req/s saturation point.
const CLIENTS: usize = 16;
const GAP_MS: u64 = 300;
const DEADLINE_MS: u64 = 6_000;

fn place_spec(seed: u64) -> FlowSpec {
    let workload = generate_workload(&WorkloadSpec::small(SPEC_MODULES, seed));
    FlowSpec {
        region: small_region_spec(),
        modules: workload
            .modules
            .into_iter()
            .map(|m| ModuleEntry {
                name: m.name,
                shapes: m.shapes,
                netlist: None,
            })
            .collect(),
        placer: PlacerSettings {
            time_limit_ms: Some(SERVICE_MS),
            ..PlacerSettings::default()
        },
    }
}

/// Unique spec per (client, request) — nothing cacheable, nothing
/// coalesceable: raw horizontal capacity is the only variable.
fn uniq_seed(run_seed: u64, client_idx: u64, j: u64) -> u64 {
    (3 << 32) | (run_seed << 20) | (client_idx << 12) | j
}

#[derive(Default)]
struct ArmOutcome {
    offered: u64,
    goodput: u64,
    shed: u64,
    late: u64,
    infeasible: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

/// One open-loop client through the router: a sender thread fires on the
/// fixed schedule (never waiting for replies), a reader stamps arrivals.
fn run_client(
    addr: &str,
    client_idx: u64,
    requests: u64,
    run_seed: u64,
    slo_ms: u64,
) -> ArmOutcome {
    let mut out = ArmOutcome {
        offered: requests,
        ..ArmOutcome::default()
    };
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(_) => {
            out.errors = requests;
            return out;
        }
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let reader_stream = stream.try_clone().unwrap();
    let (done_tx, done_rx) = mpsc::channel::<(u64, Instant, Response)>();
    let reader = std::thread::spawn(move || {
        let mut reader = BufReader::new(reader_stream);
        let mut line = String::new();
        for _ in 0..requests {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            let Ok(response) = serde_json::from_str::<Response>(line.trim()) else {
                return;
            };
            let id = response.id();
            if done_tx.send((id, Instant::now(), response)).is_err() {
                return;
            }
        }
    });

    let mut writer = stream;
    let mut sent_at = std::collections::HashMap::new();
    let epoch = Instant::now();
    // Clients phase-stagger across one gap so the fleet sees a smooth
    // ~53 req/s rather than 16-wide synchronized bursts.
    let phase_ms = client_idx * GAP_MS / CLIENTS as u64;
    for j in 0..requests {
        let due = epoch + Duration::from_millis(phase_ms + j * GAP_MS);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let id = client_idx * 1_000_000 + j + 1;
        let request = Request::Place {
            id,
            spec: place_spec(uniq_seed(run_seed, client_idx, j)),
            deadline_ms: Some(DEADLINE_MS),
        };
        let mut line = serde_json::to_string(&request).expect("serialize request");
        line.push('\n');
        sent_at.insert(id, Instant::now());
        if writer.write_all(line.as_bytes()).is_err() {
            out.errors += requests - j;
            break;
        }
    }
    drop(writer);
    let _ = reader.join();

    let slo = Duration::from_millis(slo_ms);
    let mut answered = 0u64;
    while let Ok((id, at, response)) = done_rx.try_recv() {
        answered += 1;
        let Some(&sent) = sent_at.get(&id) else {
            out.errors += 1;
            continue;
        };
        let elapsed = at.duration_since(sent);
        out.latencies_us.push(elapsed.as_micros() as u64);
        match response {
            Response::Placed { report, .. } => {
                if !report.feasible {
                    out.infeasible += 1;
                } else if elapsed <= slo {
                    out.goodput += 1;
                } else {
                    out.late += 1;
                }
            }
            Response::Overloaded { .. } => out.shed += 1,
            _ => out.errors += 1,
        }
    }
    out.errors += out.offered.saturating_sub(answered + out.errors);
    out
}

/// Bring up `backends` in-process daemons and a router over them.
fn start_cluster(backends: usize) -> (Vec<ServerHandle>, RouterHandle) {
    let mut handles = Vec::with_capacity(backends);
    let mut specs = Vec::with_capacity(backends);
    for i in 0..backends {
        let handle = start(ServerConfig {
            workers: WORKERS,
            queue_depth: QUEUE_DEPTH,
            admission_control: true,
            default_deadline_ms: DEADLINE_MS,
            breaker_threshold: u32::MAX,
            backend_id: format!("b{i}"),
            ..ServerConfig::default()
        })
        .expect("start daemon");
        specs.push(BackendSpec {
            addr: handle.addr().to_string(),
            journal: None,
        });
        handles.push(handle);
    }
    let router = rrf_router::start(RouterConfig {
        backends: specs,
        probe_interval_ms: 50,
        ..RouterConfig::default()
    })
    .expect("start router");
    (handles, router)
}

fn run_arm(backends: usize, requests: u64, seed: u64, slo_ms: u64) -> (ArmOutcome, RouterStats) {
    let (handles, router) = start_cluster(backends);
    let addr = router.addr().to_string();
    let mut threads = Vec::new();
    for client_idx in 0..CLIENTS as u64 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            run_client(&addr, client_idx, requests, seed, slo_ms)
        }));
    }
    let mut total = ArmOutcome::default();
    for thread in threads {
        let out = thread.join().expect("client thread panicked");
        total.offered += out.offered;
        total.goodput += out.goodput;
        total.shed += out.shed;
        total.late += out.late;
        total.infeasible += out.infeasible;
        total.errors += out.errors;
        total.latencies_us.extend(out.latencies_us);
    }
    let stats = router.stats();
    router.shutdown();
    for handle in handles {
        handle.shutdown();
    }
    total.latencies_us.sort_unstable();
    (total, stats)
}

fn record(
    arm: &str,
    backends: usize,
    out: &ArmOutcome,
    stats: &RouterStats,
    requests: u64,
    seed: u64,
    slo_ms: u64,
) -> BenchRecord {
    BenchRecord::new("cluster_ablation")
        .param_str("arm", arm)
        .param_u64("backends", backends as u64)
        .param_u64("workers_per_backend", WORKERS as u64)
        .param_u64("queue_depth", QUEUE_DEPTH as u64)
        .param_u64("service_ms", SERVICE_MS)
        .param_u64("clients", CLIENTS as u64)
        .param_u64("gap_ms", GAP_MS)
        .param_u64("requests_per_client", requests)
        .param_u64("slo_ms", slo_ms)
        .param_u64("seed", seed)
        .metric_u64("offered", out.offered)
        .metric_u64("goodput", out.goodput)
        .metric_u64("shed", out.shed)
        .metric_u64("late", out.late)
        .metric_u64("infeasible", out.infeasible)
        .metric_u64("errors", out.errors)
        .metric_u64("routed_requests", stats.routed_requests)
        .metric_u64("router_no_backend", stats.no_backend)
        .metric_u64("router_ejections", stats.ejections)
        .metric_f64(
            "goodput_ratio",
            out.goodput as f64 / out.offered.max(1) as f64,
        )
        .metric_f64("latency_p50_ms", percentile_ms(&out.latencies_us, 50.0))
        .metric_f64("latency_p95_ms", percentile_ms(&out.latencies_us, 95.0))
}

fn main() {
    let mut positional: Vec<u64> = Vec::new();
    let mut out_path = "BENCH_cluster.json".to_string();
    let mut slo_ms = 900u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--slo-ms" => {
                slo_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--slo-ms needs a number")
            }
            other => positional.push(other.parse().unwrap_or_else(|_| {
                eprintln!(
                    "usage: cluster_load [requests_per_client] [seed] [--slo-ms MS] [--out PATH]"
                );
                std::process::exit(2);
            })),
        }
    }
    let requests = positional.first().copied().unwrap_or(40);
    let seed = positional.get(1).copied().unwrap_or(0);

    eprintln!(
        "cluster_load: {CLIENTS} clients x {requests} unique specs every {GAP_MS}ms \
         (~{:.1} req/s, 4x one backend's ~{:.1} req/s), client SLO {slo_ms}ms",
        CLIENTS as f64 * 1000.0 / GAP_MS as f64,
        WORKERS as f64 * 1000.0 / SERVICE_MS as f64,
    );
    let (four, four_stats) = run_arm(4, requests, seed, slo_ms);
    eprintln!(
        "  four_backends: offered {} goodput {} shed {} late {} errors {} (routed {})",
        four.offered, four.goodput, four.shed, four.late, four.errors, four_stats.routed_requests,
    );
    let (one, one_stats) = run_arm(1, requests, seed, slo_ms);
    eprintln!(
        "  one_backend:   offered {} goodput {} shed {} late {} errors {} (routed {})",
        one.offered, one.goodput, one.shed, one.late, one.errors, one_stats.routed_requests,
    );

    let records = vec![
        record(
            "four_backends",
            4,
            &four,
            &four_stats,
            requests,
            seed,
            slo_ms,
        ),
        record("one_backend", 1, &one, &one_stats, requests, seed, slo_ms),
    ];
    write_records(&out_path, &records).expect("write records");
    eprintln!("cluster_load: wrote {out_path}");
    eprintln!(
        "cluster ablation: four_backends goodput {} vs one_backend goodput {} \
         ({:.2}x; the bench_gate stage enforces >= 2.5x)",
        four.goodput,
        one.goodput,
        four.goodput as f64 / one.goodput.max(1) as f64,
    );
}
