//! Ablation A2: heterogeneous vs. homogeneous fabric.
//!
//! The paper's introduction argues that dedicated resources restrict
//! placement (citing a 36% average utilization on a heterogeneous device).
//! This ablation quantifies the penalty in our setup: the same CLB-only
//! workload placed on (a) the homogeneous twin of the canonical region and
//! (b) the heterogeneous region, where BRAM columns fragment the CLB area.
//!
//! Usage: `ablation_heterogeneity [runs] [budget_secs] [modules]`.

#![forbid(unsafe_code)]
use rrf_bench::experiment::{run_arm, workload_modules, ExperimentSetup, TableOneRow};
use rrf_core::{PlacementProblem, PlacerConfig};
use rrf_modgen::{generate_workload, WorkloadSpec};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let modules: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20);
    let config = PlacerConfig {
        time_limit: Some(Duration::from_secs(budget)),
        ..PlacerConfig::default()
    };
    let setup = ExperimentSetup::default();

    eprintln!("A2: heterogeneity ablation, {runs} runs x {modules} CLB-only modules");
    let mut het = Vec::with_capacity(runs);
    let mut hom = Vec::with_capacity(runs);
    for seed in 0..runs as u64 {
        // CLB-only workload so both fabrics can host every module.
        let spec = WorkloadSpec {
            modules,
            bram_min: 0,
            bram_max: 0,
            seed,
            ..WorkloadSpec::default()
        };
        let workload = generate_workload(&spec);
        let modules_v = workload_modules(&workload);
        let het_problem = PlacementProblem::new(setup.region(), modules_v.clone());
        let hom_problem = PlacementProblem::new(setup.homogeneous_region(), modules_v);
        het.push(run_arm(&het_problem, &config));
        hom.push(run_arm(&hom_problem, &config));
    }
    let row_hom = TableOneRow::aggregate("Homogeneous (all CLB)", &hom);
    let row_het = TableOneRow::aggregate("Heterogeneous (BRAM cols)", &het);
    println!(
        "{:<28} {:>11} {:>13} {:>8}",
        "Fabric", "Mean Util.", "Time-to-best", "Proven"
    );
    for row in [&row_hom, &row_het] {
        println!(
            "{:<28} {:>10.1}% {:>12.2}s {:>7.0}%",
            row.label,
            row.mean_util * 100.0,
            row.mean_time_to_best,
            row.proven_fraction * 100.0
        );
    }
    println!(
        "\nHeterogeneity penalty: {:.1}pp of utilization",
        (row_hom.mean_util - row_het.mean_util) * 100.0
    );
}
