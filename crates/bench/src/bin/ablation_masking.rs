//! Ablation A6: masking dedicated resources (the strategy of Becker et
//! al. \[9\] that the paper argues against).
//!
//! Arm A ("use dedicated"): modules use BRAM blocks, placed on the
//! heterogeneous region.
//! Arm B ("mask dedicated"): the same functionality with memories folded
//! into logic at a soft-logic cost factor (default 4 tiles of CLB per BRAM
//! tile — cf. Kuon & Rose on the dedicated/soft gap), BRAM columns treated
//! as dead area.
//!
//! The comparison shows why the paper models resources instead of masking
//! them: masking inflates module area *and* wastes the masked columns.
//!
//! Usage: `ablation_masking [runs] [budget_secs] [modules] [soft_factor]`.

#![forbid(unsafe_code)]
use rrf_bench::experiment::{paper_region, run_arm, workload_modules, TableOneRow};
use rrf_core::{PlacementProblem, PlacerConfig};
use rrf_modgen::{generate_workload, spec::BRAM_BLOCK_TILES, WorkloadSpec};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let modules: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20);
    let soft_factor: i32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(4);
    let config = PlacerConfig {
        time_limit: Some(Duration::from_secs(budget)),
        ..PlacerConfig::default()
    };

    eprintln!("A6: masking ablation, {runs} runs x {modules} modules, soft factor {soft_factor}x");
    let mut dedicated = Vec::with_capacity(runs);
    let mut masked = Vec::with_capacity(runs);
    let mut dedicated_demand = 0i64;
    let mut masked_demand = 0i64;
    for seed in 0..runs as u64 {
        let spec = WorkloadSpec {
            modules,
            seed,
            ..WorkloadSpec::default()
        };
        let workload = generate_workload(&spec);

        // Arm A: as generated.
        let problem = PlacementProblem::new(paper_region(), workload_modules(&workload));
        dedicated_demand += problem.demand();
        dedicated.push(run_arm(&problem, &config));

        // Arm B: memories folded into logic; BRAM columns unusable for the
        // CLB-only modules automatically (resource mismatch).
        let masked_spec = WorkloadSpec {
            bram_min: 0,
            bram_max: 0,
            ..spec
        };
        let mut masked_wl = generate_workload(&masked_spec);
        // Re-derive each module with the soft-logic area added, preserving
        // the pairing between arms.
        for (m, original) in masked_wl.modules.iter_mut().zip(&workload.modules) {
            let soft_clbs = original.clbs + original.brams * BRAM_BLOCK_TILES * soft_factor;
            let mspec = rrf_modgen::ModuleSpec {
                clbs: soft_clbs,
                brams: 0,
                height: 6,
            };
            *m = rrf_modgen::generate_module(
                original.name.clone(),
                &mspec,
                4,
                (4, 8),
                &mut rand::rngs::mock::StepRng::new(seed, 1),
            );
        }
        let masked_problem = PlacementProblem::new(paper_region(), workload_modules(&masked_wl));
        masked_demand += masked_problem.demand();
        masked.push(run_arm(&masked_problem, &config));
    }

    let row_ded = TableOneRow::aggregate("Use dedicated (paper)", &dedicated);
    let row_mask = TableOneRow::aggregate("Mask dedicated ([9])", &masked);
    println!(
        "{:<24} {:>11} {:>11} {:>13}",
        "Strategy", "Mean Util.", "Mean ext.", "Tiles/run"
    );
    let mean_ext = |rs: &[rrf_bench::ArmResult]| {
        rs.iter().map(|r| r.extent as f64).sum::<f64>() / rs.len() as f64
    };
    println!(
        "{:<24} {:>10.1}% {:>11.1} {:>13.0}",
        row_ded.label,
        row_ded.mean_util * 100.0,
        mean_ext(&dedicated),
        dedicated_demand as f64 / runs as f64
    );
    println!(
        "{:<24} {:>10.1}% {:>11.1} {:>13.0}",
        row_mask.label,
        row_mask.mean_util * 100.0,
        mean_ext(&masked),
        masked_demand as f64 / runs as f64
    );
    println!(
        "\nMasking inflates demand by {:.0}% and the consumed extent by {:.0}%",
        (masked_demand as f64 / dedicated_demand as f64 - 1.0) * 100.0,
        (mean_ext(&masked) / mean_ext(&dedicated) - 1.0) * 100.0
    );
}
