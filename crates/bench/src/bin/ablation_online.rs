//! Ablation A8 (extension): online placement — acceptance rate of a
//! runtime insert/remove stream, with vs. without design alternatives.
//!
//! The paper's offline placer exists because online placement fragments;
//! this binary quantifies how much design alternatives help *online*
//! first-fit, where fragmentation is at its worst: modules arrive and
//! depart in a seeded random stream and a rejected request is lost.
//!
//! Usage: `ablation_online [runs] [events] [region_width]`
//! (defaults 10, 300, 120).

#![forbid(unsafe_code)]
use rand::Rng;
use rrf_bench::experiment::ExperimentSetup;
use rrf_bench::workload::{arrive_next, stream_rng, workload_arms};
use rrf_core::{Module, OnlinePlacer};

/// Drive one insert/remove stream; returns (acceptance rate, mean live
/// utilization sampled after every event).
fn simulate(modules: &[Module], width: i32, events: usize, seed: u64) -> (f64, f64) {
    let mut rng = stream_rng(seed);
    let mut placer = OnlinePlacer::new(ExperimentSetup::with_width(width).region());
    let mut live: Vec<u64> = Vec::new();
    let mut util_sum = 0.0;
    for _ in 0..events {
        let arrive = arrive_next(&mut rng, live.is_empty(), placer.utilization());
        if arrive {
            let m = &modules[rng.gen_range(0..modules.len())];
            if let Some(slot) = placer.try_insert(m) {
                live.push(slot);
            }
        } else {
            let idx = rng.gen_range(0..live.len());
            let slot = live.swap_remove(idx);
            assert!(placer.remove(slot));
        }
        util_sum += placer.utilization();
    }
    (placer.stats().acceptance_rate(), util_sum / events as f64)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let events: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);
    let width: i32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(120);

    eprintln!("A8: online stream, {runs} runs x {events} events, {width}-col region");
    let (mut acc_w, mut acc_wo, mut util_w, mut util_wo) = (0.0, 0.0, 0.0, 0.0);
    for seed in 0..runs as u64 {
        let (with, without) = workload_arms(12, seed);
        let (a, u) = simulate(&with, width, events, seed);
        let (a2, u2) = simulate(&without, width, events, seed);
        eprintln!(
            "  run {seed:02}: acceptance with {:.2} / without {:.2}",
            a, a2
        );
        acc_w += a;
        acc_wo += a2;
        util_w += u;
        util_wo += u2;
    }
    let n = runs as f64;
    println!();
    println!("Online first-fit over {events} events (means of {runs} runs):");
    println!(
        "  without alternatives: acceptance {:.1}%, live utilization {:.1}%",
        acc_wo / n * 100.0,
        util_wo / n * 100.0
    );
    println!(
        "  with alternatives:    acceptance {:.1}%, live utilization {:.1}%",
        acc_w / n * 100.0,
        util_w / n * 100.0
    );
    println!(
        "  acceptance gain:      {:+.1}pp",
        (acc_w - acc_wo) / n * 100.0
    );
}
