//! Ablation A7 (extension): service level — how many module requests fit
//! a FIXED region, with vs. without design alternatives.
//!
//! The related work the paper builds on measures placement quality as the
//! fraction of module requests fulfilled; this binary measures it for the
//! offline placer via the longest feasible prefix of a priority-ordered
//! request list.
//!
//! Usage: `ablation_service [runs] [budget_secs] [region_width]`
//! (defaults 10, 3, 120).

#![forbid(unsafe_code)]
use rrf_bench::experiment::{workload_modules, ExperimentSetup};
use rrf_core::{service, PlacementProblem, PlacerConfig};
use rrf_modgen::{generate_workload, WorkloadSpec};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let width: i32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(120);
    let config = PlacerConfig {
        time_limit: Some(Duration::from_secs(budget)),
        ..PlacerConfig::default()
    };

    eprintln!("A7: service level in a fixed {width}-column region, {runs} runs");
    let mut with_total = 0usize;
    let mut without_total = 0usize;
    let mut exact = true;
    for seed in 0..runs as u64 {
        // Oversubscribe: 40 requests, far more than the region holds.
        let spec = WorkloadSpec {
            modules: 40,
            seed,
            ..WorkloadSpec::default()
        };
        let workload = generate_workload(&spec);
        let problem = PlacementProblem::new(
            ExperimentSetup::with_width(width).region(),
            workload_modules(&workload),
        );
        let with = service::max_feasible_prefix(&problem, &config);
        let without = service::max_feasible_prefix(&problem.without_alternatives(), &config);
        exact &= with.exact && without.exact;
        eprintln!(
            "  run {seed:02}: with alternatives {} / without {} of 40 requests",
            with.placed, without.placed
        );
        with_total += with.placed;
        without_total += without.placed;
    }
    let n = runs as f64;
    println!();
    println!("Service level (mean fulfilled requests of 40, fixed {width}-col region):");
    println!("  without alternatives: {:.1}", without_total as f64 / n);
    println!("  with alternatives:    {:.1}", with_total as f64 / n);
    println!(
        "  gain:                 {:+.1} requests ({:.0}%){}",
        (with_total as f64 - without_total as f64) / n,
        (with_total as f64 / without_total.max(1) as f64 - 1.0) * 100.0,
        if exact {
            ""
        } else {
            "  [some probes hit the budget]"
        }
    );
}
