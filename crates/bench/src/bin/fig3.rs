//! Figure 3 reproduction: optimal floorplans with vs. without design
//! alternatives on a heterogeneous region.
//!
//! In the paper's figure every module carries two layouts, the second
//! being the 180° rotation of the first; placing with alternatives fills
//! the region more tightly. We use a small module set so both arms solve
//! to proven optimality and render the two floorplans.

#![forbid(unsafe_code)]
use rrf_bench::experiment::{run_arm, workload_modules, ExperimentSetup};
use rrf_core::{cp, PlacementProblem, PlacerConfig};
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_viz::{render_floorplan, side_by_side};

fn main() {
    let spec = WorkloadSpec {
        modules: 6,
        alternatives: 2, // base + 180° rotation, as in the figure
        ..WorkloadSpec::small(6, 11)
    };
    let workload = generate_workload(&spec);
    let region = ExperimentSetup {
        width: 40,
        height: 8,
        ..ExperimentSetup::default()
    }
    .region();
    let problem = PlacementProblem::new(region, workload_modules(&workload));
    let config = PlacerConfig::exact();

    let with = cp::place(&problem, &config);
    let solo = problem.without_alternatives();
    let without = cp::place(&solo, &config);

    let plan_with = with.plan.expect("feasible with alternatives");
    let plan_without = without.plan.expect("feasible without alternatives");

    let art = side_by_side(
        &format!(
            "Top: modules placed WITH design alternatives (extent {}, proven {})",
            with.extent.unwrap(),
            with.proven
        ),
        &render_floorplan(&problem.region, &problem.modules, &plan_with),
        &format!(
            "Bottom: modules placed WITHOUT design alternatives (extent {}, proven {})",
            without.extent.unwrap(),
            without.proven
        ),
        &render_floorplan(&solo.region, &solo.modules, &plan_without),
    );
    println!("Figure 3 — effect of design alternatives on the optimal floorplan");
    println!("(letters = modules, '.' = free CLB, b = free BRAM)\n");
    println!("{art}");

    // Quantify the figure with the shared runner as well.
    let w = run_arm(&problem, &config);
    let wo = run_arm(&solo, &config);
    println!();
    println!(
        "with alternatives:    utilization {:.1}%, extent {}",
        w.utilization * 100.0,
        w.extent
    );
    println!(
        "without alternatives: utilization {:.1}%, extent {}",
        wo.utilization * 100.0,
        wo.extent
    );
}
