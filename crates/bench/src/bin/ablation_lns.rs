//! Ablation A9 (extension): anytime quality — branch & bound alone vs.
//! greedy + large-neighborhood search, at the same wall-clock budget.
//!
//! Usage: `ablation_lns [runs] [budget_secs] [modules]`
//! (defaults 8, 5, 30).

#![forbid(unsafe_code)]
use rrf_bench::experiment::{paper_region, workload_modules};
use rrf_core::{baseline, cp, lns, metrics, verify, PlacementProblem, PlacerConfig};
use rrf_modgen::{generate_workload, WorkloadSpec};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let modules: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(30);

    eprintln!("A9: BnB vs greedy+LNS at {budget}s, {runs} runs x {modules} modules");
    let (mut bnb_util, mut lns_util, mut bnb_ext, mut lns_ext) = (0.0, 0.0, 0.0, 0.0);
    for seed in 0..runs as u64 {
        let workload = generate_workload(&WorkloadSpec {
            modules,
            seed,
            ..WorkloadSpec::default()
        });
        let problem = PlacementProblem::new(paper_region(), workload_modules(&workload));

        // Arm 1: branch & bound with the full budget.
        let bnb = cp::place(
            &problem,
            &PlacerConfig {
                time_limit: Some(Duration::from_secs(budget)),
                ..PlacerConfig::default()
            },
        );
        let bnb_plan = bnb.plan.expect("feasible");

        // Arm 2: greedy start + LNS with the same budget.
        let start = baseline::bottom_left(&problem).expect("greedy feasible");
        let out = lns::improve(
            &problem,
            start,
            &lns::LnsConfig {
                time_limit: Duration::from_secs(budget),
                seed,
                ..lns::LnsConfig::default()
            },
        );
        assert!(verify::verify(&problem.region, &problem.modules, &out.plan).is_empty());

        let m1 = metrics(&problem.region, &problem.modules, &bnb_plan);
        let m2 = metrics(&problem.region, &problem.modules, &out.plan);
        eprintln!(
            "  run {seed:02}: BnB extent {} util {:.3} | LNS extent {} util {:.3} ({} impr / {} iters)",
            bnb.extent.unwrap(),
            m1.utilization,
            out.extent,
            m2.utilization,
            out.improvements,
            out.iterations
        );
        bnb_util += m1.utilization;
        lns_util += m2.utilization;
        bnb_ext += bnb.extent.unwrap() as f64;
        lns_ext += out.extent as f64;
    }
    let n = runs as f64;
    println!();
    println!("Anytime quality at {budget}s ({runs}-run means):");
    println!(
        "  branch & bound: utilization {:.1}%, extent {:.1}",
        bnb_util / n * 100.0,
        bnb_ext / n
    );
    println!(
        "  greedy + LNS:   utilization {:.1}%, extent {:.1}",
        lns_util / n * 100.0,
        lns_ext / n
    );
}
