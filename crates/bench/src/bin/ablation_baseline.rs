//! Ablation A4: where each placer sits on the quality/time curve —
//! greedy bottom-left vs. simulated annealing vs. the optimal CP placer,
//! all with design alternatives enabled.
//!
//! Usage: `ablation_baseline [runs] [budget_secs] [modules]`
//! (defaults 10, 5, 20).

#![forbid(unsafe_code)]
use rrf_bench::experiment::{paper_region, workload_modules};
use rrf_core::{anneal, baseline, cp, metrics, verify, PlacementProblem, PlacerConfig};
use rrf_modgen::{generate_workload, WorkloadSpec};
use std::time::{Duration, Instant};

struct Row {
    util: f64,
    extent: f64,
    seconds: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let modules: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(20);

    eprintln!("A4: baseline ablation, {runs} runs x {modules} modules");
    let mut rows: Vec<(&str, Vec<Row>)> = vec![
        ("greedy bottom-left", Vec::new()),
        ("simulated annealing", Vec::new()),
        ("CP optimal (budget)", Vec::new()),
    ];
    for seed in 0..runs as u64 {
        let spec = WorkloadSpec {
            modules,
            seed,
            ..WorkloadSpec::default()
        };
        let workload = generate_workload(&spec);
        let problem = PlacementProblem::new(paper_region(), workload_modules(&workload));

        let t = Instant::now();
        let greedy = baseline::bottom_left(&problem).expect("greedy feasible");
        let greedy_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let sa =
            anneal::anneal(&problem, &anneal::AnnealConfig::default()).expect("anneal feasible");
        let sa_s = t.elapsed().as_secs_f64();

        let cp_cfg = PlacerConfig {
            time_limit: Some(Duration::from_secs(budget)),
            ..PlacerConfig::default()
        };
        let t = Instant::now();
        let out = cp::place(&problem, &cp_cfg);
        let cp_s = t.elapsed().as_secs_f64();
        let cp_plan = out.plan.expect("cp feasible");

        let entries = [(&greedy, greedy_s), (&sa, sa_s), (&cp_plan, cp_s)];
        for ((plan, secs), (_, bucket)) in entries.iter().zip(rows.iter_mut()) {
            assert!(verify::verify(&problem.region, &problem.modules, plan).is_empty());
            let m = metrics(&problem.region, &problem.modules, plan);
            bucket.push(Row {
                util: m.utilization,
                extent: m.extent_cols as f64,
                seconds: *secs,
            });
        }
    }

    println!(
        "{:<20} {:>11} {:>11} {:>11}",
        "Placer", "Mean Util.", "Mean ext.", "Mean time"
    );
    for (label, results) in &rows {
        let n = results.len() as f64;
        println!(
            "{:<20} {:>10.1}% {:>11.1} {:>10.3}s",
            label,
            results.iter().map(|r| r.util).sum::<f64>() / n * 100.0,
            results.iter().map(|r| r.extent).sum::<f64>() / n,
            results.iter().map(|r| r.seconds).sum::<f64>() / n
        );
    }
}
