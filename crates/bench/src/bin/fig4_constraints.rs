//! Figure 4 reproduction: the four constraint families, demonstrated one
//! by one on a small region.
//!
//! (a) containment in the partial region's bounding box;
//! (b) resource compatibility — the gray areas of the paper's figure are
//!     the valid anchors we print as a mask;
//! (c) a reconfigurable sub-region with the rest reserved for the static
//!     design;
//! (d) non-overlap — a placed module blocks its footprint for others.

#![forbid(unsafe_code)]
use rrf_bench::experiment::ExperimentSetup;
use rrf_fabric::{Rect, Region, ResourceKind};
use rrf_geost::{allowed_anchors, ShapeDef, ShiftedBox};

/// Render the anchor mask of a shape on a region: '+' where the anchor may
/// go, background codes elsewhere.
fn anchor_mask(region: &Region, shape: &ShapeDef) -> String {
    let anchors = allowed_anchors(region, shape);
    let b = region.bounds();
    let mut out = String::new();
    for y in (b.y..b.y_end()).rev() {
        for x in b.x..b.x_end() {
            if anchors.contains(&rrf_fabric::Point::new(x, y)) {
                out.push('+');
            } else {
                out.push(match region.kind_at(x, y) {
                    ResourceKind::Static => '#',
                    k => k.code(),
                });
            }
        }
        out.push('\n');
    }
    out
}

fn main() {
    let setup = ExperimentSetup {
        width: 24,
        height: 6,
        ..ExperimentSetup::default()
    };
    let region = setup.region();
    let shape = ShapeDef::new(vec![ShiftedBox::new(0, 0, 3, 2, ResourceKind::Clb)]);

    println!("Figure 4 — how the constraint families restrict placement");
    println!("(region codes: c/B = resources, # = unavailable, + = valid anchor)\n");

    // (a) containment: anchors keep the whole module inside the bounds.
    println!("(a) bounding-box containment for a 3x2 CLB module:");
    println!("{}", anchor_mask(&region, &shape));
    let a = allowed_anchors(&region, &shape);
    println!(
        "    {} anchors; none closer than 3 columns to the right edge\n",
        a.len()
    );

    // (b) resource compatibility: same module, BRAM columns block it.
    let bram_shape = ShapeDef::new(vec![ShiftedBox::new(0, 0, 1, 2, ResourceKind::Bram)]);
    println!("(b) resource compatibility for a 1x2 BRAM module (snaps to BRAM columns):");
    println!("{}", anchor_mask(&region, &bram_shape));

    // (c) static region: mask the right half (the paper: ~50% static).
    let mut masked = setup.region();
    masked.add_static_mask(Rect::new(12, 0, 12, 6));
    println!("(c) the same CLB module with the right half reserved for the static design:");
    println!("{}", anchor_mask(&masked, &shape));

    // (d) non-overlap: place one module, show the blocked area.
    let module = rrf_core::Module::new("blk", vec![shape.clone()]);
    let plan = rrf_core::Floorplan::new(vec![rrf_core::PlacedModule {
        module: 0,
        shape: 0,
        x: 5,
        y: 2,
    }]);
    println!("(d) a placed module (A) excludes its tiles from every other module:");
    println!("{}", rrf_viz::render_floorplan(&region, &[module], &plan));
}
