//! `cache_load` — the cache ablation (A13): do sharding + single-flight
//! coalescing buy goodput on a duplicate-heavy workload at saturation,
//! or is the plain global-map cache already enough?
//!
//! Two arms against in-process daemons with identical capacity
//! (4 workers, deep queue), each offered the same **open-loop** load:
//!
//! * **coalesced** — this PR's configuration: sharded cache
//!   (`cache_shards: 8`) with single-flight coalescing on.
//! * **baseline** — `cache_shards: 1`, coalescing off: the old global
//!   `Mutex<PlacementCache>` behavior. The cache itself still works —
//!   this arm is *not* cacheless — so the ablation isolates exactly what
//!   the tentpole added.
//!
//! The workload is the shape that actually separates them. A plain LRU
//! cache already rescues any duplicate that arrives *after* the first
//! solve completes; what it cannot rescue is the **mid-flight
//! duplicate** — a request for the same spec that arrives while the
//! first solve is still running. The baseline dispatches each of those
//! onto a free worker for a full redundant solve; with duplicates
//! recurring every service window, that alone pins every worker
//! (`WORKERS x SERVICE_MS` of redundant work per window — exactly 100%
//! of capacity). The coalescing arm parks the same requests on the
//! leader's flight and releases them the moment it publishes, paying
//! only the *remainder* of the window. A modest background stream of
//! unique specs then decides the outcome: the coalescing arm absorbs it
//! with the headroom coalescing freed, while the baseline — already at
//! capacity from redundant work — falls behind without bound, and its
//! queueing delay grows past the client SLO (the classic goodput
//! collapse, here triggered by duplicates rather than raw load).
//!
//! Concretely, per 150 ms wave: `HOT_CLIENTS` connections fire the
//! *identical* spec (a fresh key each wave, so nothing is pre-cached) at
//! phases clustered late in the wave, and the unique stream offers
//! ~1.3 cache-busting specs. Hot deadlines descend with phase so every
//! follower's remaining budget sits below the leader's in-flight budget
//! and the existing budget-compatibility rule lets it join. Per-request
//! CP cost is pinned by the spec's own `time_limit_ms`; the circuit
//! breaker is pinned off in both arms (orthogonal, and it would perturb
//! the fixed service cost the capacity math relies on).
//!
//! **Goodput** is a response that is feasible *and arrived within the
//! client's SLO of the send time* — same judge as `overload_load`. The
//! binary writes both arms to `BENCH_cache.json` (shared `BenchRecord`
//! schema); the `bench_gate` binary enforces the floor (coalesced
//! goodput at least 2x the baseline's).
//!
//! Usage: `cache_load [waves] [seed] [--slo-ms MS] [--out PATH]`
//! (defaults 48, 0, 600).

#![forbid(unsafe_code)]
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rrf_bench::record::{write_records, BenchRecord};
use rrf_bench::workload::{percentile_ms, small_region_spec};
use rrf_flow::{FlowSpec, ModuleEntry, PlacerSettings};
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_server::{start, Request, Response, ServerConfig};

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const WORKERS: usize = 4;
/// Deep queue: the baseline should fail by *lateness* (unbounded
/// queueing delay), not by shedding the burst at the door — admission
/// control is identical in both arms and is not the variable here.
const QUEUE_DEPTH: usize = 64;
/// Per-request CP budget (the spec's own time limit): the pinned service
/// cost, which is also the wave period — each wave's duplicates arrive
/// while their leader is still solving.
const SERVICE_MS: u64 = 150;
/// Modules per generated spec (see `overload_load`): big enough that CP
/// genuinely uses its budget, small enough that greedy stays feasible.
const SPEC_MODULES: usize = 8;

/// Connections firing the identical spec each wave. Phases cluster late
/// in the wave: a duplicate arriving at phase p costs the baseline a
/// full redundant solve (occupying a worker until p + SERVICE_MS, past
/// the wave boundary) but costs the coalescing arm only the remainder
/// of the leader's window (SERVICE_MS - p).
const HOT_CLIENTS: usize = 6;
const HOT_PHASES_MS: [u64; HOT_CLIENTS] = [0, 95, 105, 115, 125, 135];
/// Hot deadlines descend with phase: each follower's remaining budget is
/// strictly under the leader's flight budget (400 ms step, far above
/// scheduling jitter), so the budget-compatibility rule admits the join.
const HOT_DEADLINES_MS: [u64; HOT_CLIENTS] = [6_000, 5_600, 5_200, 4_800, 4_400, 4_000];

/// The background stream of unique (cache-busting) specs: ~200 worker-ms
/// per 150 ms wave. Inside the headroom coalescing frees; on top of a
/// baseline already saturated by redundant duplicate solves.
const UNIQ_CLIENTS: usize = 2;
const UNIQ_GAP_MS: u64 = 225;
const UNIQ_DEADLINE_MS: u64 = 6_000;

/// Spec for one key: hot waves share `seed` across clients (that is the
/// duplication), uniques never repeat one.
fn place_spec(seed: u64) -> FlowSpec {
    let workload = generate_workload(&WorkloadSpec::small(SPEC_MODULES, seed));
    FlowSpec {
        region: small_region_spec(),
        modules: workload
            .modules
            .into_iter()
            .map(|m| ModuleEntry {
                name: m.name,
                shapes: m.shapes,
                netlist: None,
            })
            .collect(),
        placer: PlacerSettings {
            time_limit_ms: Some(SERVICE_MS),
            ..PlacerSettings::default()
        },
    }
}

/// One open-loop client's send schedule and key material.
struct ClientPlan {
    client_idx: u64,
    phase_ms: u64,
    gap_ms: u64,
    requests: u64,
    deadline_ms: u64,
    /// Spec seed for request `j`; hot clients share this function.
    seed_of: fn(seed: u64, client_idx: u64, j: u64) -> u64,
    run_seed: u64,
}

fn hot_seed(seed: u64, _client_idx: u64, j: u64) -> u64 {
    (1 << 32) | (seed << 20) | j
}

fn uniq_seed(seed: u64, client_idx: u64, j: u64) -> u64 {
    (2 << 32) | (seed << 20) | (client_idx << 12) | j
}

#[derive(Default)]
struct ArmOutcome {
    offered: u64,
    goodput: u64,
    shed: u64,
    late: u64,
    infeasible: u64,
    errors: u64,
    latencies_us: Vec<u64>,
    /// From the daemon's own counters, read before shutdown.
    solves: u64,
    coalesced_joins: u64,
    coalesced_leader_solves: u64,
    cache_hits: u64,
}

/// One open-loop client: a sender thread fires on the fixed schedule
/// (never waiting for replies), a reader thread stamps arrivals.
fn run_client(addr: &str, plan: &ClientPlan, slo_ms: u64) -> ArmOutcome {
    let mut out = ArmOutcome {
        offered: plan.requests,
        ..ArmOutcome::default()
    };
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(_) => {
            out.errors = plan.requests;
            return out;
        }
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let reader_stream = stream.try_clone().unwrap();
    let requests = plan.requests;
    let (done_tx, done_rx) = mpsc::channel::<(u64, Instant, Response)>();
    let reader = std::thread::spawn(move || {
        let mut reader = BufReader::new(reader_stream);
        let mut line = String::new();
        for _ in 0..requests {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            let Ok(response) = serde_json::from_str::<Response>(line.trim()) else {
                return;
            };
            let id = response.id();
            if done_tx.send((id, Instant::now(), response)).is_err() {
                return;
            }
        }
    });

    let mut writer = stream;
    let mut sent_at = std::collections::HashMap::new();
    let epoch = Instant::now();
    for j in 0..plan.requests {
        let due = epoch + Duration::from_millis(plan.phase_ms + j * plan.gap_ms);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let id = plan.client_idx * 1_000_000 + j + 1;
        let spec = place_spec((plan.seed_of)(plan.run_seed, plan.client_idx, j));
        let request = Request::Place {
            id,
            spec,
            deadline_ms: Some(plan.deadline_ms),
        };
        let mut line = serde_json::to_string(&request).expect("serialize request");
        line.push('\n');
        sent_at.insert(id, Instant::now());
        if writer.write_all(line.as_bytes()).is_err() {
            out.errors += plan.requests - j;
            break;
        }
    }
    drop(writer);
    let _ = reader.join();

    let slo = Duration::from_millis(slo_ms);
    let mut answered = 0u64;
    while let Ok((id, at, response)) = done_rx.try_recv() {
        answered += 1;
        let Some(&sent) = sent_at.get(&id) else {
            out.errors += 1;
            continue;
        };
        let elapsed = at.duration_since(sent);
        out.latencies_us.push(elapsed.as_micros() as u64);
        match response {
            Response::Placed { report, .. } => {
                if !report.feasible {
                    out.infeasible += 1;
                } else if elapsed <= slo {
                    out.goodput += 1;
                } else {
                    out.late += 1;
                }
            }
            Response::Overloaded { .. } => out.shed += 1,
            _ => out.errors += 1,
        }
    }
    out.errors += out.offered.saturating_sub(answered + out.errors);
    out
}

/// Read the daemon's own counters over a fresh connection.
fn read_counters(addr: &str, out: &mut ArmOutcome) {
    let Ok(stream) = TcpStream::connect(addr) else {
        return;
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut roundtrip = |request: &Request| -> Option<Response> {
        let mut line = serde_json::to_string(request).ok()?;
        line.push('\n');
        writer.write_all(line.as_bytes()).ok()?;
        let mut reply = String::new();
        reader.read_line(&mut reply).ok()?;
        serde_json::from_str(reply.trim()).ok()
    };
    if let Some(Response::Stats { stats, .. }) = roundtrip(&Request::Stats { id: 1 }) {
        out.solves = stats.solves();
        out.cache_hits = stats.cache_hits;
    }
    if let Some(Response::StatsDetail { detail, .. }) = roundtrip(&Request::StatsDetail { id: 2 }) {
        out.coalesced_joins = detail.cache.coalesced_joins;
        out.coalesced_leader_solves = detail.cache.coalesced_leader_solves;
    }
}

fn run_arm(coalesce: bool, waves: u64, seed: u64, slo_ms: u64) -> ArmOutcome {
    let handle = start(ServerConfig {
        workers: WORKERS,
        queue_depth: QUEUE_DEPTH,
        admission_control: true,
        default_deadline_ms: UNIQ_DEADLINE_MS,
        // Pinned off (see module docs): orthogonal to the cache variable.
        breaker_threshold: u32::MAX,
        // Roomy enough that no key is evicted mid-run: ~1 hot key per
        // wave plus every unique.
        cache_capacity: 512,
        cache_shards: if coalesce { 8 } else { 1 },
        coalesce,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();

    let mut plans = Vec::new();
    for i in 0..HOT_CLIENTS {
        plans.push(ClientPlan {
            client_idx: i as u64,
            phase_ms: HOT_PHASES_MS[i],
            gap_ms: SERVICE_MS,
            requests: waves,
            deadline_ms: HOT_DEADLINES_MS[i],
            seed_of: hot_seed,
            run_seed: seed,
        });
    }
    let uniq_requests = (waves * SERVICE_MS).div_ceil(UNIQ_GAP_MS);
    for i in 0..UNIQ_CLIENTS {
        plans.push(ClientPlan {
            client_idx: (HOT_CLIENTS + i) as u64,
            phase_ms: i as u64 * UNIQ_GAP_MS / UNIQ_CLIENTS as u64,
            gap_ms: UNIQ_GAP_MS,
            requests: uniq_requests,
            deadline_ms: UNIQ_DEADLINE_MS,
            seed_of: uniq_seed,
            run_seed: seed,
        });
    }

    let mut threads = Vec::new();
    for plan in plans {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || run_client(&addr, &plan, slo_ms)));
    }
    let mut total = ArmOutcome::default();
    for thread in threads {
        let out = thread.join().expect("client thread panicked");
        total.offered += out.offered;
        total.goodput += out.goodput;
        total.shed += out.shed;
        total.late += out.late;
        total.infeasible += out.infeasible;
        total.errors += out.errors;
        total.latencies_us.extend(out.latencies_us);
    }
    read_counters(&addr, &mut total);
    handle.shutdown();
    total.latencies_us.sort_unstable();
    total
}

fn record(arm: &str, out: &ArmOutcome, waves: u64, seed: u64, slo_ms: u64) -> BenchRecord {
    BenchRecord::new("cache_ablation")
        .param_str("arm", arm)
        .param_u64("workers", WORKERS as u64)
        .param_u64("queue_depth", QUEUE_DEPTH as u64)
        .param_u64("service_ms", SERVICE_MS)
        .param_u64("waves", waves)
        .param_u64("hot_clients", HOT_CLIENTS as u64)
        .param_u64("uniq_clients", UNIQ_CLIENTS as u64)
        .param_u64("uniq_gap_ms", UNIQ_GAP_MS)
        .param_u64("slo_ms", slo_ms)
        .param_u64("seed", seed)
        .metric_u64("offered", out.offered)
        .metric_u64("goodput", out.goodput)
        .metric_u64("shed", out.shed)
        .metric_u64("late", out.late)
        .metric_u64("infeasible", out.infeasible)
        .metric_u64("errors", out.errors)
        .metric_u64("solves", out.solves)
        .metric_u64("cache_hits", out.cache_hits)
        .metric_u64("coalesced_joins", out.coalesced_joins)
        .metric_u64("coalesced_leader_solves", out.coalesced_leader_solves)
        .metric_f64(
            "goodput_ratio",
            out.goodput as f64 / out.offered.max(1) as f64,
        )
        .metric_f64("latency_p50_ms", percentile_ms(&out.latencies_us, 50.0))
        .metric_f64("latency_p95_ms", percentile_ms(&out.latencies_us, 95.0))
}

fn main() {
    let mut positional: Vec<u64> = Vec::new();
    let mut out_path = "BENCH_cache.json".to_string();
    let mut slo_ms = 600u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--slo-ms" => {
                slo_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--slo-ms needs a number")
            }
            other => positional.push(other.parse().unwrap_or_else(|_| {
                eprintln!("usage: cache_load [waves] [seed] [--slo-ms MS] [--out PATH]");
                std::process::exit(2);
            })),
        }
    }
    let waves = positional.first().copied().unwrap_or(48);
    let seed = positional.get(1).copied().unwrap_or(0);

    eprintln!(
        "cache_load: {waves} waves x {HOT_CLIENTS} duplicate clients every {SERVICE_MS}ms \
         + {UNIQ_CLIENTS} unique clients every {UNIQ_GAP_MS}ms, client SLO {slo_ms}ms"
    );
    let coalesced = run_arm(true, waves, seed, slo_ms);
    eprintln!(
        "  coalesced: offered {} goodput {} shed {} late {} errors {} \
         (solves {}, joins {}, leader_solves {})",
        coalesced.offered,
        coalesced.goodput,
        coalesced.shed,
        coalesced.late,
        coalesced.errors,
        coalesced.solves,
        coalesced.coalesced_joins,
        coalesced.coalesced_leader_solves,
    );
    let baseline = run_arm(false, waves, seed, slo_ms);
    eprintln!(
        "  baseline:  offered {} goodput {} shed {} late {} errors {} (solves {})",
        baseline.offered,
        baseline.goodput,
        baseline.shed,
        baseline.late,
        baseline.errors,
        baseline.solves,
    );

    let records = vec![
        record("coalesced", &coalesced, waves, seed, slo_ms),
        record("baseline", &baseline, waves, seed, slo_ms),
    ];
    write_records(&out_path, &records).expect("write records");
    eprintln!("cache_load: wrote {out_path}");

    // Floors live in `bench_gate`: coalesced goodput must be >= 2x the
    // baseline on this duplicate-heavy workload.
    eprintln!(
        "cache_load: coalesced goodput {} vs baseline {} (bench_gate enforces the floor)",
        coalesced.goodput, baseline.goodput
    );
}
