//! `bench_gate` — the unified bench-regression gate.
//!
//! Reads every committed `BENCH_*.json` artifact and enforces each
//! ablation's floor in one place, replacing the per-binary exit-1
//! checks that used to be copy-pasted into `sched_load`,
//! `overload_load`, and `cache_load`. The load binaries now only
//! *measure and record*; this binary *judges* — so a fresh measurement
//! and a committed artifact are gated by exactly the same rules, and
//! adding a floor means adding one rule here instead of another inline
//! check somewhere.
//!
//! Floors (one rule per `bench` name):
//!
//! | bench             | floor                                                        |
//! |-------------------|--------------------------------------------------------------|
//! | sched_load        | alternatives arm: more goodput area AND no worse miss rate   |
//! | overload_ablation | admission goodput strictly above no-shedding goodput         |
//! | cache_ablation    | coalesced goodput >= 2x baseline goodput                     |
//! | cluster_ablation  | four-backend goodput >= 2.5x one-backend goodput             |
//!
//! An artifact whose `bench` name has no rule **fails** the gate — a new
//! ablation must land with its floor, not silently ride along.
//!
//! Usage: `bench_gate [FILE...]` (defaults to the four committed
//! artifacts). Prints a floor/actual line per rule; exits nonzero if any
//! floor is violated, any file is missing, or any record is unjudged.

#![forbid(unsafe_code)]

use serde_json::Value;

/// One arm's metrics, looked up by the `arm` param.
struct Arm<'a> {
    metrics: &'a Value,
}

impl Arm<'_> {
    fn metric(&self, key: &str) -> f64 {
        match self.metrics.get(key) {
            Some(Value::UInt(n)) => *n as f64,
            Some(Value::Int(n)) => *n as f64,
            Some(Value::Float(f)) => *f,
            _ => panic!("metric {key} missing or non-numeric"),
        }
    }
}

fn arm<'a>(records: &'a [Value], bench: &str, name: &str) -> Arm<'a> {
    for record in records {
        let is_bench = record.get("bench").and_then(Value::as_str) == Some(bench);
        let is_arm = record
            .get("params")
            .and_then(|p| p.get("arm"))
            .and_then(Value::as_str)
            == Some(name);
        if is_bench && is_arm {
            let metrics = record
                .get("metrics")
                .unwrap_or_else(|| panic!("{bench}/{name}: metrics missing"));
            return Arm { metrics };
        }
    }
    panic!("{bench}: arm {name:?} not found");
}

/// One gate verdict: floor description, actual, pass.
struct Verdict {
    rule: String,
    pass: bool,
}

fn judge(path: &str, records: &[Value]) -> Vec<Verdict> {
    let benches: std::collections::BTreeSet<&str> = records
        .iter()
        .filter_map(|r| r.get("bench").and_then(Value::as_str))
        .collect();
    let mut verdicts = Vec::new();
    for bench in benches {
        match bench {
            "sched_load" => {
                let with = arm(records, bench, "with_alternatives");
                let without = arm(records, bench, "without_alternatives");
                let miss = |a: &Arm| {
                    (a.metric("rejected") + a.metric("deadline_misses"))
                        / a.metric("submitted").max(1.0)
                };
                let (gw, go) = (
                    with.metric("goodput_area_ticks"),
                    without.metric("goodput_area_ticks"),
                );
                let (mw, mo) = (miss(&with), miss(&without));
                verdicts.push(Verdict {
                    rule: format!(
                        "sched: alternatives goodput_area {gw} > {go} and miss {mw:.3} <= {mo:.3}"
                    ),
                    pass: gw > go && mw <= mo,
                });
            }
            "overload_ablation" => {
                let with = arm(records, bench, "admission");
                let without = arm(records, bench, "no_shedding");
                let (gw, go) = (with.metric("goodput"), without.metric("goodput"));
                verdicts.push(Verdict {
                    rule: format!("overload: admission goodput {gw} > no_shedding {go}"),
                    pass: gw > go,
                });
            }
            "cache_ablation" => {
                let with = arm(records, bench, "coalesced");
                let without = arm(records, bench, "baseline");
                let (gw, go) = (with.metric("goodput"), without.metric("goodput"));
                verdicts.push(Verdict {
                    rule: format!("cache: coalesced goodput {gw} >= 2x baseline {go}"),
                    pass: gw >= 2.0 * go.max(1.0),
                });
            }
            "cluster_ablation" => {
                let four = arm(records, bench, "four_backends");
                let one = arm(records, bench, "one_backend");
                let (gf, go) = (four.metric("goodput"), one.metric("goodput"));
                verdicts.push(Verdict {
                    rule: format!("cluster: four_backends goodput {gf} >= 2.5x one_backend {go}"),
                    pass: gf >= 2.5 * go.max(1.0),
                });
            }
            other => verdicts.push(Verdict {
                rule: format!("{path}: bench {other:?} has no gate rule — add its floor here"),
                pass: false,
            }),
        }
    }
    if verdicts.is_empty() {
        verdicts.push(Verdict {
            rule: format!("{path}: no records"),
            pass: false,
        });
    }
    verdicts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--help" || a == "-h") {
        eprintln!("usage: bench_gate [FILE...]  (default: the four committed BENCH_*.json)");
        return;
    }
    let defaults = [
        "BENCH_sched.json",
        "BENCH_overload.json",
        "BENCH_cache.json",
        "BENCH_cluster.json",
    ];
    let files: Vec<String> = if args.is_empty() {
        defaults.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("FAIL {path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let records: Vec<Value> = match serde_json::from_str::<Value>(&text) {
            Ok(Value::Array(records)) => records,
            Ok(_) => {
                eprintln!("FAIL {path}: not a JSON array of records");
                failed = true;
                continue;
            }
            Err(e) => {
                eprintln!("FAIL {path}: unparseable: {e}");
                failed = true;
                continue;
            }
        };
        for verdict in judge(path, &records) {
            let tag = if verdict.pass { "ok  " } else { "FAIL" };
            eprintln!("{tag} {}", verdict.rule);
            failed |= !verdict.pass;
        }
    }
    if failed {
        eprintln!("bench_gate: floors violated");
        std::process::exit(1);
    }
    eprintln!("bench_gate: all floors hold");
}
