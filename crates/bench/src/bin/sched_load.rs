//! `sched_load` — open-loop Poisson task stream against the `rrf-sched`
//! reservation scheduler, with vs. without design alternatives.
//!
//! This is the scheduling arm of the paper's tradeoff: a module with
//! several footprints gives the admission controller a *latency* lever
//! (narrow shapes reconfigure in fewer frames and fit tighter gaps), so
//! at equal offered load the alternatives arm should convert the same
//! arrivals into more completed work and fewer deadline misses. Arrivals
//! are open-loop — the stream does not slow down when the fabric is
//! full — and both arms replay the identical arrival/deadline sequence.
//!
//! Reports goodput (useful tile·ticks of completed work), the
//! deadline-miss rate, and wall-clock admission latency percentiles, and
//! writes the result as a [`rrf_bench::BenchRecord`] artifact
//! (`BENCH_sched.json` in CI).
//!
//! Usage: `sched_load [tasks] [seeds] [mean_gap] [--out FILE]`
//! (defaults 120, 3, 40).

#![forbid(unsafe_code)]
use std::time::Instant;

use rand::Rng;
use rrf_bench::workload::{percentile_us, stream_rng, PoissonArrivals};
use rrf_bench::{write_records, BenchRecord};
use rrf_fabric::device::{self, ColumnLayout};
use rrf_fabric::Region;
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_sched::{SchedConfig, Scheduler, TaskSpec};

/// One arm's aggregate over all seeds.
#[derive(Default)]
struct ArmTotals {
    submitted: u64,
    admitted: u64,
    rejected: u64,
    completed: u64,
    deadline_misses: u64,
    goodput: u64,
    admit_us: Vec<u64>,
}

/// The scheduling fabric: a narrow column-structured region (BRAM column
/// every 8 columns, like the paper's device) — tight enough that footprint
/// choice decides what fits next to what, and BRAM-bearing modules have
/// only a few legal anchors per shape.
fn sched_region() -> Region {
    Region::whole(device::columns(
        24,
        8,
        ColumnLayout {
            bram_period: 8,
            bram_offset: 4,
            dsp_period: 0,
            dsp_offset: 0,
            io_ring: 0,
            center_clock: false,
        },
    ))
}

/// Drive one seeded stream through one scheduler arm. `single_shape`
/// freezes every module to its first footprint (the no-alternatives arm);
/// everything else — arrivals, durations, deadlines, priorities — draws
/// from the same seed and is bit-identical across arms.
fn run_arm(tasks: u64, seed: u64, mean_gap: f64, single_shape: bool, totals: &mut ArmTotals) {
    let workload = generate_workload(&WorkloadSpec::small(8, seed));
    let modules: Vec<_> = workload
        .modules
        .into_iter()
        .map(|mut m| {
            if single_shape {
                m.shapes.truncate(1);
            }
            rrf_flow::ModuleEntry {
                name: m.name,
                shapes: m.shapes,
                netlist: None,
            }
        })
        .collect();

    let mut sched = Scheduler::new(
        sched_region(),
        SchedConfig {
            cp_fail_limit: 300,
            ..SchedConfig::default()
        },
    );
    let arrivals = PoissonArrivals { mean_gap };
    let mut rng = stream_rng(seed);
    let mut at = 0u64;
    for i in 0..tasks {
        at += arrivals.next_gap(&mut rng);
        let duration = 50 + rng.gen_range(0..400);
        // Three in four tasks carry a deadline a small multiple of their
        // run time away — tight enough that configuration frames matter.
        let deadline = if rng.gen_bool(0.75) {
            Some(at + duration * rng.gen_range(2..4) + 64)
        } else {
            None
        };
        let priority = rng.gen_range(0..3);
        sched.advance_to(at);
        let spec = TaskSpec {
            module: modules[(i as usize) % modules.len()].clone(),
            arrival: at,
            duration,
            deadline,
            priority,
        };
        let task = spec.resolve().expect("generated modules resolve");
        let started = Instant::now();
        let (admitted, _) = sched.submit(task);
        totals.admit_us.push(started.elapsed().as_micros() as u64);
        totals.submitted += 1;
        match admitted {
            Some(_) => totals.admitted += 1,
            None => totals.rejected += 1,
        }
    }
    // Drain: run the clock far enough that every reservation finishes.
    sched.advance_to(at + 1_000_000);
    let s = sched.stats();
    totals.completed += s.completed;
    totals.deadline_misses += s.deadline_misses;
    totals.goodput += s.useful_area_ticks;
}

fn record(arm: &str, tasks: u64, seeds: u64, mean_gap: f64, t: &mut ArmTotals) -> BenchRecord {
    t.admit_us.sort_unstable();
    // Misses are rejections *and* expiries: an arrival turned away at
    // admission missed its deadline as surely as one that expired in
    // queue. Open-loop load makes the denominator the same for both arms.
    let offered = t.submitted.max(1);
    let miss_rate = (t.rejected + t.deadline_misses) as f64 / offered as f64;
    BenchRecord::new("sched_load")
        .param_str("arm", arm)
        .param_u64("tasks_per_seed", tasks)
        .param_u64("seeds", seeds)
        .param_f64("mean_gap_ticks", mean_gap)
        .metric_u64("submitted", t.submitted)
        .metric_u64("admitted", t.admitted)
        .metric_u64("rejected", t.rejected)
        .metric_u64("completed", t.completed)
        .metric_u64("deadline_misses", t.deadline_misses)
        .metric_f64("miss_rate", miss_rate)
        .metric_u64("goodput_area_ticks", t.goodput)
        .metric_u64("admit_p50_us", percentile_us(&t.admit_us, 50.0))
        .metric_u64("admit_p99_us", percentile_us(&t.admit_us, 99.0))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut out: Option<String> = None;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().expect("--out needs a path").clone()),
            other => positional.push(other),
        }
    }
    let tasks: u64 = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let seeds: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let mean_gap: f64 = positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40.0);

    eprintln!(
        "sched_load: {seeds} seeds x {tasks} tasks, Poisson mean gap {mean_gap} ticks, \
         24x8 column fabric"
    );
    let mut with = ArmTotals::default();
    let mut without = ArmTotals::default();
    for seed in 0..seeds {
        run_arm(tasks, seed, mean_gap, false, &mut with);
        run_arm(tasks, seed, mean_gap, true, &mut without);
    }

    let rec_with = record("with_alternatives", tasks, seeds, mean_gap, &mut with);
    let rec_without = record("without_alternatives", tasks, seeds, mean_gap, &mut without);

    let report = |label: &str, t: &ArmTotals| {
        let offered = t.submitted.max(1);
        println!(
            "  {label}: {}/{} admitted, {} completed, {} misses \
             (miss rate {:.1}%), goodput {} tile·ticks, admit p50 {}us p99 {}us",
            t.admitted,
            t.submitted,
            t.completed,
            t.deadline_misses,
            (t.rejected + t.deadline_misses) as f64 / offered as f64 * 100.0,
            t.goodput,
            percentile_us(&t.admit_us, 50.0),
            percentile_us(&t.admit_us, 99.0),
        );
    };
    println!(
        "Open-loop schedule load ({} tasks offered per arm):",
        with.submitted
    );
    report("without alternatives", &without);
    report("with alternatives:  ", &with);
    let goodput_gain = with.goodput as f64 / without.goodput.max(1) as f64 * 100.0 - 100.0;
    println!("  goodput gain with alternatives: {goodput_gain:+.1}%");

    if let Some(path) = out {
        write_records(&path, &[rec_with, rec_without]).expect("write bench record");
        eprintln!("wrote {path}");
    }

    // Floors live in `bench_gate`, which judges the written record the
    // same way whether it is freshly measured or committed.
    eprintln!("sched_load: floors are enforced by the bench_gate stage");
}
