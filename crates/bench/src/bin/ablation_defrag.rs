//! Ablation A10 (extension): defragmentation — how much extent an optimal
//! repack recovers after online churn.
//!
//! Online placement fragments the region (the paper's core motivation for
//! offline optimal placement). This experiment runs an insert/remove
//! stream, freezes the surviving modules, and compares the fragmented
//! live state against an optimal offline repack of the same modules —
//! the columns recovered are the fragmentation the online placer accrued.
//!
//! Usage: `ablation_defrag [runs] [events] [budget_secs]`
//! (defaults 8, 200, 5).

#![forbid(unsafe_code)]
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rrf_bench::experiment::{workload_modules, ExperimentSetup};
use rrf_core::{
    cp, verify, Floorplan, Module, OnlinePlacer, PlacedModule, PlacementProblem, PlacerConfig,
};
use rrf_modgen::{generate_workload, WorkloadSpec};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let events: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);
    let budget: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5);
    let setup = ExperimentSetup::with_width(160);

    eprintln!("A10: defragmentation after {events} online events, {runs} runs");
    let (mut frag_ext, mut packed_ext, mut recovered) = (0.0, 0.0, 0.0);
    for seed in 0..runs as u64 {
        let workload = generate_workload(&WorkloadSpec {
            modules: 10,
            seed,
            ..WorkloadSpec::default()
        });
        let catalog = workload_modules(&workload);
        let mut placer = OnlinePlacer::new(setup.region());
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        let mut live: Vec<(u64, usize)> = Vec::new();
        for _ in 0..events {
            if live.is_empty() || rng.gen_bool(0.6) {
                let mi = rng.gen_range(0..catalog.len());
                if let Some(slot) = placer.try_insert(&catalog[mi]) {
                    live.push((slot, mi));
                }
            } else {
                let i = rng.gen_range(0..live.len());
                let (slot, _) = live.swap_remove(i);
                placer.remove(slot);
            }
        }
        // Freeze the survivors as a placement problem.
        let modules: Vec<Module> = live.iter().map(|&(_, mi)| catalog[mi].clone()).collect();
        let fragmented = Floorplan::new(
            live.iter()
                .enumerate()
                .map(|(i, &(slot, _))| {
                    let p = placer.placement_of(slot).unwrap();
                    PlacedModule {
                        module: i,
                        shape: p.shape,
                        x: p.x,
                        y: p.y,
                    }
                })
                .collect(),
        );
        let problem = PlacementProblem::new(setup.region(), modules);
        assert!(verify::verify(&problem.region, &problem.modules, &fragmented).is_empty());
        let frag = fragmented.x_extent(&problem.modules, 0) as f64;

        let out = cp::place(
            &problem,
            &PlacerConfig {
                time_limit: Some(Duration::from_secs(budget)),
                ..PlacerConfig::default()
            },
        );
        let packed = out.extent.expect("live set is feasible by construction") as f64;
        eprintln!(
            "  run {seed:02}: {} live modules, fragmented extent {frag:.0} -> repacked {packed:.0}",
            problem.modules.len()
        );
        frag_ext += frag;
        packed_ext += packed;
        recovered += frag - packed;
    }
    let n = runs as f64;
    println!();
    println!("Defragmentation (means of {runs} runs):");
    println!(
        "  fragmented extent after churn: {:.1} columns",
        frag_ext / n
    );
    println!(
        "  optimal repacked extent:       {:.1} columns",
        packed_ext / n
    );
    println!(
        "  recovered by defragmentation:  {:.1} columns",
        recovered / n
    );
}
