//! Ablation A1: utilization and solve time vs. the number of design
//! alternatives per module (the paper only reports 1 vs. 4).
//!
//! Usage: `ablation_alternatives [runs] [budget_secs] [modules]`
//! (defaults 10, 5, 30).

#![forbid(unsafe_code)]
use rrf_bench::experiment::{paper_region, run_arm, workload_modules, TableOneRow};
use rrf_core::{PlacementProblem, PlacerConfig};
use rrf_modgen::{generate_workload, WorkloadSpec};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let modules: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(30);
    let config = PlacerConfig {
        time_limit: Some(Duration::from_secs(budget)),
        ..PlacerConfig::default()
    };

    eprintln!("A1: alternatives sweep, {runs} runs x {modules} modules, {budget}s budget");
    println!(
        "{:<14} {:>11} {:>13} {:>12} {:>8}",
        "Alternatives", "Mean Util.", "Time-to-best", "Mean shapes", "Proven"
    );
    for alternatives in 1..=4usize {
        let mut results = Vec::with_capacity(runs);
        let mut total_shapes = 0usize;
        for seed in 0..runs as u64 {
            let spec = WorkloadSpec {
                modules,
                alternatives,
                seed,
                ..WorkloadSpec::default()
            };
            let workload = generate_workload(&spec);
            total_shapes += workload.total_shapes();
            let problem = PlacementProblem::new(paper_region(), workload_modules(&workload));
            results.push(run_arm(&problem, &config));
        }
        let row = TableOneRow::aggregate(&alternatives.to_string(), &results);
        println!(
            "{:<14} {:>10.1}% {:>12.2}s {:>12.1} {:>7.0}%",
            alternatives,
            row.mean_util * 100.0,
            row.mean_time_to_best,
            total_shapes as f64 / runs as f64,
            row.proven_fraction * 100.0
        );
    }
}
