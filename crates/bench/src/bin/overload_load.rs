//! `overload_load` — the overload ablation: does adaptive admission
//! control buy goodput at ≥2× saturation, or does it just drop work?
//!
//! Two arms against in-process daemons with identical tiny capacity
//! (2 workers, queue depth 4), each offered the same **open-loop** load:
//! `clients` connections fire cache-busting `place` requests on a fixed
//! Poisson-free schedule whose aggregate rate is `overload_factor`× the
//! daemon's service capacity — the clients do *not* slow down when the
//! daemon does, exactly like independent tenants hammering a shared
//! reconfiguration service. Per-request CP cost is pinned by the spec's
//! own `time_limit_ms`, so capacity is predictable across seeds.
//!
//! * **admission** — the real configuration: a full queue sheds
//!   immediately with `overloaded` + `retry_after_ms`, keeping latency
//!   for admitted work bounded by the queue depth.
//! * **no_shedding** — `admission_control` off: every request blocks
//!   until the queue accepts it. Nothing is rejected, so queueing delay
//!   grows without bound and responses arrive ever later (the classic
//!   goodput collapse).
//!
//! The load is **deadline-blind**: requests carry no `deadline_ms`, so
//! the server's degradation ladder — which is itself a per-request
//! overload defense, already benched in `serve_load` — cannot rescue
//! the no-shedding arm by collapsing service cost to a greedy placement.
//! The circuit breaker is likewise pinned off in both arms (it is
//! orthogonal to admission and would route both arms to LNS once the
//! pinned CP budget stops proving optimality, destroying the fixed
//! service cost the capacity math relies on).
//!
//! **Goodput** is a response that is feasible *and arrived within the
//! client's SLO of the send time* — late answers count for nothing,
//! like a blown reconfiguration slot in the paper's runtime setting.
//! The SLO is the tenant's own bar, deliberately not attached to the
//! request. The binary writes both arms to `BENCH_overload.json`
//! (shared `BenchRecord` schema); the `bench_gate` binary enforces the
//! floor (admission goodput strictly above no-shedding).
//!
//! Usage: `overload_load [clients] [requests_per_client] [seed]
//!         [--slo-ms MS] [--overload-factor F] [--out PATH]`
//! (defaults 12, 10, 0, 600, 2.0).

#![forbid(unsafe_code)]
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rrf_bench::record::{write_records, BenchRecord};
use rrf_bench::workload::{percentile_ms, small_region_spec};
use rrf_flow::{FlowSpec, ModuleEntry, PlacerSettings};
use rrf_modgen::{generate_workload, WorkloadSpec};
use rrf_server::{start, Request, Response, ServerConfig};

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const WORKERS: usize = 2;
const QUEUE_DEPTH: usize = 4;
/// Per-request CP budget (the spec's own time limit): the pinned service
/// cost that makes capacity — WORKERS / SERVICE_MS — predictable.
const SERVICE_MS: u64 = 150;
/// Modules per generated spec; big enough that CP genuinely uses its
/// budget, small enough that the greedy fallback stays feasible.
const SPEC_MODULES: usize = 8;
/// Server-side default deadline for the deadline-blind requests: far
/// past the client SLO, so the degradation ladder never fires inside
/// the window where a response could still count as goodput, but low
/// enough to bound worst-case worker occupancy if CP ever returns
/// without an incumbent and the LNS rung inherits the remainder.
const SERVER_DEADLINE_MS: u64 = 3_000;

/// Unique spec per (arm, client, request): every place is a cache miss,
/// so the daemon pays real solver latency for each admitted request.
fn place_spec(unique: u64) -> FlowSpec {
    let workload = generate_workload(&WorkloadSpec::small(SPEC_MODULES, unique));
    FlowSpec {
        region: small_region_spec(),
        modules: workload
            .modules
            .into_iter()
            .map(|m| ModuleEntry {
                name: m.name,
                shapes: m.shapes,
                netlist: None,
            })
            .collect(),
        placer: PlacerSettings {
            time_limit_ms: Some(SERVICE_MS),
            ..PlacerSettings::default()
        },
    }
}

#[derive(Default)]
struct ArmOutcome {
    offered: u64,
    goodput: u64,
    shed: u64,
    late: u64,
    infeasible: u64,
    errors: u64,
    latencies_us: Vec<u64>,
}

/// One open-loop client: a sender thread fires `requests` place lines on
/// a fixed schedule (never waiting for replies), a reader thread stamps
/// arrivals. Returns per-request outcomes judged against the client SLO.
fn run_client(
    addr: &str,
    client_idx: u64,
    requests: u64,
    seed: u64,
    gap_ms: u64,
    slo_ms: u64,
    arm_tag: u64,
) -> ArmOutcome {
    let mut out = ArmOutcome {
        offered: requests,
        ..ArmOutcome::default()
    };
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(_) => {
            out.errors = requests;
            return out;
        }
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let reader_stream = stream.try_clone().unwrap();
    let (done_tx, done_rx) = mpsc::channel::<(u64, Instant, Response)>();
    let reader = std::thread::spawn(move || {
        let mut reader = BufReader::new(reader_stream);
        let mut line = String::new();
        for _ in 0..requests {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            let Ok(response) = serde_json::from_str::<Response>(line.trim()) else {
                return;
            };
            let id = response.id();
            if done_tx.send((id, Instant::now(), response)).is_err() {
                return;
            }
        }
    });

    let mut writer = stream;
    let mut sent_at = std::collections::HashMap::new();
    let epoch = Instant::now();
    for i in 0..requests {
        // Open loop: send at the scheduled instant even if the previous
        // response has not arrived.
        let due = epoch + Duration::from_millis(i * gap_ms);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let id = client_idx * 1_000_000 + i + 1;
        let spec = place_spec(arm_tag | (seed << 20) | (client_idx << 10) | i);
        let request = Request::Place {
            id,
            spec,
            deadline_ms: None,
        };
        let mut line = serde_json::to_string(&request).expect("serialize request");
        line.push('\n');
        sent_at.insert(id, Instant::now());
        if writer.write_all(line.as_bytes()).is_err() {
            out.errors += requests - i;
            break;
        }
    }
    drop(writer);
    let _ = reader.join();

    let deadline = Duration::from_millis(slo_ms);
    let mut answered = 0u64;
    while let Ok((id, at, response)) = done_rx.try_recv() {
        answered += 1;
        let Some(&sent) = sent_at.get(&id) else {
            out.errors += 1;
            continue;
        };
        let elapsed = at.duration_since(sent);
        out.latencies_us.push(elapsed.as_micros() as u64);
        match response {
            Response::Placed { report, .. } => {
                if !report.feasible {
                    out.infeasible += 1;
                } else if elapsed <= deadline {
                    out.goodput += 1;
                } else {
                    out.late += 1;
                }
            }
            Response::Overloaded { .. } => out.shed += 1,
            _ => out.errors += 1,
        }
    }
    out.errors += out.offered.saturating_sub(answered + out.errors);
    out
}

fn run_arm(
    admission: bool,
    clients: u64,
    requests: u64,
    seed: u64,
    gap_ms: u64,
    slo_ms: u64,
) -> ArmOutcome {
    let handle = start(ServerConfig {
        workers: WORKERS,
        queue_depth: QUEUE_DEPTH,
        admission_control: admission,
        default_deadline_ms: SERVER_DEADLINE_MS,
        // Pinned off (see module docs): the breaker is orthogonal to the
        // admission variable and would perturb the fixed service cost.
        breaker_threshold: u32::MAX,
        cache_capacity: 16,
        ..ServerConfig::default()
    })
    .expect("start daemon");
    let addr = handle.addr().to_string();
    let arm_tag = u64::from(admission) << 40;

    let mut threads = Vec::new();
    for client_idx in 0..clients {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            run_client(&addr, client_idx, requests, seed, gap_ms, slo_ms, arm_tag)
        }));
    }
    let mut total = ArmOutcome::default();
    for thread in threads {
        let out = thread.join().expect("client thread panicked");
        total.offered += out.offered;
        total.goodput += out.goodput;
        total.shed += out.shed;
        total.late += out.late;
        total.infeasible += out.infeasible;
        total.errors += out.errors;
        total.latencies_us.extend(out.latencies_us);
    }
    handle.shutdown();
    total.latencies_us.sort_unstable();
    total
}

#[allow(clippy::too_many_arguments)]
fn record(
    arm: &str,
    out: &ArmOutcome,
    clients: u64,
    slo_ms: u64,
    gap_ms: u64,
    factor: f64,
    seed: u64,
) -> BenchRecord {
    BenchRecord::new("overload_ablation")
        .param_str("arm", arm)
        .param_u64("clients", clients)
        .param_u64("workers", WORKERS as u64)
        .param_u64("queue_depth", QUEUE_DEPTH as u64)
        .param_u64("service_ms", SERVICE_MS)
        .param_u64("slo_ms", slo_ms)
        .param_u64("send_gap_ms", gap_ms)
        .param_f64("overload_factor", factor)
        .param_u64("seed", seed)
        .metric_u64("offered", out.offered)
        .metric_u64("goodput", out.goodput)
        .metric_u64("shed", out.shed)
        .metric_u64("late", out.late)
        .metric_u64("infeasible", out.infeasible)
        .metric_u64("errors", out.errors)
        .metric_f64(
            "goodput_ratio",
            out.goodput as f64 / out.offered.max(1) as f64,
        )
        .metric_f64("latency_p50_ms", percentile_ms(&out.latencies_us, 50.0))
        .metric_f64("latency_p95_ms", percentile_ms(&out.latencies_us, 95.0))
}

fn main() {
    let mut positional: Vec<u64> = Vec::new();
    let mut out_path = "BENCH_overload.json".to_string();
    let mut slo_ms = 600u64;
    let mut factor = 2.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--slo-ms" => {
                slo_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--slo-ms needs a number")
            }
            "--overload-factor" => {
                factor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--overload-factor needs a number")
            }
            other => positional.push(other.parse().unwrap_or_else(|_| {
                eprintln!(
                    "usage: overload_load [clients] [requests_per_client] [seed] \
                     [--slo-ms MS] [--overload-factor F] [--out PATH]"
                );
                std::process::exit(2);
            })),
        }
    }
    let clients = positional.first().copied().unwrap_or(12);
    let requests = positional.get(1).copied().unwrap_or(10);
    let seed = positional.get(2).copied().unwrap_or(0);
    assert!(factor >= 2.0, "the acceptance gate is >= 2x saturation");

    // Offered rate = clients / gap; capacity = WORKERS / SERVICE_MS.
    // Solve gap so offered = factor * capacity.
    let capacity_rps = WORKERS as f64 * 1000.0 / SERVICE_MS as f64;
    let gap_ms = ((clients as f64 * 1000.0) / (factor * capacity_rps)).round() as u64;

    eprintln!(
        "overload_load: {clients} clients x {requests} requests, send gap {gap_ms}ms \
         ({factor}x of {capacity_rps:.1} rps capacity), client SLO {slo_ms}ms"
    );
    let with = run_arm(true, clients, requests, seed, gap_ms, slo_ms);
    eprintln!(
        "  admission:   offered {} goodput {} shed {} late {} errors {}",
        with.offered, with.goodput, with.shed, with.late, with.errors
    );
    let without = run_arm(false, clients, requests, seed, gap_ms, slo_ms);
    eprintln!(
        "  no_shedding: offered {} goodput {} shed {} late {} errors {}",
        without.offered, without.goodput, without.shed, without.late, without.errors
    );

    let records = vec![
        record("admission", &with, clients, slo_ms, gap_ms, factor, seed),
        record(
            "no_shedding",
            &without,
            clients,
            slo_ms,
            gap_ms,
            factor,
            seed,
        ),
    ];
    write_records(&out_path, &records).expect("write records");
    eprintln!("overload_load: wrote {out_path}");

    // Floors live in `bench_gate`: admission goodput must strictly beat
    // the no-shedding arm at >= 2x saturation.
    eprintln!(
        "overload_load: admission goodput {} vs no-shedding {} (bench_gate enforces the floor)",
        with.goodput, without.goodput
    );
}
