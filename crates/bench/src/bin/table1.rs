//! Table I reproduction: impact of module design alternatives on area
//! utilization and execution time.
//!
//! Paper setup: 50 runs × 30 generated modules (20–100 CLBs, 0–4 memory
//! blocks, 4 design alternatives) on a heterogeneous CLB/BRAM region;
//! reported: mean area utilization (53% → 65%) and mean time
//! (2.55 s → 10.82 s).
//!
//! Usage: `table1 [runs] [budget_secs] [modules]`
//! (defaults: 50 runs, 5 s per arm, 30 modules).
//!
//! Times: our placer is an anytime branch & bound; on instances it cannot
//! prove within the budget, `mean time` is the full budget, so we also
//! report *time-to-best* — when the reported floorplan was found — which is
//! the comparable "how long until this quality" number.

#![forbid(unsafe_code)]
use rrf_bench::experiment::{paper_region, run_arm, workload_modules, TableOneRow};
use rrf_core::{PlacementProblem, PlacerConfig};
use rrf_modgen::{generate_workload, WorkloadSpec};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(50);
    let budget: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let modules: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(30);

    let config = PlacerConfig {
        time_limit: Some(Duration::from_secs(budget)),
        ..PlacerConfig::default()
    };

    eprintln!("table1: {runs} runs x {modules} modules, {budget}s budget per arm (paper: 50x30)");

    let mut with = Vec::with_capacity(runs);
    let mut without = Vec::with_capacity(runs);
    for seed in 0..runs as u64 {
        let spec = WorkloadSpec {
            modules,
            seed,
            ..WorkloadSpec::default()
        };
        let workload = generate_workload(&spec);
        let problem = PlacementProblem::new(paper_region(), workload_modules(&workload));
        let w = run_arm(&problem, &config);
        let wo = run_arm(&problem.without_alternatives(), &config);
        eprintln!(
            "  run {seed:02}: with util={:.3} extent={} t_best={:.2}s | without util={:.3} extent={} t_best={:.2}s",
            w.utilization, w.extent, w.time_to_best, wo.utilization, wo.extent, wo.time_to_best
        );
        with.push(w);
        without.push(wo);
    }

    let row_without = TableOneRow::aggregate("No design alternatives", &without);
    let row_with = TableOneRow::aggregate("Design alternatives", &with);

    println!();
    println!("Table I — impact of module design alternatives (ours vs paper)");
    println!(
        "{:<24} {:>11} {:>11} {:>12} {:>8} {:>9} {:>9}",
        "Type", "Mean Util.", "Mean Time", "Time-to-best", "Proven", "CLB", "BRAM"
    );
    for row in [&row_without, &row_with] {
        println!(
            "{:<24} {:>10.1}% {:>10.2}s {:>11.2}s {:>7.0}% {:>9.1} {:>9.1}",
            row.label,
            row.mean_util * 100.0,
            row.mean_seconds,
            row.mean_time_to_best,
            row.proven_fraction * 100.0,
            row.mean_clb,
            row.mean_bram
        );
    }
    println!(
        "{:<24} {:>10.1}pp {:>10.2}s {:>11.2}s",
        "Change",
        (row_with.mean_util - row_without.mean_util) * 100.0,
        row_with.mean_seconds - row_without.mean_seconds,
        row_with.mean_time_to_best - row_without.mean_time_to_best,
    );
    println!();
    println!("Paper reference:        53% -> 65% utilization, 2.55s -> 10.82s mean time");
}
