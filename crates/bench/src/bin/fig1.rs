//! Figure 1 reproduction: one functionally equivalent module rendered as
//! several design alternatives with different layouts.
//!
//! The paper's Figure 1 shows five layouts of one module whose area
//! differs with the amount of dedicated resources used. We render the four
//! generator-derived alternatives (base, 180° rotation, internal relayout,
//! external relayout) plus a hand-built fifth variant that trades the
//! memory blocks for equivalent CLB area — the "different amount of
//! dedicated resources" case from the caption.

#![forbid(unsafe_code)]
use rrf_fabric::{Point, ResourceKind};
use rrf_geost::ShapeDef;
use rrf_modgen::{derive_alternatives, layout::LayoutParams, ModuleSpec};

/// Render a shape on its own: tiles as resource codes, top row first.
fn render_shape(shape: &ShapeDef) -> String {
    let bb = shape.bounding_box();
    let mut grid = vec![vec![' '; bb.w as usize]; bb.h as usize];
    for (p, k) in shape.tiles() {
        grid[(p.y - bb.y) as usize][(p.x - bb.x) as usize] = k.code();
    }
    let mut out = String::new();
    for row in (0..bb.h as usize).rev() {
        out.extend(grid[row].iter());
        out.push('\n');
    }
    out
}

fn main() {
    let spec = ModuleSpec {
        clbs: 30,
        brams: 2,
        height: 6,
    };
    let mut shapes = derive_alternatives(&spec, &LayoutParams::default(), 4, 4);

    // Fifth variant: the memory blocks implemented in logic instead — the
    // module no longer uses dedicated resources, at ~4x the tile cost per
    // memory block (cf. Kuon & Rose on the dedicated-vs-soft gap).
    let logic_only = ModuleSpec {
        clbs: spec.clbs + spec.brams * 2 * 4,
        brams: 0,
        height: 6,
    };
    shapes.extend(derive_alternatives(
        &logic_only,
        &LayoutParams::default(),
        1,
        6,
    ));

    println!(
        "Figure 1 — one module, {} design alternatives",
        shapes.len()
    );
    println!("(codes: c = CLB, B = BRAM; blank = unused within the bounding box)");
    for (i, shape) in shapes.iter().enumerate() {
        let ms = shape.resource_multiset();
        println!();
        println!(
            "alternative {} — {}x{} bbox, {} CLB, {} BRAM tiles:",
            i + 1,
            shape.width(),
            shape.height(),
            ms[ResourceKind::Clb.index()],
            ms[ResourceKind::Bram.index()],
        );
        print!("{}", render_shape(shape));
    }
    // Smoke check rendering round-trips one tile.
    let first_tile: Vec<(Point, ResourceKind)> = shapes[0].tiles().take(1).collect();
    assert!(!first_tile.is_empty());
}
